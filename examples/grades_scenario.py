"""The paper's §1 motivating scenario: course grades analysis.

A spreadsheet holds assignment scores (one sheet) and demographics
(another).  The paper lists three operations that are "very cumbersome" in
plain spreadsheet software; each is a one-liner in DataSpread:

1. select students having points higher than 90 in at least one assignment,
2. average grade by demographic group (a join + group-by),
3. live view over continuously-appended external data.

Run:  python examples/grades_scenario.py
"""

from repro import Workbook
from repro.workloads.datasets import generate_grades_data


def main() -> None:
    data = generate_grades_data(n_students=100, seed=13)
    wb = Workbook()

    # The user starts from plain sheets, exactly like the paper's setup:
    # grades on rows 1-101 (header + 100 students), demographics likewise.
    wb.add_sheet("Grades")
    wb["Grades"].set_grid("A1", [data.grade_header] + [list(r) for r in data.grades])
    wb.add_sheet("Demo")
    wb["Demo"].set_grid("A1", [data.demo_header] + [list(r) for r in data.demographics])

    # Promote both sheets to tables (Feature 2) so SQL can touch them.
    wb.create_table_from_range("Grades", "A1:G101", "grades", primary_key="student_id")
    wb.create_table_from_range("Demo", "A1:D101", "demographics", primary_key="student_id")

    wb.add_sheet("Analysis")

    # ------------------------------------------------------------------ 1
    print("=== students with >90 in at least one assignment ===")
    wb.dbsql(
        "Analysis", "A1",
        "SELECT g.student_id, d.name "
        "FROM grades g JOIN demographics d ON g.student_id = d.student_id "
        "WHERE g.a1 > 90 OR g.a2 > 90 OR g.a3 > 90 OR g.a4 > 90 OR g.a5 > 90 "
        "ORDER BY g.student_id",
        include_headers=True,
    )
    row = 2
    shown = 0
    while wb.get("Analysis", f"A{row}") is not None and shown < 8:
        print(" ", wb.get("Analysis", f"A{row}"), wb.get("Analysis", f"B{row}"))
        row += 1
        shown += 1
    print("  ... (spilled as a live region; no manual copy-paste)")

    # ------------------------------------------------------------------ 2
    print("\n=== average total by demographic group ===")
    wb.dbsql(
        "Analysis", "D1",
        "SELECT d.level, count(*) AS n, "
        "round(avg(g.a1 + g.a2 + g.a3 + g.a4 + g.a5), 1) AS avg_total "
        "FROM grades g JOIN demographics d ON g.student_id = d.student_id "
        "GROUP BY d.level ORDER BY avg_total DESC",
        include_headers=True,
    )
    for row in range(1, 5):
        values = [wb.get("Analysis", f"{col}{row}") for col in "DEF"]
        if values[0] is None:
            break
        print(" ", values)

    # A spreadsheet formula can post-process the SQL spill:
    wb.set("Analysis", "G2", "=MAX(F2:F4)-MIN(F2:F4)")
    print("  spread between groups (plain formula over the spill):",
          wb.get("Analysis", "G2"))

    # ------------------------------------------------------------------ 3
    print("\n=== continuously added external data ===")
    wb.execute(
        "CREATE TABLE actions (aid INT PRIMARY KEY, student_id INT, kind TEXT)"
    )
    wb.dbsql(
        "Analysis", "I1",
        "SELECT kind, count(*) FROM actions GROUP BY kind ORDER BY kind",
        include_headers=True,
    )
    print("  before ingest:", wb.get("Analysis", "I2"))
    # The course software keeps appending...
    for i in range(6):
        kind = "submit" if i % 2 == 0 else "view"
        wb.execute(f"INSERT INTO actions VALUES ({i}, {i + 1}, '{kind}')")
    print("  after 6 appended actions:")
    for row in range(2, 5):
        kind = wb.get("Analysis", f"I{row}")
        if kind is None:
            break
        print("   ", kind, wb.get("Analysis", f"J{row}"))

    # And grading stays live too: bump one score, group averages move.
    before = wb.get("Analysis", "F2")
    wb.execute("UPDATE grades SET a1 = 100")
    print("\nafter a back-end regrade, top group average went from",
          before, "to", wb.get("Analysis", "F2"))


if __name__ == "__main__":
    main()
