"""The paper's demonstration (§4, Figure 2) on the movie database.

Reproduces the three demo features end-to-end:

* Feature 1 (Fig 2a): a DBSQL in B3 joins MOVIES, MOVIES2ACTORS and ACTORS,
  parameterised by RANGEVALUE(B1)/RANGEVALUE(B2); the result spills B3:B10.
* Feature 2 (Fig 2b): a sheet range becomes a relational table (schema
  inferred) and is replaced by a live DBTABLE.
* Feature 3 (Fig 2c): modifications at both ends stay in sync.

Run:  python examples/movies_demo.py
"""

from repro import Workbook
from repro.workloads.datasets import generate_movie_data, load_movie_database


def show_column(wb, sheet, col, top, bottom, label):
    values = [wb.get(sheet, f"{col}{row}") for row in range(top, bottom + 1)]
    values = [value for value in values if value is not None]
    print(f"{label}: {values}")


def main() -> None:
    data = generate_movie_data(n_movies=200, n_actors=80, links_per_movie=3, seed=42)
    wb = Workbook(database=load_movie_database(data))

    # ------------------------------------------------------------- Feature 1
    print("=== Feature 1: Querying (Fig 2a) ===")
    wb.set("Sheet1", "B1", 1990)
    wb.set("Sheet1", "B2", 2000)
    wb.dbsql(
        "Sheet1", "B3",
        "SELECT DISTINCT a.name "
        "FROM movies m "
        "JOIN movies2actors ma ON m.movieid = ma.movieid "
        "JOIN actors a ON a.actorid = ma.actorid "
        "WHERE m.year >= RANGEVALUE(B1) AND m.year <= RANGEVALUE(B2) "
        "ORDER BY a.name LIMIT 8",
    )
    show_column(wb, "Sheet1", "B", 3, 10, "actors 1990-2000 (B3:B10)")

    wb.set("Sheet1", "B1", 2010)  # edit the parameter cell
    show_column(wb, "Sheet1", "B", 3, 10, "after editing B1 to 2010")

    # ------------------------------------------------------------- Feature 2
    print("\n=== Feature 2: Import/Export (Fig 2b) ===")
    wb.add_sheet("Ratings")
    wb["Ratings"].set_grid(
        "A1",
        [
            ["movieid", "stars"],
            [1, 5],
            [2, 3],
            [3, 4],
            [4, 2],
        ],
    )
    wb.create_table_from_range("Ratings", "A1:B5", "ratings", primary_key="movieid")
    print("table created; sheet now shows a DBTABLE:",
          wb["Ratings"].cell("A1").formula)
    result = wb.execute(
        "SELECT m.title, r.stars FROM movies m "
        "JOIN ratings r ON m.movieid = r.movieid ORDER BY r.stars DESC"
    )
    print("join against the exported table:")
    for title, stars in result:
        print(f"  {stars}* {title}")

    # Import into another sheet.
    wb.add_sheet("View")
    wb.dbtable("View", "A1", "ratings")
    print("imported on View!A1, first data row:",
          wb.get("View", "A2"), wb.get("View", "B2"))

    # ------------------------------------------------------------- Feature 3
    print("\n=== Feature 3: Modifications (Fig 2c) ===")
    wb.dbsql("View", "D1", "SELECT avg(stars) FROM ratings")
    print("avg stars:", wb.get("View", "D1"))

    print("front-end edit: set B2 (stars of movie 1) to 1 ...")
    wb.set("View", "B2", 1)
    print("  DB now:", wb.execute("SELECT stars FROM ratings WHERE movieid=1").scalar())
    print("  dependent DBSQL immediately shows:", wb.get("View", "D1"))

    print("back-end edit: UPDATE ratings SET stars = 5 WHERE movieid = 4 ...")
    wb.execute("UPDATE ratings SET stars = 5 WHERE movieid = 4")
    print("  sheet cell B5 now:", wb.get("View", "B5"))
    print("  avg refreshed:", wb.get("View", "D1"))

    print("\nstats:", wb.stats_summary())


if __name__ == "__main__":
    main()
