"""Quickstart: the DataSpread workbook in five minutes.

Run:  python examples/quickstart.py
"""

from repro import Workbook


def main() -> None:
    wb = Workbook()

    # ------------------------------------------------------------------
    # 1. It's a spreadsheet: cells, formulas, relative references.
    # ------------------------------------------------------------------
    wb.set("Sheet1", "A1", 10)
    wb.set("Sheet1", "A2", 32)
    wb.set("Sheet1", "A3", "=SUM(A1:A2)")
    print("A3 = SUM(A1:A2) ->", wb.get("Sheet1", "A3"))

    # ------------------------------------------------------------------
    # 2. It's a database: run any SQL against the built-in engine.
    # ------------------------------------------------------------------
    wb.execute("CREATE TABLE cities (name TEXT PRIMARY KEY, pop INT)")
    wb.execute(
        "INSERT INTO cities VALUES ('Springfield', 30000), "
        "('Shelbyville', 25000), ('Capital City', 1200000)"
    )
    result = wb.execute("SELECT name FROM cities WHERE pop > 26000 ORDER BY pop")
    print("big cities:", [row[0] for row in result])

    # ------------------------------------------------------------------
    # 3. DBTABLE: a sheet region that *is* the table (two-way sync).
    # ------------------------------------------------------------------
    wb.dbtable("Sheet1", "C1", "cities")
    print("C1 header:", wb.get("Sheet1", "C1"), "| first row:", wb.get("Sheet1", "C2"))

    # Editing the sheet updates the database...
    wb.set("Sheet1", "D2", 31000)
    print(
        "after sheet edit, DB says:",
        wb.execute("SELECT pop FROM cities WHERE name='Springfield'").scalar(),
    )
    # ...and database writes update the sheet.
    wb.execute("INSERT INTO cities VALUES ('Ogdenville', 12000)")
    print("new row appeared at C5:", wb.get("Sheet1", "C5"))

    # ------------------------------------------------------------------
    # 4. DBSQL with RANGEVALUE: SQL parameterised by cells.
    # ------------------------------------------------------------------
    wb.set("Sheet1", "F1", 20000)  # the threshold lives in a cell
    wb.dbsql(
        "Sheet1", "F3",
        "SELECT name FROM cities WHERE pop >= RANGEVALUE(F1) ORDER BY name",
    )
    print("spill at F3:", [wb.get("Sheet1", f"F{row}") for row in (3, 4, 5)])
    wb.set("Sheet1", "F1", 1000000)  # edit the parameter -> query re-runs
    print("after threshold edit:", wb.get("Sheet1", "F3"))

    # ------------------------------------------------------------------
    # 5. RANGETABLE: treat any sheet range as a relation.
    # ------------------------------------------------------------------
    wb.sheet("Sheet1").set_grid("H1", [["name", "region"],
                                       ["Springfield", "north"],
                                       ["Capital City", "south"]])
    wb.dbsql(
        "Sheet1", "K1",
        "SELECT c.name, r.region FROM cities c "
        "JOIN RANGETABLE(H1:I3) r ON c.name = r.name ORDER BY c.name",
    )
    print("join with sheet data:", wb.get("Sheet1", "K1"), "/", wb.get("Sheet1", "L1"))

    # ------------------------------------------------------------------
    # 6. Export a range to a brand-new table (Fig 2b).
    # ------------------------------------------------------------------
    table = wb.create_table_from_range("Sheet1", "H1:I3", "regions", primary_key="name")
    print("created table:", table.name, table.column_names)
    print("query it:", wb.execute("SELECT count(*) FROM regions").scalar(), "rows")

    # ------------------------------------------------------------------
    # 7. Observability: metrics, a per-query trace, the event log.
    # ------------------------------------------------------------------
    snap = wb.database.metrics()
    print(
        "metrics:",
        snap["db_statements_total"], "statements,",
        f"p95 latency {snap['db_statement_seconds']['p95'] * 1e3:.2f}ms,",
        snap["pager_reads"], "page reads,",
        f"{snap['buffer_hit_ratio']:.0%} buffer hits",
    )
    # EXPLAIN TRACE runs the query and returns the span tree as rows.
    # The ProjectedScan span carries the vectorized-execution counters:
    # batches (column-fragment batches pulled from the store) and
    # rows_per_batch next to rows_scanned / cols_read.
    trace = wb.execute("EXPLAIN TRACE SELECT name FROM cities WHERE pop > 26000")
    print("query trace:")
    for (line,) in trace:
        print("   ", line)  # ... ProjectedScan(...) batches=1 ... rows_per_batch=3 ...
    for event in wb.database.events.tail(3):
        print("event:", event.render())


if __name__ == "__main__":
    main()
