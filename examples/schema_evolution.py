"""Dynamic schema (§2.2) and the hybrid attribute-group store (§3).

The paper's storage claim: with data partitioned into attribute groups,
"a table's schema change [costs] an efficiency similar to tuple updates" —
and schema changes participate in transactions, which stock databases
refuse.

This example measures blocks written (the simulated-disk counters) for
ADD COLUMN under the three layouts, then shows a mixed DML+DDL transaction
rolling back cleanly.

Run:  python examples/schema_evolution.py
"""

from repro import Database, LayoutPolicy


def blocks_for_add_column(layout: LayoutPolicy, n_rows: int = 5000) -> tuple:
    db = Database(default_layout=layout)
    db.execute("CREATE TABLE wide (a INT, b TEXT, c REAL, d TEXT)")
    table = db.table("wide")
    for i in range(n_rows):
        table.insert((i, f"t{i}", i * 0.5, f"u{i}"), emit=False)
    db.checkpoint()
    before = db.io_stats.snapshot()
    rewritten = table.add_column(
        __import__("repro.engine.schema", fromlist=["Column"]).Column("e", default=0)
    )
    db.checkpoint()
    delta = db.io_stats.delta(before)
    return rewritten, delta.writes


def tuple_update_cost(layout: LayoutPolicy, n_rows: int = 5000) -> int:
    db = Database(default_layout=layout)
    db.execute("CREATE TABLE wide (a INT, b TEXT, c REAL, d TEXT)")
    table = db.table("wide")
    for i in range(n_rows):
        table.insert((i, f"t{i}", i * 0.5, f"u{i}"), emit=False)
    db.checkpoint()
    before = db.io_stats.snapshot()
    table.update_rid(table.rid_at(n_rows // 2), {"b": "patched"})
    db.checkpoint()
    return db.io_stats.delta(before).writes


def main() -> None:
    print("=== ADD COLUMN cost by physical layout (5000 rows) ===")
    print(f"{'layout':<8} {'pages rewritten':>16} {'blocks written':>15}")
    for layout in (LayoutPolicy.ROW, LayoutPolicy.COLUMN, LayoutPolicy.HYBRID):
        rewritten, writes = blocks_for_add_column(layout)
        print(f"{layout.value:<8} {rewritten:>16} {writes:>15}")

    print("\n=== single-column tuple update (blocks written) ===")
    for layout in (LayoutPolicy.ROW, LayoutPolicy.COLUMN, LayoutPolicy.HYBRID):
        print(f"{layout.value:<8} {tuple_update_cost(layout):>5}")
    print("-> in the hybrid layout, ADD COLUMN costs no more than a tuple "
          "update: the paper's §2.2 goal.")

    print("\n=== schema changes inside transactions (§2.2 challenge) ===")
    db = Database()
    db.execute("CREATE TABLE ledger (id INT PRIMARY KEY, amount REAL)")
    db.execute("INSERT INTO ledger VALUES (1, 10.0), (2, 20.0)")
    db.execute("BEGIN")
    db.execute("ALTER TABLE ledger ADD COLUMN currency TEXT DEFAULT 'USD'")
    db.execute("UPDATE ledger SET currency = 'EUR' WHERE id = 2")
    db.execute("INSERT INTO ledger VALUES (3, 30.0, 'GBP')")
    print("inside txn :", db.execute("SELECT * FROM ledger").rows)
    db.execute("ROLLBACK")
    print("after abort:", db.execute("SELECT * FROM ledger").rows)
    print("columns    :", db.table("ledger").column_names)

    print("\n=== off-line compaction after many cheap ADD COLUMNs ===")
    db = Database()
    db.execute("CREATE TABLE t (a INT)")
    table = db.table("t")
    for i in range(1000):
        table.insert((i,), emit=False)
    for name in "bcdef":
        db.execute(f"ALTER TABLE t ADD COLUMN {name} INT DEFAULT 0")
    print("groups after 5 cheap ADD COLUMNs:",
          [g for g in table.schema.groups])
    pages = table.store.compact_groups([["a", "b", "c"], ["d", "e", "f"]])
    print("re-partitioned into 2 groups,", pages, "pages")
    print("rows intact:", db.execute("SELECT count(*) FROM t").scalar())


if __name__ == "__main__":
    main()
