"""Scalability story (§1): browsing a table far larger than a spreadsheet
can hold.

"It is common knowledge that beyond a few 100s of thousands of rows, the
software is no longer responsive."  DataSpread keeps the data in the
database and materialises only the current window; the positional index
makes any window O(log n + w).

This example builds a sizeable table (default 200k rows — pass an argument
to change it), then compares:

* the naive-spreadsheet baseline, which must materialise every row before
  showing anything, and
* a windowed DBTABLE, which renders instantly and pans through the data
  fetching one window at a time.

Run:  python examples/million_row_sheet.py [n_rows]
"""

import sys
import time

from repro import Workbook
from repro.baselines.naive_spreadsheet import NaiveSpreadsheet
from repro.workloads.traces import mixed_scroll_trace


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    window = 40

    wb = Workbook()
    wb.execute("CREATE TABLE log (seq INT PRIMARY KEY, reading REAL)")
    table = wb.database.table("log")
    print(f"loading {n_rows:,} rows into the database ...")
    start = time.perf_counter()
    for i in range(n_rows):
        table.insert((i, (i * 7919) % 1000 / 10.0), emit=False)
    print(f"  loaded in {time.perf_counter() - start:.2f}s")

    # -------------------------------------------------- DataSpread window
    start = time.perf_counter()
    region = wb.dbtable("Sheet1", "A1", "log", window_rows=window)
    first_window = time.perf_counter() - start
    print(f"DataSpread: first window visible in {first_window * 1000:.1f} ms "
          f"({wb.sheet('Sheet1').n_cells} cells materialised)")

    trace = mixed_scroll_trace(n_rows, window, steps=50, seed=3)
    start = time.perf_counter()
    for position in trace:
        region.scroll_to(position)
    per_scroll = (time.perf_counter() - start) / len(trace)
    print(f"DataSpread: {len(trace)} scrolls, {per_scroll * 1000:.2f} ms/scroll, "
          f"cache hit ratio {region.cache.hit_ratio:.0%}")

    # A middle insert stays logarithmic thanks to the positional index.
    start = time.perf_counter()
    table.insert((n_rows + 1, 0.0), position=n_rows // 2)
    print(f"middle insert at position {n_rows // 2:,}: "
          f"{(time.perf_counter() - start) * 1000:.2f} ms")

    # -------------------------------------------------- naive baseline
    baseline_rows = min(n_rows, 100_000)
    print(f"\nnaive spreadsheet (baseline), loading {baseline_rows:,} rows ...")
    sheet = NaiveSpreadsheet()
    rows = [(i, (i * 7919) % 1000 / 10.0) for i in range(baseline_rows)]
    start = time.perf_counter()
    sheet.load_rows(rows)
    load_time = time.perf_counter() - start
    print(f"  baseline materialised {sheet.n_cells:,} cells in {load_time:.2f}s "
          f"before the first row could render")
    print(f"  (DataSpread showed its first window in {first_window * 1000:.1f} ms; "
          f"the gap grows linearly with table size)")


if __name__ == "__main__":
    main()
