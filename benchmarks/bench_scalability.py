"""E4 — §1 scalability claim: spreadsheets die past ~10⁵ rows; DataSpread
stays interactive because only the window is materialised.

Two measurements per table size n:

* **time-to-first-window**: naive spreadsheet must materialise all n rows
  before anything renders; DataSpread renders a 40-row window.
* **scroll latency**: replaying a mixed scroll trace over a windowed
  DBTABLE (positional-index window fetches + block cache).

Expected shape: the naive load time grows linearly with n and crosses any
interactivity budget somewhere around 10⁵–10⁶ rows; DataSpread's
first-window and per-scroll latencies are flat in n (log-factor only).
"""

import pytest

from repro import Workbook
from repro.baselines.naive_spreadsheet import NaiveSpreadsheet
from repro.workloads.traces import mixed_scroll_trace
from benchmarks.conftest import build_sequence_table

WINDOW = 40


@pytest.mark.parametrize("n_rows", [10_000, 50_000, 200_000])
def test_naive_spreadsheet_time_to_first_window(benchmark, n_rows):
    rows = [(i, float(i % 97)) for i in range(n_rows)]

    def load_then_show():
        sheet = NaiveSpreadsheet()
        sheet.load_rows(rows)
        return sheet.window(0, WINDOW, 0, 2)

    benchmark.pedantic(load_then_show, rounds=3, iterations=1)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["cells_materialised"] = n_rows * 2


@pytest.mark.parametrize("n_rows", [10_000, 50_000, 200_000])
def test_dataspread_time_to_first_window(benchmark, n_rows):
    db = build_sequence_table(n_rows)

    def show_window():
        wb = Workbook(database=db)
        region = wb.dbtable("Sheet1", "A1", "seq", window_rows=WINDOW)
        cells = wb.sheet("Sheet1").n_cells
        wb.remove_region(region.context.region_id)
        return cells

    cells = benchmark(show_window)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["cells_materialised"] = cells


@pytest.mark.parametrize("n_rows", [10_000, 50_000, 200_000])
def test_dataspread_scroll_latency(benchmark, n_rows):
    db = build_sequence_table(n_rows)
    wb = Workbook(database=db)
    region = wb.dbtable("Sheet1", "A1", "seq", window_rows=WINDOW)
    trace = mixed_scroll_trace(n_rows, WINDOW, steps=1000, seed=3)
    position = iter(trace * 100)

    def scroll_once():
        region.scroll_to(next(position))

    benchmark(scroll_once)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["cache_hit_ratio"] = round(region.cache.hit_ratio, 3)


@pytest.mark.parametrize("n_rows", [10_000, 50_000])
def test_naive_spreadsheet_scroll_after_load(benchmark, n_rows):
    """For fairness: once (expensively) loaded, the naive sheet scrolls
    fast — the crossover argument is about load + memory, not scrolling."""
    sheet = NaiveSpreadsheet()
    sheet.load_rows([(i, float(i % 97)) for i in range(n_rows)])
    trace = mixed_scroll_trace(n_rows, WINDOW, steps=1000, seed=3)
    position = iter(trace * 100)

    def scroll_once():
        return sheet.window(next(position), WINDOW, 0, 2)

    benchmark(scroll_once)
    benchmark.extra_info["n_rows"] = n_rows
