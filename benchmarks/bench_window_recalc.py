"""E7 — §2.2(d,e) / §3 compute engine: visible-first prioritised
recalculation.

Paper claim: "the calculations of the visible cells should be prioritized
and the remaining long running computations should be performed in
background", keeping the interface interactive.

Setup: a sheet with k formula cells (one per row) and a 40-row viewport.
After invalidating everything (editing the shared input cell), we measure:

* time-to-visible with the prioritised scheduler (recalc_visible),
* time for a full eager recalculation (the naive policy),
* the naive-spreadsheet baseline, which recalculates all k formulas on
  *every* edit.

Expected shape: time-to-visible is ~window/k of the full recalc and flat in
k; the full/naive recalc grows linearly with k.
"""

import pytest

from repro import Workbook
from repro.baselines.naive_spreadsheet import NaiveSpreadsheet
from repro.window.viewport import Viewport

WINDOW = 40


def make_formula_workbook(n_formulas: int) -> Workbook:
    wb = Workbook(eager=False)
    wb.set("Sheet1", "A1", 1)
    for row in range(1, n_formulas + 1):
        wb.set("Sheet1", f"B{row}", f"=$A$1*{row}")
    viewport = Viewport("Sheet1", top=0, left=0, n_rows=WINDOW, n_cols=4)
    wb.set_viewport(viewport)
    wb.recalc_all()
    return wb


@pytest.mark.parametrize("n_formulas", [500, 2000, 8000])
def test_time_to_visible_prioritised(benchmark, n_formulas):
    wb = make_formula_workbook(n_formulas)
    values = iter(range(2, 10_000_000))

    def edit_and_show_window():
        wb.set("Sheet1", "A1", next(values))  # invalidates all k formulas
        return wb.recalc_visible()            # ...but only 40 compute now

    computed = benchmark(edit_and_show_window)
    benchmark.extra_info["n_formulas"] = n_formulas
    benchmark.extra_info["computed_for_visible"] = computed
    benchmark.extra_info["policy"] = "visible-first"


@pytest.mark.parametrize("n_formulas", [500, 2000, 8000])
def test_full_recalc_eager(benchmark, n_formulas):
    wb = make_formula_workbook(n_formulas)
    values = iter(range(2, 10_000_000))

    def edit_and_recalc_all():
        wb.set("Sheet1", "A1", next(values))
        return wb.recalc_all()

    computed = benchmark(edit_and_recalc_all)
    benchmark.extra_info["n_formulas"] = n_formulas
    benchmark.extra_info["computed"] = computed
    benchmark.extra_info["policy"] = "eager-full"


@pytest.mark.parametrize("n_formulas", [500, 2000])
def test_naive_spreadsheet_every_edit_recalcs_all(benchmark, n_formulas):
    sheet = NaiveSpreadsheet()
    sheet.set_at(0, 0, 1)
    for row in range(1, n_formulas + 1):
        sheet.values[(row, 1)] = None
        from repro.formula.parser import parse_formula

        sheet.formulas[(row, 1)] = parse_formula(f"$A$1*{row}")
    sheet.recalc_all()
    values = iter(range(2, 10_000_000))

    def edit():
        sheet.set_at(0, 0, next(values))

    benchmark.pedantic(edit, rounds=5, iterations=1)
    benchmark.extra_info["n_formulas"] = n_formulas
    benchmark.extra_info["policy"] = "naive-recalc-all"


@pytest.mark.parametrize("n_formulas", [2000])
def test_background_drain_completes_lazily(benchmark, n_formulas):
    """§2.2(e) lazy computation: after the visible slice, background steps
    finish the rest without ever blocking longer than the step budget."""
    wb = make_formula_workbook(n_formulas)
    values = iter(range(2, 10_000_000))

    def interactive_session():
        wb.set("Sheet1", "A1", next(values))
        wb.recalc_visible()
        steps = 0
        while wb.compute.pending:
            wb.background_step(64)  # a UI-idle slice
            steps += 1
        return steps

    steps = benchmark(interactive_session)
    benchmark.extra_info["background_slices"] = steps
