"""Structural edits through positional mapping: logical work scales with
the *affected set*, not the sheet.

The seed implementation of ``Workbook._structural_edit`` physically
relocated every cell below/right of the edit (O(occupied cells)) and then
reset the compute engine and reparsed/re-registered **every** formula on
every sheet (O(total formulas)).  The positional-mapping path splices the
cell store's key space instead — zero cells move — and uses the dependency
graph's tile-bucketed subscriptions to rewrite only the formulas whose
references actually intersect the shifted half-space.

Claims measured (and asserted) here, via the existing logical-work
counters (``CellStoreStats.cells_moved``/``cells_dropped``,
``ComputeStats.reparses``):

* inserting 1 row into a 100k-cell sheet with 1k formulas moves **0**
  stored cells;
* it reparses only the formulas whose references intersect the shifted
  region — ≥50× fewer than the seed's reparse-everything behaviour;
* deleting the inserted row is equally cheap, and only deletes that
  actually remove occupied cells pay a per-cell drop cost.

Run ``BENCH_SMOKE=1`` (the CI smoke step) to shrink the sheet while
keeping every assertion live, so the benchmark cannot bit-rot.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import Workbook
from repro.core.address import CellAddress
from repro.core.cell import Cell

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

N_ROWS = 200 if SMOKE else 1000
N_COLS = 10 if SMOKE else 100          # N_ROWS * N_COLS stored cells
FORMULA_EVERY = 2 if SMOKE else 1      # a formula in col A every k-th row
EDIT_AT = N_ROWS - 10                  # insertion point near the bottom
MIN_RATIO = 10 if SMOKE else 50        # affected set vs total formulas


def build_workbook() -> Workbook:
    """A dense sheet: value cells in cols C.., one ``=C<r>*2`` formula per
    k-th row in col A (each referencing its own row)."""
    workbook = Workbook()
    store = workbook.sheet("Sheet1").store
    for row in range(N_ROWS):
        for col in range(2, 2 + N_COLS):
            store.set(row, col, Cell(value=1.0))
    for row in range(0, N_ROWS, FORMULA_EVERY):
        workbook.set("Sheet1", CellAddress(row, 0), f"=C{row + 1}*2")
    return workbook


def test_insert_row_logical_work():
    """The acceptance numbers: 0 cells moved, reparses bounded by the
    affected set, ≥MIN_RATIO× below the seed's total-reparse behaviour."""
    workbook = build_workbook()
    store = workbook.sheet("Sheet1").store
    n_formulas = workbook.compute.n_formulas
    # Formulas whose references intersect rows >= EDIT_AT (each formula
    # references its own row, so this is exactly the bottom slice).
    formula_rows = range(0, N_ROWS, FORMULA_EVERY)
    affected = sum(1 for row in formula_rows if row >= EDIT_AT)
    store.stats.reset()
    workbook.compute.stats.reset()

    started = time.perf_counter()
    workbook.insert_rows("Sheet1", EDIT_AT, 1)
    elapsed = time.perf_counter() - started

    moved = store.stats.cells_moved
    reparses = workbook.compute.stats.reparses
    print(
        f"\ninsert 1 row @ {EDIT_AT} on {store.stats and len(store)} cells / "
        f"{n_formulas} formulas: {elapsed * 1000:.2f} ms, "
        f"cells moved {moved}, reparses {reparses} "
        f"(seed would reparse {n_formulas})"
    )
    assert moved == 0, "positional mapping must not relocate stored cells"
    assert reparses <= affected, "reparses must be bounded by the affected set"
    assert reparses * MIN_RATIO <= n_formulas, (
        f"expected >= {MIN_RATIO}x fewer reparses than the seed's "
        f"{n_formulas}, got {reparses}"
    )
    # The workbook is still correct: a moved formula follows its row.
    last_formula_row = max(formula_rows)
    assert workbook.get("Sheet1", CellAddress(last_formula_row + 1, 0)) == 2.0


def test_delete_rows_logical_work():
    """Deletes drop only the cells that occupied the removed slice and
    reparse only the intersecting formulas — nothing moves."""
    workbook = build_workbook()
    store = workbook.sheet("Sheet1").store
    n_formulas = workbook.compute.n_formulas
    store.stats.reset()
    workbook.compute.stats.reset()

    workbook.delete_rows("Sheet1", EDIT_AT, 1)

    assert store.stats.cells_moved == 0
    assert store.stats.cells_dropped == N_COLS + (1 if EDIT_AT % FORMULA_EVERY == 0 else 0)
    assert workbook.compute.stats.reparses * MIN_RATIO <= n_formulas


def test_insert_delete_wallclock(benchmark):
    """Wall-clock for an insert+delete pair in the middle of the sheet
    (paired so sheet size is stable across rounds)."""
    workbook = build_workbook()

    def edit():
        workbook.insert_rows("Sheet1", EDIT_AT, 1)
        workbook.delete_rows("Sheet1", EDIT_AT, 1)

    benchmark.pedantic(edit, rounds=10 if SMOKE else 30, iterations=1)
    store = workbook.sheet("Sheet1").store
    benchmark.extra_info["cells"] = len(store)
    benchmark.extra_info["formulas"] = workbook.compute.n_formulas
    benchmark.extra_info["cells_moved"] = store.stats.cells_moved
    benchmark.extra_info["reparses"] = workbook.compute.stats.reparses
    assert store.stats.cells_moved == 0


def test_wal_replay_of_structural_ops(tmp_path):
    """Server-layer guarantee: replaying the logged structural ops
    reproduces the identical sheet (the WAL path stays correct without
    the seed's whole-workbook reparse)."""
    from repro.server.service import WorkbookService, recover_state

    directory = str(tmp_path / "svc")
    service = WorkbookService(directory, fsync=False)
    session = service.connect("bench")
    for row in range(0, 20, 2):
        service.set_cell(session.session_id, "Sheet1", f"A{row + 1}", row)
    service.set_cell(session.session_id, "Sheet1", "B1", "=A1+100")
    service.apply(
        session.session_id,
        {"type": "insert_rows", "sheet": "Sheet1", "at": 4, "count": 3},
    )
    service.apply(
        session.session_id,
        {"type": "delete_rows", "sheet": "Sheet1", "at": 0, "count": 1},
    )
    expected = {
        (row, col): cell.value
        for row, col, cell in service.workbook.sheet("Sheet1").store.items()
    }
    service.close()

    recovered = recover_state(directory)
    got = {
        (row, col): cell.value
        for row, col, cell in recovered.workbook.sheet("Sheet1").store.items()
    }
    assert got == expected
