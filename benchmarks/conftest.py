"""Shared benchmark fixtures and builders.

Every module regenerates one experiment from DESIGN.md §3 (E1–E10).
Wall-clock comes from pytest-benchmark; *logical* metrics (blocks written,
rows scanned, statements executed) go into ``benchmark.extra_info`` so the
paper-shape claims are visible in the report independent of machine speed.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Database, Workbook
from repro.workloads.datasets import (
    generate_grades_data,
    generate_movie_data,
    load_grades_database,
    load_movie_database,
)


def write_bench_json(name: str, payload: dict) -> str:
    """Persist one benchmark's headline numbers as ``BENCH_<name>.json``.

    Written to the repo root (override with ``BENCH_RESULTS_DIR``) so
    successive runs leave a machine-readable perf trajectory alongside
    the human-readable pytest report.  ``smoke`` records whether the
    numbers came from the shrunken CI configuration."""
    directory = os.environ.get("BENCH_RESULTS_DIR") or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    record = {
        "bench": name,
        "smoke": os.environ.get("BENCH_SMOKE") == "1",
        **payload,
    }
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    """Emit the static analyzer's diagnostic counts as ``BENCH_analysis.json``.

    Piggybacks on the bench run so the perf trajectory files also track
    code-health drift: total findings, how many are grandfathered in
    ``ANALYSIS_BASELINE.txt``, and how many are new (which CI fails on)."""
    try:
        from repro.analysis import analyze_paths, load_baseline, partition

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        diagnostics = analyze_paths([os.path.join(root, "src")], root=root)
        baseline = load_baseline(os.path.join(root, "ANALYSIS_BASELINE.txt"))
        new, grandfathered, stale = partition(diagnostics, baseline)
        per_code: dict = {}
        for diagnostic in diagnostics:
            per_code[diagnostic.code] = per_code.get(diagnostic.code, 0) + 1
        write_bench_json(
            "analysis",
            {
                "total": len(diagnostics),
                "new": len(new),
                "baselined": len(grandfathered),
                "stale_baseline": len(stale),
                "per_code": per_code,
            },
        )
    except Exception as error:  # bookkeeping must never fail the bench run
        import sys

        print(f"BENCH_analysis.json not written: {error!r}", file=sys.stderr)


def build_movie_workbook(n_movies: int, n_actors: int | None = None) -> Workbook:
    data = generate_movie_data(
        n_movies=n_movies,
        n_actors=n_actors or max(n_movies // 2, 10),
        links_per_movie=3,
        seed=7,
    )
    return Workbook(database=load_movie_database(data))


def build_grades_workbook(n_students: int) -> Workbook:
    data = generate_grades_data(n_students=n_students, seed=13)
    return Workbook(database=load_grades_database(data))


def build_sequence_table(n_rows: int, name: str = "seq") -> Database:
    """A database with one n-row table (seq INT PRIMARY KEY, v REAL)."""
    db = Database()
    db.execute(f"CREATE TABLE {name} (seq INT PRIMARY KEY, v REAL)")
    table = db.table(name)
    for i in range(n_rows):
        table.insert((i, (i * 7919) % 1000 / 10.0), emit=False)
    return db
