"""E3 — Feature 3 / Fig 2c: two-way synchronisation latency.

Paper claim: "as modifications are made to the table on the front-end the
data in the relational database is updated, and the data displayed in cells
[of a dependent DBSQL] is immediately updated" — and the reverse direction.

We measure the full edit→DB→dependent-refresh round trip in both
directions, plus the batching win (one refresh for a bulk statement rather
than per-row refreshes).

Expected shape: per-edit latency is dominated by the dependent DBSQL
re-execution, linear in the queried table size but independent of workbook
size; batched bulk inserts amortise to ~one refresh per statement.
"""

import pytest

from repro import Workbook
from repro.workloads.traces import random_edit_trace


def make_synced_workbook(n_rows: int):
    wb = Workbook()
    wb.execute("CREATE TABLE items (id INT PRIMARY KEY, qty INT)")
    table = wb.database.table("items")
    for i in range(n_rows):
        table.insert((i, i % 100), emit=False)
    region = wb.dbtable("Sheet1", "A1", "items", window_rows=40)
    wb.dbsql("Sheet1", "E1", "SELECT sum(qty) FROM items")
    return wb, region


@pytest.mark.parametrize("n_rows", [100, 1000, 5000])
def test_frontend_edit_roundtrip(benchmark, n_rows):
    """Sheet edit -> UPDATE -> dependent DBSQL refresh (Fig 2c forward)."""
    wb, _ = make_synced_workbook(n_rows)
    trace = iter(random_edit_trace(38, 1, 100_000, seed=5))

    def edit():
        row, _, value = next(trace)
        wb.set("Sheet1", f"B{row + 2}", value)  # qty column, below header
        return wb.get("Sheet1", "E1")

    benchmark(edit)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["sync_events"] = wb.sync.stats.events_received


@pytest.mark.parametrize("n_rows", [100, 1000, 5000])
def test_backend_update_roundtrip(benchmark, n_rows):
    """SQL UPDATE -> region re-render + dependent DBSQL refresh."""
    wb, _ = make_synced_workbook(n_rows)
    values = iter(range(10_000_000))

    def backend_update():
        wb.execute(f"UPDATE items SET qty = {next(values) % 100} WHERE id = 7")
        return wb.get("Sheet1", "E1")

    benchmark(backend_update)
    benchmark.extra_info["n_rows"] = n_rows


@pytest.mark.parametrize("bulk", [10, 100])
def test_bulk_insert_batched_refresh(benchmark, bulk):
    """One refresh per batch, not per row (the sync batching win)."""
    wb, region = make_synced_workbook(100)
    next_id = iter(range(1000, 10_000_000))

    def bulk_insert():
        refreshes_before = region.refresh_count
        with wb.batch():
            for _ in range(bulk):
                wb.database.execute(f"INSERT INTO items VALUES ({next(next_id)}, 1)")
        return region.refresh_count - refreshes_before

    refreshes = benchmark(bulk_insert)
    benchmark.extra_info["bulk_rows"] = bulk
    benchmark.extra_info["refreshes_per_batch"] = refreshes
