"""Observability overhead: metrics on vs off over the HTAP trace.

The observability subsystem (:mod:`repro.obs`) claims to be cheap enough
to leave on in production and *free* when disabled:

* metrics ENABLED: counters/gauges/histograms live, every statement
  timed into a log-bucket histogram, every server apply timed — the
  whole HTAP trace must slow down by **< 5%** versus disabled,
* metrics DISABLED: the only residual cost is one boolean test per
  instrument call — a disabled ``Counter.inc`` / ``Histogram.observe``
  must cost well under a microsecond (the "~0% off" claim, measured
  directly rather than lost in run-to-run noise),
* tracing costs nothing when no trace is active: the null-span fast
  path returns a shared singleton, asserted below by identity.

The on/off comparison interleaves the two configurations and takes the
min of N repetitions, so one background scheduling blip cannot fake a
regression.  Results land in ``BENCH_observability.json`` via
:func:`benchmarks.conftest.write_bench_json`.

Run ``BENCH_SMOKE=1`` (the CI smoke step) to shrink the trace while
keeping every assertion live.
"""

from __future__ import annotations

import os
import time

from repro.engine.database import Database
from repro.obs import MetricsRegistry
from repro.obs.trace import _NULL_SPAN

from .conftest import write_bench_json

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

N_ROWS = 120 if SMOKE else 400
# Many short repetitions beat few long ones: min-of-N estimates the noise
# floor, and the floor is found more reliably with more samples.
N_ROUNDS = 20 if SMOKE else 30
REPEATS = 4 if SMOKE else 12
# The HTAP trace is statement-heavy on purpose: per-statement timing is
# the instrumentation's hot path, so this is the worst case for overhead.
OVERHEAD_CEILING = 1.05
DISABLED_CALL_CEILING_US = 1.0
# The runtime sanitizer (Database(sanitize=True)) asserts engine
# invariants on the buffer-pool and batch-scan hot paths; its budget is
# looser than the metrics one because each check inspects real data.
SANITIZER_CEILING = 1.10


def build_db(enabled: bool, sanitize: bool = False) -> Database:
    registry = MetricsRegistry(enabled=enabled)
    db = Database(
        page_capacity=32, buffer_frames=16, metrics=registry, sanitize=sanitize
    )
    db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
    table = db.table("t")
    for i in range(N_ROWS):
        table.insert((i, i * 2, i * 3, i * 5), emit=False)
    return db


def run_trace(db: Database) -> int:
    """The HTAP mix: narrow scans, point-ish reads, updates, inserts."""
    statements = 0
    value = N_ROWS
    for index in range(N_ROUNDS):
        db.execute(f"SELECT a, b FROM t WHERE a > {(index * 13) % N_ROWS}")
        db.execute(f"SELECT c FROM t WHERE d < {(index * 29) % (N_ROWS * 5)}")
        db.execute(f"UPDATE t SET b = {index} WHERE a = {(index * 7) % N_ROWS}")
        db.execute(f"INSERT INTO t VALUES ({value}, {value * 2}, {value * 3}, {value * 5})")
        value += 1
        statements += 4
    return statements


def timed_trace(enabled: bool, sanitize: bool = False) -> float:
    db = build_db(enabled, sanitize=sanitize)
    started = time.perf_counter()
    run_trace(db)
    return time.perf_counter() - started


def measure_overhead() -> dict:
    # Interleave on/off runs (robust against drift) and estimate each
    # config's floor as the mean of its 3 fastest repetitions — steadier
    # than the raw min, which inherits the jitter of a single lucky run.
    times = {"on": [], "off": []}
    timed_trace(enabled=False)  # warm-up: imports, code caches
    for _ in range(REPEATS):
        times["off"].append(timed_trace(enabled=False))
        times["on"].append(timed_trace(enabled=True))
    k = max(1, min(3, REPEATS))
    return {
        mode: sum(sorted(samples)[:k]) / k for mode, samples in times.items()
    }


def disabled_call_cost_us() -> float:
    """Average cost of one disabled instrument call, in microseconds."""
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("bench_disabled_total")
    histogram = registry.histogram("bench_disabled_seconds")
    n = 20_000 if SMOKE else 100_000
    started = time.perf_counter()
    for _ in range(n):
        counter.inc()
        histogram.observe(0.001)
    elapsed = time.perf_counter() - started
    return elapsed / (2 * n) * 1e6


def test_metrics_overhead_bounded():
    best = measure_overhead()
    ratio = best["on"] / best["off"]
    per_call_us = disabled_call_cost_us()

    # Tracing off the hot path: with no trace active the tracer hands out
    # the shared null span — no allocation, no timing.
    db = build_db(enabled=True)
    assert db.tracer.span("anything") is _NULL_SPAN
    assert db.tracer.current is _NULL_SPAN

    statements = N_ROUNDS * 4
    print(
        f"\nHTAP trace ({statements} statements, best-3 mean of {REPEATS}): "
        f"metrics off={best['off'] * 1e3:.1f}ms on={best['on'] * 1e3:.1f}ms "
        f"ratio={ratio:.3f}; disabled instrument call={per_call_us:.3f}us"
    )
    write_bench_json(
        "observability",
        {
            "statements": statements,
            "repeats": REPEATS,
            "metrics_off_ms": round(best["off"] * 1e3, 3),
            "metrics_on_ms": round(best["on"] * 1e3, 3),
            "overhead_ratio": round(ratio, 4),
            "disabled_call_us": round(per_call_us, 4),
        },
    )
    # Acceptance: <5% slowdown with metrics on, and a disabled instrument
    # call is sub-microsecond.
    assert ratio < OVERHEAD_CEILING, (
        f"metrics-on trace is {ratio:.3f}x metrics-off (ceiling {OVERHEAD_CEILING})"
    )
    assert per_call_us < DISABLED_CALL_CEILING_US, (
        f"disabled instrument call costs {per_call_us:.3f}us"
    )


def test_sanitizer_overhead_bounded():
    """Runtime sanitizer on vs off over the same HTAP trace, <10%."""
    times = {"on": [], "off": []}
    timed_trace(enabled=False)  # warm-up: imports, code caches
    # Alternate which configuration runs first: machine-speed drift over
    # the measurement window otherwise lands entirely on one side.
    for repeat in range(REPEATS):
        first, second = ("off", "on") if repeat % 2 == 0 else ("on", "off")
        for mode in (first, second):
            times[mode].append(timed_trace(enabled=False, sanitize=mode == "on"))
    k = max(1, min(3, REPEATS))
    best = {mode: sum(sorted(samples)[:k]) / k for mode, samples in times.items()}
    ratio = best["on"] / best["off"]

    # The checks must actually have run — a silently disarmed sanitizer
    # would make the ratio meaningless.
    db = build_db(enabled=False, sanitize=True)
    run_trace(db)
    assert db.sanitizer.checks > 0
    assert db.sanitizer.failures == 0

    print(
        f"\nHTAP trace (best-{k} mean of {REPEATS}): "
        f"sanitizer off={best['off'] * 1e3:.1f}ms on={best['on'] * 1e3:.1f}ms "
        f"ratio={ratio:.3f} ({db.sanitizer.checks} checks)"
    )
    write_bench_json(
        "observability_sanitizer",
        {
            "repeats": REPEATS,
            "sanitizer_off_ms": round(best["off"] * 1e3, 3),
            "sanitizer_on_ms": round(best["on"] * 1e3, 3),
            "sanitizer_overhead_ratio": round(ratio, 4),
            "sanitizer_checks": db.sanitizer.checks,
        },
    )
    assert ratio < SANITIZER_CEILING, (
        f"sanitizer-on trace is {ratio:.3f}x sanitizer-off "
        f"(ceiling {SANITIZER_CEILING})"
    )


def test_registry_counts_the_trace():
    """Sanity: with metrics on, the registry actually saw the workload."""
    db = build_db(enabled=True)
    statements = run_trace(db)
    snap = db.metrics()
    # +1 for the CREATE TABLE in build_db.
    assert snap["db_statements_total"] == statements + 1
    latency = snap["db_statement_seconds"]
    assert latency["count"] == statements + 1
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
    assert snap["pager_reads"] >= 0 and snap["buffer_hits"] > 0


if __name__ == "__main__":
    test_metrics_overhead_bounded()
    test_sanitizer_overhead_bounded()
    test_registry_counts_the_trace()
