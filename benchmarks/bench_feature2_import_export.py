"""E2 — Feature 2 / Fig 2b: create-table-from-range and DBTABLE import.

Paper claim: selecting a range and issuing *create table* infers the schema
from "the column heading and the data" and replaces the range with a live
DBTABLE.  We measure both directions as the range grows:

* export: grid → schema inference → table population,
* import: DBTABLE render of an existing table (windowed vs full).

Expected shape: export cost is linear in the range size (every value must
be typed and inserted); the *windowed* import is flat regardless of table
size — that asymmetry is DataSpread's point.
"""

import pytest

from repro import Database, Workbook
from repro.core.table_io import create_table_from_grid
from benchmarks.conftest import build_sequence_table


def make_grid(n_rows: int, n_cols: int = 4):
    header = [f"col{i}" for i in range(n_cols)]
    header[0] = "id"
    rows = [[r] + [f"v{r}_{c}" for c in range(1, n_cols)] for r in range(n_rows)]
    return [header] + rows


@pytest.mark.parametrize("n_rows", [100, 1000, 5000])
def test_export_create_table_from_grid(benchmark, n_rows):
    grid = make_grid(n_rows)
    counter = iter(range(10_000_000))

    def export():
        db = Database()
        return create_table_from_grid(db, f"t{next(counter)}", grid, primary_key="id")

    table = benchmark(export)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["inferred_columns"] = len(table.column_names)


@pytest.mark.parametrize("n_rows", [100, 1000, 5000])
def test_export_full_cycle_with_dbtable_replacement(benchmark, n_rows):
    """The complete Fig 2b interaction including writing the DBTABLE
    region back onto the sheet (windowed so the render stays bounded)."""
    grid = make_grid(n_rows)
    counter = iter(range(10_000_000))

    def full_cycle():
        wb = Workbook()
        wb.sheet("Sheet1").set_grid("A1", grid)
        return wb.create_table_from_range(
            "Sheet1",
            f"A1:D{n_rows + 1}",
            f"t{next(counter)}",
            primary_key="id",
            window_rows=40,
        )

    benchmark(full_cycle)
    benchmark.extra_info["n_rows"] = n_rows


@pytest.mark.parametrize("n_rows", [1000, 20_000, 100_000])
def test_import_windowed_dbtable_is_flat(benchmark, n_rows):
    db = build_sequence_table(n_rows)
    wb = Workbook(database=db)

    def import_windowed():
        region = wb.dbtable("Sheet1", "A1", "seq", window_rows=40)
        wb.remove_region(region.context.region_id)
        return region

    benchmark(import_windowed)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["rendered_rows"] = 40


@pytest.mark.parametrize("n_rows", [1000, 5000])
def test_import_full_dbtable_is_linear(benchmark, n_rows):
    db = build_sequence_table(n_rows)
    wb = Workbook(database=db)

    def import_full():
        region = wb.dbtable("Sheet1", "A1", "seq")
        wb.remove_region(region.context.region_id)
        return region

    benchmark(import_full)
    benchmark.extra_info["n_rows"] = n_rows
