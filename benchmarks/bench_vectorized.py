"""Vectorized batch execution over compressed column fragments.

The executor refactor's headline claims, measured head-to-head on two
databases holding byte-identical data — ``Database(vectorized=True)``
(batched columnar scan, selection bitmaps, late materialization, page
encodings) versus ``Database(vectorized=False)`` (the retained
tuple-at-a-time path):

* a narrow SELECT over a wide (12-column) hybrid table runs at **>= 3x
  the rows/second** on the vectorized + encoded path,
* scanning a low-cardinality column off encoded pages **decodes fewer
  bytes** than the plain-page representation of the same column,
* both paths return **identical rows** for every probe query (filters
  that batch-compile, filters that fall back to row closures, and DML).

Headline numbers land in ``BENCH_vectorized.json`` via
:func:`benchmarks.conftest.write_bench_json`.  Run ``BENCH_SMOKE=1``
(the CI smoke step) to shrink the table while keeping every assertion
live.
"""

from __future__ import annotations

import os
import time

from repro.engine.database import Database

from .conftest import write_bench_json

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

N_COLS = 12
N_ROWS = 3000 if SMOKE else 24000
REPEATS = 3 if SMOKE else 8
SPEEDUP_FLOOR = 3.0

PROBES = [
    # (sql, params): mix of batch-compilable and row-fallback filters.
    ("SELECT c0, c2 FROM wide WHERE c2 < 40", []),
    ("SELECT c0, c1 FROM wide WHERE c1 = 3 AND c0 >= ?", [100]),
    ("SELECT c3, c4 FROM wide WHERE c3 LIKE 'tag1%'", []),  # row fallback
    ("SELECT c0 FROM wide WHERE c1 IN (1, 2) OR c2 BETWEEN 5 AND 9", []),
    ("SELECT COUNT(*), SUM(c2) FROM wide WHERE c1 <> 0", []),
]


def build_db(vectorized: bool) -> Database:
    """A 12-column table: a unique key, low-cardinality ints (dict/RLE
    bait), a few-valued text tag, and packed-int ballast columns."""
    db = Database(vectorized=vectorized, auto_layout_interval=0)
    columns = ["c0 INT", "c1 INT", "c2 INT", "c3 TEXT"] + [
        f"c{i} INT" for i in range(4, N_COLS)
    ]
    db.execute(f"CREATE TABLE wide ({', '.join(columns)})")
    table = db.table("wide")
    for i in range(N_ROWS):
        row = [i, i % 7, (i * 13) % 100, f"tag{i % 4}"] + [
            (i * 31 + j) % 250 for j in range(4, N_COLS)
        ]
        table.insert(tuple(row), emit=False)
    return db


def encode_all_groups(db: Database) -> float:
    """Encode every chain of ``wide``; returns the mean compression ratio."""
    store = db.table("wide").store
    ratios = []
    for group_index in range(store.n_groups):
        store.encode_group(group_index)
        ratios.append(store.group_encoding_ratio(group_index))
    return sum(ratios) / len(ratios)


def timed_narrow_scan(db: Database) -> float:
    """Best-of-``REPEATS`` seconds for the narrow 2-of-12-column scan
    (min over runs shields the ratio from scheduler noise)."""
    sql = "SELECT c0, c2 FROM wide WHERE c2 < 10"
    db.execute(sql)  # warm the cache outside the timed window
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        db.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best


def test_vectorized_beats_tuple_path():
    tuple_db = build_db(vectorized=False)
    vector_db = build_db(vectorized=True)
    ratio = encode_all_groups(vector_db)

    # Correctness first: every probe returns identical rows on both paths.
    for sql, params in PROBES:
        expected = tuple_db.execute(sql, params).rows
        actual = vector_db.execute(sql, params).rows
        assert actual == expected, f"paths diverged on {sql!r}"

    tuple_seconds = timed_narrow_scan(tuple_db)
    vector_seconds = timed_narrow_scan(vector_db)
    tuple_rate = N_ROWS / tuple_seconds
    vector_rate = N_ROWS / vector_seconds
    speedup = vector_rate / tuple_rate

    # Encoded pages decode fewer bytes than plain ones for the same
    # low-cardinality column scan (c1 cycles through 7 values).
    def column_bytes(db: Database, name: str) -> int:
        store = db.table("wide").store
        before = store.bytes_decoded
        for _ in store.scan_column(name):
            pass
        return store.bytes_decoded - before

    plain_bytes = column_bytes(tuple_db, "c1")
    encoded_bytes = column_bytes(vector_db, "c1")

    print(
        f"\nnarrow scan over {N_ROWS} rows x {N_COLS} cols: "
        f"tuple={tuple_rate:,.0f} rows/s vector={vector_rate:,.0f} rows/s "
        f"({speedup:.1f}x), encoding ratio {ratio:.1f}x, "
        f"c1 scan bytes plain={plain_bytes} encoded={encoded_bytes}"
    )
    write_bench_json(
        "vectorized",
        {
            "rows": N_ROWS,
            "cols": N_COLS,
            "tuple_rows_per_s": round(tuple_rate),
            "vectorized_rows_per_s": round(vector_rate),
            "speedup": round(speedup, 2),
            "encoding_ratio": round(ratio, 2),
            "scan_bytes_plain": plain_bytes,
            "scan_bytes_encoded": encoded_bytes,
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized+encoded path only {speedup:.2f}x the tuple path "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    assert encoded_bytes < plain_bytes, (
        f"encoded scan decoded {encoded_bytes} bytes, "
        f"plain decoded {plain_bytes}"
    )
