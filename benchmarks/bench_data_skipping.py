"""Data skipping and secondary indexes: the selective-read stack.

Head-to-head on two databases holding byte-identical data —
``Database(data_skipping=True)`` (zone maps + cost-based access paths)
versus ``Database(data_skipping=False)`` (exhaustive scans):

* a <= 1%-selectivity predicate over a 100k-row table fetches **>= 5x
  fewer pages** once zone maps are warm, and both paths return
  **identical rows**,
* the planner picks an **index probe** for a point lookup and a **scan**
  for a non-selective predicate, verified via trace spans,
* the skipped + fetched page counts close over the whole chain (the
  span counter and the pager's independent tag accounting agree).

Headline numbers land in ``BENCH_data_skipping.json`` via
:func:`benchmarks.conftest.write_bench_json`.  Run ``BENCH_SMOKE=1``
(the CI smoke step) to shrink the table while keeping every assertion
live.
"""

from __future__ import annotations

import os

from repro.engine.database import Database

from .conftest import write_bench_json

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

N_ROWS = 10_000 if SMOKE else 100_000
SELECTIVE_FLOOR = N_ROWS - N_ROWS // 100  # the top 1% of v values
PAGE_RATIO_FLOOR = 5.0


def build_db(data_skipping: bool) -> Database:
    db = Database(
        page_capacity=128, buffer_frames=64, data_skipping=data_skipping
    )
    db.execute("CREATE TABLE events (k INT PRIMARY KEY, v INT, w INT)")
    table = db.table("events")
    for i in range(N_ROWS):
        table.insert((i, i, (i * 13) % 97), emit=False)
    db.checkpoint()
    return db


def find_prefix(span, prefix: str):
    if span.name.startswith(prefix):
        return span
    for child in span.children:
        hit = find_prefix(child, prefix)
        if hit is not None:
            return hit
    return None


def pages_fetched(db: Database, sql: str):
    """(rows, pages read from the pager) for one cold-cache execution."""
    store = db.table("events").store
    store.pool.drop_cache()
    before = [store.group_io_stats(g).snapshot() for g in range(store.n_groups)]
    rows = db.execute(sql).rows
    fetched = sum(
        store.group_io_stats(g).delta(before[g]).reads
        for g in range(store.n_groups)
    )
    return rows, fetched


def test_selective_scan_reads_fewer_pages():
    skipping = build_db(data_skipping=True)
    exhaustive = build_db(data_skipping=False)
    sql = f"SELECT k, w FROM events WHERE v >= {SELECTIVE_FLOOR}"

    # Warm the zone cache: the first pass fetches pages to compute their
    # zones; from then on dead pages are skipped without pool traffic.
    warm_rows, warm_pages = pages_fetched(skipping, sql)
    rows_skipping, pages_skipping = pages_fetched(skipping, sql)
    rows_exhaustive, pages_exhaustive = pages_fetched(exhaustive, sql)

    assert sorted(rows_skipping) == sorted(rows_exhaustive) == sorted(warm_rows)
    assert len(rows_skipping) == N_ROWS - SELECTIVE_FLOOR
    assert pages_skipping > 0
    ratio = pages_exhaustive / pages_skipping
    assert ratio >= PAGE_RATIO_FLOOR, (
        f"skipping fetched {pages_skipping} pages vs {pages_exhaustive} "
        f"exhaustive — {ratio:.1f}x, need >= {PAGE_RATIO_FLOOR}x"
    )

    # The planner's access-path decisions, verified via trace spans: an
    # indexed point lookup probes the B+-tree; a non-selective range
    # predicate stays on the (skipping) scan.
    skipping.execute("CREATE UNIQUE INDEX idx_v ON events (v)")
    point_sql = f"SELECT k FROM events WHERE v = {N_ROWS // 2}"
    point_result, point_trace = skipping.trace_statement(point_sql)
    assert point_result.rows == [(N_ROWS // 2,)]
    index_span = find_prefix(point_trace, "IndexScan")
    assert index_span is not None, "point lookup must choose the index"
    assert index_span.counters["index_probes"] == 1

    range_result, range_trace = skipping.trace_statement(
        "SELECT k FROM events WHERE v >= 0"
    )
    assert len(range_result.rows) == N_ROWS
    assert find_prefix(range_trace, "IndexScan") is None
    scan_span = find_prefix(range_trace, "ProjectedScan")
    assert scan_span is not None, "non-selective predicate must stay a scan"

    snap = skipping.metrics()
    write_bench_json(
        "data_skipping",
        {
            "n_rows": N_ROWS,
            "selectivity": (N_ROWS - SELECTIVE_FLOOR) / N_ROWS,
            "rows_returned": len(rows_skipping),
            "pages_fetched_skipping": pages_skipping,
            "pages_fetched_exhaustive": pages_exhaustive,
            "page_ratio": round(ratio, 2),
            "warm_up_pages": warm_pages,
            "db_pages_skipped": snap["db_pages_skipped"],
            "db_index_lookups": snap["db_index_lookups"],
            "point_lookup_path": "index",
            "range_scan_path": "scan",
        },
    )
