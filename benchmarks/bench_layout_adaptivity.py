"""Workload-adaptive layouts: adaptive beats the best static layout.

Paper §3 stores each table as attribute groups so the physical layout
*can* track the workload; this benchmark shows the adaptive loop
(:class:`~repro.engine.layout.LayoutAdvisor` +
:class:`~repro.engine.layout.LayoutMigration`) actually cashing that in.

Three identical tables replay the same alternating HTAP trace
(:func:`repro.workloads.traces.alternating_layout_trace` — scan-heavy
analytical phases interleaved with update-heavy transactional phases):

* static ROW layout — wins the transactional phases, pays the full table
  width on every column scan,
* static COLUMN layout — wins the analytical phases, pays one block per
  group on every point read / insert,
* ADAPTIVE — starts as a row store, gets a maintenance tick every few
  operations, and migrates online (one bounded restructure step at a
  time, with the replayed reads/writes landing *between* steps).

Claims measured and asserted:

* adaptive total page I/O (reads + writes, migration traffic included)
  is **strictly below both** static layouts on the mixed trace,
* zero correctness divergence: all three tables hold identical rows at
  every phase boundary — i.e. before, during (ticks leave migrations
  mid-flight across phase boundaries) and after migrations,
* the adaptive table really did re-partition (at least one migration).

Run ``BENCH_SMOKE=1`` (the CI smoke step) to shrink the trace while
keeping every assertion live.
"""

from __future__ import annotations

import os
import time

from repro.engine.database import Database
from repro.engine.layout import LayoutAdvisor
from repro.engine.pager import BufferPool
from repro.engine.schema import TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.table import Table
from repro.engine.types import DBType
from repro.workloads.traces import alternating_layout_trace

from .conftest import write_bench_json

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

N_COLS = 8
N_ROWS = 300 if SMOKE else 1500
PAGE_CAPACITY = 32 if SMOKE else 64
FRAMES = 16 if SMOKE else 32
PHASE_LENGTH = 300 if SMOKE else 1000
N_PHASES = 4
TICK_EVERY = 10 if SMOKE else 25


def build_table(name: str, layout: LayoutPolicy) -> Table:
    schema = TableSchema.from_pairs([(f"c{i}", DBType.INTEGER) for i in range(N_COLS)])
    pool = BufferPool(capacity=FRAMES, page_capacity=PAGE_CAPACITY)
    table = Table(name, schema, layout=layout, pool=pool, page_capacity=PAGE_CAPACITY)
    for i in range(N_ROWS):
        table.insert(tuple((i * 7 + j) % 1000 for j in range(N_COLS)), emit=False)
    table.checkpoint()
    pool.stats.reset()
    return table


def replay_phase(table: Table, ops, state: dict, adaptive: bool) -> int:
    """Replay one phase; returns the block I/O it cost (verification and
    checkpointing excluded from no table's account — both are inside)."""
    store = table.store
    columns = store.schema.column_names
    rids = state["rids"]
    before = store.pool.stats.snapshot()
    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "scan_col":
            for _ in store.scan_column(columns[op[1] % len(columns)]):
                pass
        elif kind == "point_read":
            store.get(rids[op[1] % len(rids)])
        elif kind == "col_update":
            store.update_column(
                rids[op[1] % len(rids)], columns[op[2] % len(columns)], op[3]
            )
        else:  # insert
            value = state["next_value"]
            state["next_value"] += 1
            rids.append(
                store.insert(tuple((value * 7 + j) % 1000 for j in range(N_COLS)))
            )
        if adaptive and (index + 1) % TICK_EVERY == 0:
            table.layout_tick(steps=1)
    store.checkpoint()
    return store.pool.stats.delta(before).total


def run_benchmark():
    tables = {
        "row": build_table("t_row", LayoutPolicy.ROW),
        "column": build_table("t_col", LayoutPolicy.COLUMN),
        "adaptive": build_table("t_adaptive", LayoutPolicy.ROW),
    }
    adaptive = tables["adaptive"]
    adaptive.set_auto_layout(True)
    adaptive.layout_advisor.min_ops = 24

    states = {
        name: {"rids": list(table.store.rids()), "next_value": N_ROWS}
        for name, table in tables.items()
    }
    totals = {name: 0 for name in tables}
    wall = {name: 0.0 for name in tables}
    layouts_seen = [[list(g) for g in adaptive.schema.groups]]

    for phase in range(N_PHASES):
        # One phase of the alternating trace (regenerated deterministically
        # so every table replays the identical op sequence).
        ops = alternating_layout_trace(N_COLS, PHASE_LENGTH, phase + 1, seed=40)[
            phase * PHASE_LENGTH :
        ]
        for name, table in tables.items():
            started = time.perf_counter()
            totals[name] += replay_phase(
                table, ops, states[name], adaptive=(name == "adaptive")
            )
            wall[name] += time.perf_counter() - started
        # Correctness: identical logical contents at every phase boundary —
        # including boundaries where the adaptive table is mid-migration.
        reference = sorted(
            tables["row"].store.read_row(rid) for rid in tables["row"].store.rids()
        )
        for name, table in tables.items():
            rows = sorted(table.store.read_row(rid) for rid in table.store.rids())
            assert rows == reference, f"{name} diverged at phase {phase}"
            # Replay drives the store directly (positions unused), so
            # validate the storage layer itself.
            table.store.validate()
        layouts_seen.append([list(g) for g in adaptive.schema.groups])

    # Drain any still-running migration so its cost is charged too.
    before = adaptive.store.pool.stats.snapshot()
    while adaptive.migration_active:
        adaptive.layout_tick(steps=4)
    adaptive.store.checkpoint()
    totals["adaptive"] += adaptive.store.pool.stats.delta(before).total

    distinct_layouts = {
        frozenset(frozenset(c.lower() for c in g) for g in layout)
        for layout in layouts_seen
    }
    migrations = len(distinct_layouts) - 1
    return totals, migrations, wall, layouts_seen


def test_adaptive_beats_static_layouts():
    totals, migrations, wall, layouts_seen = run_benchmark()
    print(
        f"\nblocks touched over {N_PHASES}x{PHASE_LENGTH} alternating ops: "
        f"row={totals['row']} column={totals['column']} "
        f"adaptive={totals['adaptive']} "
        f"(wall row={wall['row']:.2f}s column={wall['column']:.2f}s "
        f"adaptive={wall['adaptive']:.2f}s)"
    )
    print(f"adaptive layouts per phase: {layouts_seen}")
    write_bench_json(
        "layout_adaptivity",
        {
            "ops": N_PHASES * PHASE_LENGTH,
            "blocks": dict(totals),
            "migrations": migrations,
            "wall_s": {name: round(seconds, 3) for name, seconds in wall.items()},
        },
    )
    # The headline claim: adaptivity strictly beats *both* static extremes
    # on total page I/O for the mixed trace — migration traffic included.
    assert totals["adaptive"] < totals["row"], (
        f"adaptive {totals['adaptive']} not below static row {totals['row']}"
    )
    assert totals["adaptive"] < totals["column"], (
        f"adaptive {totals['adaptive']} not below static column {totals['column']}"
    )
    # And it got there by actually re-partitioning.
    assert migrations >= 1, "adaptive table never changed layout"


# -- the column-set-aware scan pipeline -------------------------------------
#
# Two further claims, added with the ProjectedScan refactor:
#
# * a narrow SELECT over a wide hybrid-layout table reads strictly fewer
#   pages than the same query on the full-row scan path (the seed
#   behaviour, reproduced with ``projection_pushdown=False``),
# * an alternating two-query workload whose column sets overlap drives
#   the co-access advisor to a grouping that beats the singleton-only
#   advisor AND both static extremes on total page I/O.

WIDE_COLS = 12
WIDE_ROWS = 250 if SMOKE else 400
WIDE_CAPACITY = 32
WIDE_FRAMES = 16
CO_ROUNDS = 50 if SMOKE else 100


def build_wide_db(projection_pushdown: bool, auto_interval: int = 0) -> Database:
    db = Database(
        page_capacity=WIDE_CAPACITY,
        buffer_frames=WIDE_FRAMES,
        auto_layout_interval=auto_interval,
        projection_pushdown=projection_pushdown,
    )
    columns = ", ".join(f"c{i} INT" for i in range(WIDE_COLS))
    db.execute(f"CREATE TABLE t ({columns})")
    table = db.table("t")
    for i in range(WIDE_ROWS):
        table.insert(
            tuple((i * 7 + j) % 1000 for j in range(WIDE_COLS)), emit=False
        )
    return db


def reset_measurement(db: Database) -> None:
    db.table("t").store.access_stats.reset()
    db.checkpoint()
    db.catalog.pool.drop_cache()
    db.reset_io_stats()


def test_narrow_select_reads_fewer_pages():
    """A 2-column SELECT with a selective WHERE over a wide hybrid table
    touches strictly fewer pages than the seed's full-row scan path."""
    groups = [[f"c{g * 3 + j}" for j in range(3)] for g in range(WIDE_COLS // 3)]
    query = "SELECT c0, c1 FROM t WHERE c2 < 200"
    reads = {}
    rows = {}
    for label, pushdown in (("projected", True), ("full-row", False)):
        db = build_wide_db(projection_pushdown=pushdown)
        db.table("t").store.restructure(groups)  # hybrid: 4 groups of 3
        reset_measurement(db)
        rows[label] = db.execute(query).rows
        reads[label] = db.io_stats.reads
    print(
        f"\nnarrow SELECT over {WIDE_COLS}-col hybrid table: "
        f"projected={reads['projected']} page reads, "
        f"full-row={reads['full-row']} page reads"
    )
    assert rows["projected"] == rows["full-row"]
    assert reads["projected"] < reads["full-row"], (
        f"projected scan read {reads['projected']} pages, "
        f"full-row path {reads['full-row']}"
    )


def replay_overlapping_workload(mode: str):
    """The HTAP mix for one configuration: two alternating narrow SELECTs
    with overlapping column sets ({c0,c1} and {c0,c1,c2}), viewport
    window fetches (full-row point reads), and single-row INSERTs."""
    db = build_wide_db(
        projection_pushdown=True,
        auto_interval=(8 if mode.startswith("auto") else 0),
    )
    table = db.table("t")
    if mode == "row":
        db.execute("ALTER TABLE t SET LAYOUT ROW")
    elif mode == "column":
        db.execute("ALTER TABLE t SET LAYOUT COLUMN")
    else:
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        # This scenario compares the two advisors' *grouping* decisions;
        # with encodings on, the compressible fixture rows get encoded
        # first and neither advisor migrates at all (both priced cheap).
        table.auto_encode = False
        table.layout_advisor = LayoutAdvisor(
            min_ops=24, co_access=(mode == "auto-coaccess")
        )
    reset_measurement(db)
    value = WIDE_ROWS
    for index in range(CO_ROUNDS):
        db.execute(f"SELECT c0 FROM t WHERE c1 > {(index * 13) % 900}")
        db.execute(f"SELECT c0, c1 FROM t WHERE c2 > {(index * 29) % 900}")
        for k in range(10):
            table.window((index * 37 + k * 53) % (table.n_rows - 8), 8)
        for _ in range(4):
            values = ",".join(
                str((value * 7 + j) % 1000) for j in range(WIDE_COLS)
            )
            db.execute(f"INSERT INTO t VALUES ({values})")
            value += 1
    # Charge any still-running migration to its own account.
    while table.migration_active:
        table.layout_tick(steps=4)
    db.checkpoint()
    return db.io_stats.total, table.schema.groups


def test_coaccess_advisor_beats_singletons_and_statics():
    """The co-access advisor's clustered grouping wins the overlapping
    two-query workload on total page I/O — against the singleton-only
    advisor and against both static extremes."""
    totals = {}
    groups = {}
    for mode in ("row", "column", "auto-singleton", "auto-coaccess"):
        totals[mode], groups[mode] = replay_overlapping_workload(mode)
    print(
        f"\noverlapping workload over {CO_ROUNDS} rounds: "
        + " ".join(f"{mode}={totals[mode]}" for mode in totals)
    )
    print(f"co-access grouping: {groups['auto-coaccess']}")
    for rival in ("row", "column", "auto-singleton"):
        assert totals["auto-coaccess"] < totals[rival], (
            f"co-access {totals['auto-coaccess']} not below {rival} "
            f"{totals[rival]}"
        )
    # It won by clustering: the jointly scanned columns share a group.
    assert any(
        {"c0", "c1"} <= {name.lower() for name in group}
        for group in groups["auto-coaccess"]
    ), f"no co-access cluster in {groups['auto-coaccess']}"


if __name__ == "__main__":
    test_adaptive_beats_static_layouts()
    test_narrow_select_reads_fewer_pages()
    test_coaccess_advisor_beats_singletons_and_statics()
