"""Workload-adaptive layouts: adaptive beats the best static layout.

Paper §3 stores each table as attribute groups so the physical layout
*can* track the workload; this benchmark shows the adaptive loop
(:class:`~repro.engine.layout.LayoutAdvisor` +
:class:`~repro.engine.layout.LayoutMigration`) actually cashing that in.

Three identical tables replay the same alternating HTAP trace
(:func:`repro.workloads.traces.alternating_layout_trace` — scan-heavy
analytical phases interleaved with update-heavy transactional phases):

* static ROW layout — wins the transactional phases, pays the full table
  width on every column scan,
* static COLUMN layout — wins the analytical phases, pays one block per
  group on every point read / insert,
* ADAPTIVE — starts as a row store, gets a maintenance tick every few
  operations, and migrates online (one bounded restructure step at a
  time, with the replayed reads/writes landing *between* steps).

Claims measured and asserted:

* adaptive total page I/O (reads + writes, migration traffic included)
  is **strictly below both** static layouts on the mixed trace,
* zero correctness divergence: all three tables hold identical rows at
  every phase boundary — i.e. before, during (ticks leave migrations
  mid-flight across phase boundaries) and after migrations,
* the adaptive table really did re-partition (at least one migration).

Run ``BENCH_SMOKE=1`` (the CI smoke step) to shrink the trace while
keeping every assertion live.
"""

from __future__ import annotations

import os
import time

from repro.engine.pager import BufferPool
from repro.engine.schema import TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.table import Table
from repro.engine.types import DBType
from repro.workloads.traces import alternating_layout_trace

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

N_COLS = 8
N_ROWS = 300 if SMOKE else 1500
PAGE_CAPACITY = 32 if SMOKE else 64
FRAMES = 16 if SMOKE else 32
PHASE_LENGTH = 300 if SMOKE else 1000
N_PHASES = 4
TICK_EVERY = 10 if SMOKE else 25


def build_table(name: str, layout: LayoutPolicy) -> Table:
    schema = TableSchema.from_pairs([(f"c{i}", DBType.INTEGER) for i in range(N_COLS)])
    pool = BufferPool(capacity=FRAMES, page_capacity=PAGE_CAPACITY)
    table = Table(name, schema, layout=layout, pool=pool, page_capacity=PAGE_CAPACITY)
    for i in range(N_ROWS):
        table.insert(tuple((i * 7 + j) % 1000 for j in range(N_COLS)), emit=False)
    table.checkpoint()
    pool.stats.reset()
    return table


def replay_phase(table: Table, ops, state: dict, adaptive: bool) -> int:
    """Replay one phase; returns the block I/O it cost (verification and
    checkpointing excluded from no table's account — both are inside)."""
    store = table.store
    columns = store.schema.column_names
    rids = state["rids"]
    before = store.pool.stats.snapshot()
    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "scan_col":
            for _ in store.scan_column(columns[op[1] % len(columns)]):
                pass
        elif kind == "point_read":
            store.get(rids[op[1] % len(rids)])
        elif kind == "col_update":
            store.update_column(
                rids[op[1] % len(rids)], columns[op[2] % len(columns)], op[3]
            )
        else:  # insert
            value = state["next_value"]
            state["next_value"] += 1
            rids.append(
                store.insert(tuple((value * 7 + j) % 1000 for j in range(N_COLS)))
            )
        if adaptive and (index + 1) % TICK_EVERY == 0:
            table.layout_tick(steps=1)
    store.checkpoint()
    return store.pool.stats.delta(before).total


def run_benchmark():
    tables = {
        "row": build_table("t_row", LayoutPolicy.ROW),
        "column": build_table("t_col", LayoutPolicy.COLUMN),
        "adaptive": build_table("t_adaptive", LayoutPolicy.ROW),
    }
    adaptive = tables["adaptive"]
    adaptive.set_auto_layout(True)
    adaptive.layout_advisor.min_ops = 24

    states = {
        name: {"rids": list(table.store.rids()), "next_value": N_ROWS}
        for name, table in tables.items()
    }
    totals = {name: 0 for name in tables}
    wall = {name: 0.0 for name in tables}
    layouts_seen = [[list(g) for g in adaptive.schema.groups]]

    for phase in range(N_PHASES):
        # One phase of the alternating trace (regenerated deterministically
        # so every table replays the identical op sequence).
        ops = alternating_layout_trace(N_COLS, PHASE_LENGTH, phase + 1, seed=40)[
            phase * PHASE_LENGTH :
        ]
        for name, table in tables.items():
            started = time.perf_counter()
            totals[name] += replay_phase(
                table, ops, states[name], adaptive=(name == "adaptive")
            )
            wall[name] += time.perf_counter() - started
        # Correctness: identical logical contents at every phase boundary —
        # including boundaries where the adaptive table is mid-migration.
        reference = sorted(
            tables["row"].store.read_row(rid) for rid in tables["row"].store.rids()
        )
        for name, table in tables.items():
            rows = sorted(table.store.read_row(rid) for rid in table.store.rids())
            assert rows == reference, f"{name} diverged at phase {phase}"
            # Replay drives the store directly (positions unused), so
            # validate the storage layer itself.
            table.store.validate()
        layouts_seen.append([list(g) for g in adaptive.schema.groups])

    # Drain any still-running migration so its cost is charged too.
    before = adaptive.store.pool.stats.snapshot()
    while adaptive.migration_active:
        adaptive.layout_tick(steps=4)
    adaptive.store.checkpoint()
    totals["adaptive"] += adaptive.store.pool.stats.delta(before).total

    distinct_layouts = {
        frozenset(frozenset(c.lower() for c in g) for g in layout)
        for layout in layouts_seen
    }
    migrations = len(distinct_layouts) - 1
    return totals, migrations, wall, layouts_seen


def test_adaptive_beats_static_layouts():
    totals, migrations, wall, layouts_seen = run_benchmark()
    print(
        f"\nblocks touched over {N_PHASES}x{PHASE_LENGTH} alternating ops: "
        f"row={totals['row']} column={totals['column']} "
        f"adaptive={totals['adaptive']} "
        f"(wall row={wall['row']:.2f}s column={wall['column']:.2f}s "
        f"adaptive={wall['adaptive']:.2f}s)"
    )
    print(f"adaptive layouts per phase: {layouts_seen}")
    # The headline claim: adaptivity strictly beats *both* static extremes
    # on total page I/O for the mixed trace — migration traffic included.
    assert totals["adaptive"] < totals["row"], (
        f"adaptive {totals['adaptive']} not below static row {totals['row']}"
    )
    assert totals["adaptive"] < totals["column"], (
        f"adaptive {totals['adaptive']} not below static column {totals['column']}"
    )
    # And it got there by actually re-partitioning.
    assert migrations >= 1, "adaptive table never changed layout"


if __name__ == "__main__":
    test_adaptive_beats_static_layouts()
