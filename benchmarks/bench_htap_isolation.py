"""HTAP isolation: apply-path tail latency with maintenance off-path.

The PR-9 headline claim, measured head-to-head on two databases running
a byte-identical workload — interleaved INSERT applies, a concurrent
analytical scan thread, and repeated online layout migrations — with
the only difference being *where* maintenance runs:

* **inline** (``background_maintenance=False``): the auto-tick cadence
  runs full unbudgeted migration steps on the apply thread, so an apply
  that lands on the cadence pays for a chain rewrite it did not ask for;
* **background** (``background_maintenance=True``): the apply path only
  wakes the :class:`~repro.engine.maintenance.MaintenanceWorker`, which
  runs budgeted steps off-path while open scans stream their snapshots.

Asserted: the **p99 apply latency under the concurrent analytical scan
is strictly lower** in background mode, and both databases end with
**identical table contents** (maintenance placement must never change
query results).  Headline numbers land in ``BENCH_htap_isolation.json``
via :func:`benchmarks.conftest.write_bench_json`.  Run ``BENCH_SMOKE=1``
(the CI smoke step) to shrink the workload while keeping every
assertion live.
"""

from __future__ import annotations

import os
import threading
import time

from repro.engine.database import Database

from .conftest import write_bench_json

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SEED_ROWS = 2500 if SMOKE else 6000
N_APPLIES = 260 if SMOKE else 640
# Re-arm toward a fresh target every few dozen applies: a migration is
# in flight for most of the run, so every inline cadence tick (1 in
# TICK_INTERVAL applies) pays a full unbudgeted step — the tail the
# background worker is built to absorb.
MIGRATE_EVERY = 40
TICK_INTERVAL = 8  # statements between auto maintenance ticks

WIDE = 2**33  # distinct 8-byte ints: incompressible, keeps the
# maintenance loop's encode-first pass out of the migration measurement.

TARGETS = [
    [["a", "b", "c", "d"]],          # row-major
    [["a"], ["b"], ["c"], ["d"]],    # column-major
    [["a", "b"], ["c", "d"]],        # paired hybrid
]


def build_db(background: bool) -> Database:
    db = Database(
        auto_layout_interval=TICK_INTERVAL, background_maintenance=background
    )
    db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
    table = db.table("t")
    for i in range(SEED_ROWS):
        table.insert(
            (i * WIDE, i * WIDE + 1, i * WIDE + 2, i * WIDE + 3), emit=False
        )
    return db


def p99(latencies: list) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


def run_workload(db: Database) -> list:
    """Drive ``N_APPLIES`` INSERTs (timing each), re-arming an online
    migration every ``MIGRATE_EVERY`` applies, under a concurrent
    analytical scan thread.  Returns the per-apply latencies."""
    table = db.table("t")
    stop = threading.Event()
    scans = [0]

    def analyst():
        while not stop.is_set():
            total = 0
            for _, _, row in table.scan():
                total += 1
            scans[0] += 1

    thread = threading.Thread(target=analyst)
    thread.start()
    latencies = []
    try:
        for i in range(N_APPLIES):
            if i % MIGRATE_EVERY == 0:
                table.migrate_layout(TARGETS[(i // MIGRATE_EVERY) % len(TARGETS)])
            value = (SEED_ROWS + i) * WIDE
            started = time.perf_counter()
            db.execute(
                f"INSERT INTO t VALUES ({value}, {value + 1}, "
                f"{value + 2}, {value + 3})"
            )
            latencies.append(time.perf_counter() - started)
    finally:
        stop.set()
        thread.join(10.0)
    return latencies


def settle(db: Database) -> None:
    """Run maintenance to quiescence so both modes land on the same
    final physical state before contents are compared."""
    db.close()  # stops + drains the worker in background mode
    table = db.table("t")
    for _ in range(500):
        if not table.migration_active:
            break
        db.maintenance_tick(steps=4)
    assert not table.migration_active
    table.validate()


def test_background_maintenance_cuts_apply_tail_latency():
    inline_db = build_db(background=False)
    background_db = build_db(background=True)

    inline_latencies = run_workload(inline_db)
    background_latencies = run_workload(background_db)

    settle(inline_db)
    settle(background_db)

    # Correctness: maintenance placement never changes query results.
    inline_rows = inline_db.table("t").rows()
    background_rows = background_db.table("t").rows()
    assert background_rows == inline_rows

    inline_p99 = p99(inline_latencies)
    background_p99 = p99(background_latencies)
    worker = background_db.maintenance_worker
    print(
        f"\napply p99 under concurrent scan over {SEED_ROWS}+{N_APPLIES} rows: "
        f"inline={inline_p99 * 1e3:.2f}ms background={background_p99 * 1e3:.2f}ms "
        f"({inline_p99 / background_p99:.1f}x), "
        f"background beats={worker.beats if worker else 0}"
    )
    write_bench_json(
        "htap_isolation",
        {
            "seed_rows": SEED_ROWS,
            "applies": N_APPLIES,
            "migrate_every": MIGRATE_EVERY,
            "inline_p99_ms": round(inline_p99 * 1e3, 3),
            "background_p99_ms": round(background_p99 * 1e3, 3),
            "inline_p50_ms": round(sorted(inline_latencies)[N_APPLIES // 2] * 1e3, 3),
            "background_p50_ms": round(
                sorted(background_latencies)[N_APPLIES // 2] * 1e3, 3
            ),
            "tail_reduction": round(inline_p99 / background_p99, 2),
            "background_beats": worker.beats if worker else 0,
            "rows_identical": background_rows == inline_rows,
        },
    )

    assert background_p99 < inline_p99, (
        f"background maintenance p99 {background_p99 * 1e3:.2f}ms not below "
        f"inline p99 {inline_p99 * 1e3:.2f}ms"
    )
