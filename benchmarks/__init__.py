"""Benchmark harness: one module per DESIGN.md experiment (E1–E10).

Run with ``pytest benchmarks/ --benchmark-only``.
"""
