"""E10 — §2.2 / Fig 2a: shared (one-pass, collective) computation of a
DBSQL spill vs one-per-cell formulas.

Paper claim: the spill "enables the collection of cells to be computed
collectively in a single pass (as opposed to traditional spreadsheet
formulae that are one-per-cell)".

We fill m output cells two ways:

* **one pass**: a single DBSQL whose result spills m rows,
* **per cell**: m separate scalar queries, one per output cell — what a
  user gets wiring one formula per cell.

Expected shape: per-cell cost is ~m× the one-pass cost (m query
executions, each scanning the table); ``statements_executed`` in the
extra-info shows exactly that factor.
"""

import pytest

from repro import Workbook
from benchmarks.conftest import build_sequence_table

SPILL_SIZES = [10, 50, 200]
TABLE_ROWS = 2000


def make_workbook() -> Workbook:
    return Workbook(database=build_sequence_table(TABLE_ROWS))


@pytest.mark.parametrize("m", SPILL_SIZES)
def test_one_pass_spill(benchmark, m):
    wb = make_workbook()
    region = wb.dbsql(
        "Sheet1", "A1", f"SELECT v FROM seq ORDER BY seq LIMIT {m}"
    )
    before = wb.database.statements_executed

    def refresh():
        return region.refresh()

    benchmark(refresh)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["mode"] = "one-pass-spill"
    benchmark.extra_info["statements_per_fill"] = 1


@pytest.mark.parametrize("m", SPILL_SIZES)
def test_per_cell_queries(benchmark, m):
    wb = make_workbook()

    def fill_per_cell():
        values = []
        for i in range(m):
            values.append(
                wb.database.execute(
                    f"SELECT v FROM seq WHERE seq = {i}"
                ).scalar()
            )
        return values

    benchmark(fill_per_cell)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["mode"] = "one-query-per-cell"
    benchmark.extra_info["statements_per_fill"] = m


@pytest.mark.parametrize("m", [50])
def test_per_cell_via_formula_engine(benchmark, m):
    """The same per-cell pattern through actual DBSQL formula cells —
    includes compute-engine overhead per cell, the worst realistic case."""
    wb = make_workbook()
    for i in range(m):
        wb.dbsql("Sheet1", f"A{i + 1}", f"SELECT v FROM seq WHERE seq = {i}")
    regions = list(wb.regions.all())

    def refresh_all():
        for region in regions:
            region.refresh()

    benchmark(refresh_all)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["mode"] = "dbsql-region-per-cell"
