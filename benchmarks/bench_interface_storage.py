"""E8 — §3 interface storage manager: proximity blocks + 2-D index.

Paper claim: grouping schema-free cells "by proximity" into blocks indexed
"by a two-dimensional indexing method" makes range retrieval efficient.

We populate a sparse sheet (dense islands on a huge canvas — the realistic
spreadsheet shape) and measure window-sized range queries under:

* the grid (tile) index — DataSpread's default,
* the quadtree index,
* a flat dict scanned per query — the no-index strawman.

Expected shape: grid and quadtree answer a 40×20 window in time
proportional to the cells in the window; the flat dict scans all occupied
cells per query, linear in sheet size.  Tile-size ablation included
(DESIGN.md §5).
"""

import random

import pytest

from repro.interface_storage import CellStore
from repro.workloads.traces import random_jump_trace

N_ISLANDS = 40
ISLAND = 50  # each island is ISLAND x 10 cells
WINDOW_ROWS, WINDOW_COLS = 40, 20


def island_cells(seed=11):
    rng = random.Random(seed)
    cells = []
    for _ in range(N_ISLANDS):
        top = rng.randrange(0, 100_000)
        left = rng.randrange(0, 500)
        for dr in range(ISLAND):
            for dc in range(10):
                cells.append((top + dr, left + dc, dr * dc))
    return cells


CELLS = island_cells()
QUERY_ANCHORS = [(row, col) for row, col, _ in CELLS[:: len(CELLS) // 200]]


def populated_store(index_kind: str, tile_rows: int = 64, tile_cols: int = 16):
    store = CellStore(tile_rows=tile_rows, tile_cols=tile_cols, index_kind=index_kind)
    for row, col, value in CELLS:
        store.set(row, col, value)
    return store


@pytest.mark.parametrize("index_kind", ["grid", "quadtree"])
def test_window_range_query(benchmark, index_kind):
    store = populated_store(index_kind)
    anchors = iter(QUERY_ANCHORS * 10_000)

    def query():
        row, col = next(anchors)
        return sum(1 for _ in store.get_range(row, col, row + WINDOW_ROWS - 1,
                                              col + WINDOW_COLS - 1))

    hits = benchmark(query)
    benchmark.extra_info["index"] = index_kind
    benchmark.extra_info["occupied_cells"] = len(store)
    benchmark.extra_info["hits_last_query"] = hits


def test_window_range_query_flat_dict(benchmark):
    flat = {(row, col): value for row, col, value in CELLS}
    anchors = iter(QUERY_ANCHORS * 10_000)

    def query():
        row, col = next(anchors)
        bottom, right = row + WINDOW_ROWS - 1, col + WINDOW_COLS - 1
        return sum(
            1
            for (r, c) in flat
            if row <= r <= bottom and col <= c <= right
        )

    benchmark(query)
    benchmark.extra_info["index"] = "flat-dict-scan"
    benchmark.extra_info["occupied_cells"] = len(flat)


@pytest.mark.parametrize("tile_rows,tile_cols", [(16, 4), (64, 16), (256, 64)])
def test_grid_tile_size_ablation(benchmark, tile_rows, tile_cols):
    store = populated_store("grid", tile_rows, tile_cols)
    anchors = iter(QUERY_ANCHORS * 10_000)

    def query():
        row, col = next(anchors)
        return sum(1 for _ in store.get_range(row, col, row + WINDOW_ROWS - 1,
                                              col + WINDOW_COLS - 1))

    benchmark(query)
    benchmark.extra_info["tile"] = f"{tile_rows}x{tile_cols}"
    benchmark.extra_info["n_blocks"] = store.n_blocks
    benchmark.extra_info["blocks_scanned_total"] = store.stats.blocks_scanned


@pytest.mark.parametrize("index_kind", ["grid", "quadtree"])
def test_point_writes(benchmark, index_kind):
    store = populated_store(index_kind)
    rng = random.Random(7)
    coordinates = iter(
        [(rng.randrange(100_000), rng.randrange(500)) for _ in range(100_000)] * 10
    )

    def write():
        row, col = next(coordinates)
        store.set(row, col, 1)

    benchmark(write)
    benchmark.extra_info["index"] = index_kind
