"""E1 — Feature 1 / Fig 2a: DBSQL querying with RANGEVALUE + 3-way join.

Paper claim: a DBSQL cell can "pose arbitrary queries combining data present
on the spreadsheet, and data stored in the relational database", with the
database doing the heavy lifting.  We measure the end-to-end refresh latency
of the Fig 2a query (join MOVIES ⋈ MOVIES2ACTORS ⋈ ACTORS filtered by two
RANGEVALUE parameters) as the database grows.

Expected shape: latency grows roughly linearly in |MOVIES2ACTORS| (hash
joins + scan), staying interactive (milliseconds) at tens of thousands of
rows — far beyond what a formula-only spreadsheet could join at all.
"""

import pytest

from benchmarks.conftest import build_movie_workbook

FIG_2A_SQL = (
    "SELECT DISTINCT a.name "
    "FROM movies m "
    "JOIN movies2actors ma ON m.movieid = ma.movieid "
    "JOIN actors a ON a.actorid = ma.actorid "
    "WHERE m.year >= RANGEVALUE(B1) AND m.year <= RANGEVALUE(B2) "
    "ORDER BY a.name LIMIT 8"
)


@pytest.mark.parametrize("n_movies", [500, 2000, 8000])
def test_fig2a_dbsql_refresh(benchmark, n_movies):
    wb = build_movie_workbook(n_movies)
    wb.set("Sheet1", "B1", 1960)
    wb.set("Sheet1", "B2", 2005)
    region = wb.dbsql("Sheet1", "B3", FIG_2A_SQL)

    def rerun():
        return region.refresh()

    benchmark(rerun)
    benchmark.extra_info["n_movies"] = n_movies
    benchmark.extra_info["n_links"] = n_movies * 3
    benchmark.extra_info["spill_rows"] = region.last_row_count


@pytest.mark.parametrize("n_movies", [500, 2000, 8000])
def test_fig2a_parameter_edit_end_to_end(benchmark, n_movies):
    """Editing RANGEVALUE's precedent cell re-runs the query through the
    full compute path (dirty propagation -> evaluation -> spill)."""
    wb = build_movie_workbook(n_movies)
    wb.set("Sheet1", "B1", 1960)
    wb.set("Sheet1", "B2", 2005)
    wb.dbsql("Sheet1", "B3", FIG_2A_SQL)
    years = iter(range(1950, 2015))

    def edit_parameter():
        wb.set("Sheet1", "B1", next(years, 1950))
        return wb.get("Sheet1", "B3")

    benchmark(edit_parameter)
    benchmark.extra_info["n_movies"] = n_movies
