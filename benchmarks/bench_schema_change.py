"""E6 — §3 relational storage manager: schema-change cost by layout.

Paper claim: attribute-group storage "radically reduc[es] the disk blocks
that need an update during a schema change", making ADD COLUMN as cheap as
a tuple update.

We measure, per layout (row / column / hybrid with varying group size):

* blocks written by ``ADD COLUMN`` (the headline claim),
* blocks written by a single-column tuple update (the parity target),
* tuple insert cost (the trade-off: one page per group).

Expected shape: row store rewrites all ~n/page_capacity blocks on ADD
COLUMN but pays 1 block per insert; hybrid/column write ~0 blocks on ADD
COLUMN and ``n_groups`` blocks per insert.  The crossover argument: for
schema-change-heavy (spreadsheet-like) workloads the hybrid wins.
"""

import pytest

from repro.engine.columnstore import ColumnStore
from repro.engine.hybridstore import HybridStore
from repro.engine.rowstore import RowStore
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DBType

N_ROWS = 4096
N_COLS = 8
PAGE_CAPACITY = 64


def make_store(layout: str, group_size: int = 2):
    pairs = [(f"c{i}", DBType.INTEGER) for i in range(N_COLS)]
    if layout == "row":
        store = RowStore(TableSchema.from_pairs(pairs), page_capacity=PAGE_CAPACITY)
    elif layout == "column":
        store = ColumnStore(TableSchema.from_pairs(pairs), page_capacity=PAGE_CAPACITY)
    else:
        store = HybridStore(
            TableSchema.from_pairs(pairs, group_size=group_size),
            page_capacity=PAGE_CAPACITY,
        )
    row = tuple(range(N_COLS))
    for _ in range(N_ROWS):
        store.insert(row)
    store.checkpoint()
    return store


LAYOUTS = ["row", "column", "hybrid"]


@pytest.mark.parametrize("layout", LAYOUTS)
def test_add_column_blocks(benchmark, layout):
    stores = iter([])
    names = iter(range(10_000_000))
    state = {"store": make_store(layout), "adds": 0}

    def add_column():
        store = state["store"]
        if store.schema.n_columns > N_COLS + 40:
            state["store"] = store = make_store(layout)
        before = store.pool.stats.snapshot()
        state["rewritten"] = store.add_column(
            Column(f"x{next(names)}", DBType.INTEGER, default=0)
        )
        store.checkpoint()
        state["adds"] += 1
        state["blocks"] = store.pool.stats.delta(before).writes
        return state["blocks"]

    benchmark(add_column)
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["n_rows"] = N_ROWS
    benchmark.extra_info["blocks_written_last_add"] = state.get("blocks")
    benchmark.extra_info["existing_pages_rewritten"] = state.get("rewritten")
    # Paper-shape assertion (E6): attribute-group layouts add a column
    # without rewriting any existing page; the row store rewrites them all.
    if layout == "row":
        assert state["rewritten"] >= N_ROWS // PAGE_CAPACITY
    else:
        assert state["rewritten"] == 0


@pytest.mark.parametrize("layout", LAYOUTS)
def test_tuple_update_blocks(benchmark, layout):
    store = make_store(layout)
    rids = store.rids()
    cursor = iter(range(10_000_000))

    def update_one():
        rid = rids[next(cursor) % len(rids)]
        before = store.pool.stats.snapshot()
        store.update_column(rid, "c3", 999)
        store.checkpoint()
        return store.pool.stats.delta(before).writes

    blocks = benchmark(update_one)
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["blocks_written_per_update"] = blocks
    # A single-column update touches exactly one block in every layout.
    assert blocks == 1


@pytest.mark.parametrize("layout", LAYOUTS)
def test_tuple_insert_blocks(benchmark, layout):
    store = make_store(layout)
    row = tuple(range(N_COLS))

    def insert_one():
        before = store.pool.stats.snapshot()
        store.insert(row)
        store.checkpoint()
        return store.pool.stats.delta(before).writes

    blocks = benchmark(insert_one)
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["blocks_written_per_insert"] = blocks
    benchmark.extra_info["n_groups"] = store.schema.n_groups
    # The trade-off: an insert dirties one page per attribute group.
    assert blocks == store.schema.n_groups


@pytest.mark.parametrize("group_size", [1, 2, 4, 8])
def test_hybrid_group_size_ablation(benchmark, group_size):
    """DESIGN.md §5 ablation: group size 1 = column store, 8 (= all
    columns) = row store; the hybrid sweet spot sits between."""
    store = make_store("hybrid", group_size=group_size)
    names = iter(range(10_000_000))

    def mixed_workload():
        before = store.pool.stats.snapshot()
        # Spreadsheet-like mix: 8 inserts, 4 single-column updates, 1 ADD.
        row = tuple(range(store.schema.n_columns))
        for _ in range(8):
            store.insert(row)
        for rid in store.rids()[:4]:
            store.update_column(rid, "c0", 1)
        rewritten = store.add_column(
            Column(f"g{next(names)}", DBType.INTEGER, default=0)
        )
        store.checkpoint()
        return store.pool.stats.delta(before).writes

    blocks = benchmark(mixed_workload)
    benchmark.extra_info["group_size"] = group_size
    benchmark.extra_info["blocks_per_mixed_round"] = blocks
