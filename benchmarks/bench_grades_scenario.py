"""E9 — §1 motivating scenario: the grades operations, DataSpread vs the
manual spreadsheet way.

The paper motivates with three operations a spreadsheet user must do "by
manually identifying these rows, and then copy-pasting each one":

* filter: students with >90 in at least one assignment,
* join + group-by: average grade by demographic group.

DataSpread runs each as one DBSQL.  The manual emulation walks the sheet
cells the way a user's helper formulas / copy-paste would (one pass per
assignment column for the filter, a per-row lookup loop for the join).

Expected shape: both grow linearly with n, but the SQL path is a single
engine pass with hash joins — several times faster, and (the real point)
one declarative line instead of manual labour.
"""

import pytest

from repro import Workbook
from repro.baselines.naive_spreadsheet import NaiveSpreadsheet
from repro.workloads.datasets import generate_grades_data, load_grades_database

SIZES = [200, 1000, 5000]


def dataspread_workbook(n_students: int) -> Workbook:
    data = generate_grades_data(n_students=n_students, seed=13)
    return Workbook(database=load_grades_database(data))


def naive_sheets(n_students: int):
    data = generate_grades_data(n_students=n_students, seed=13)
    grades = NaiveSpreadsheet()
    grades.load_rows([list(r) for r in data.grades])
    demo = NaiveSpreadsheet()
    demo.load_rows([list(r) for r in data.demographics])
    return grades, demo, data


@pytest.mark.parametrize("n_students", SIZES)
def test_filter_above_90_dataspread(benchmark, n_students):
    wb = dataspread_workbook(n_students)
    sql = (
        "SELECT student_id FROM grades "
        "WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90"
    )

    def run():
        return len(wb.execute(sql).rows)

    count = benchmark(run)
    benchmark.extra_info["n_students"] = n_students
    benchmark.extra_info["matched"] = count
    benchmark.extra_info["system"] = "dataspread-sql"


@pytest.mark.parametrize("n_students", SIZES)
def test_filter_above_90_manual(benchmark, n_students):
    grades, _, _ = naive_sheets(n_students)

    def run():
        # The manual way: scan each row's five score cells, collect ids,
        # then "copy-paste" the matches to a result area.
        matches = []
        for row in range(n_students):
            if any((grades.get_at(row, col) or 0) > 90 for col in range(1, 6)):
                matches.append(grades.get_at(row, 0))
        for offset, sid in enumerate(matches):
            grades.values[(offset, 10)] = sid  # paste into column K
        return len(matches)

    count = benchmark(run)
    benchmark.extra_info["n_students"] = n_students
    benchmark.extra_info["matched"] = count
    benchmark.extra_info["system"] = "manual-spreadsheet"


@pytest.mark.parametrize("n_students", SIZES)
def test_group_average_by_level_dataspread(benchmark, n_students):
    wb = dataspread_workbook(n_students)
    sql = (
        "SELECT d.level, avg(g.a1 + g.a2 + g.a3 + g.a4 + g.a5) "
        "FROM grades g JOIN demographics d ON g.student_id = d.student_id "
        "GROUP BY d.level"
    )

    def run():
        return wb.execute(sql).rows

    rows = benchmark(run)
    benchmark.extra_info["n_students"] = n_students
    benchmark.extra_info["groups"] = len(rows)
    benchmark.extra_info["system"] = "dataspread-sql"


@pytest.mark.parametrize("n_students", SIZES)
def test_group_average_by_level_manual(benchmark, n_students):
    grades, demo, _ = naive_sheets(n_students)

    def run():
        # The manual way: per grades row, scan the demographics sheet for
        # the matching id (what VLOOKUP does), then bucket the totals.
        totals = {}
        counts = {}
        for row in range(n_students):
            sid = grades.get_at(row, 0)
            level = None
            for demo_row in range(n_students):  # linear VLOOKUP
                if demo.get_at(demo_row, 0) == sid:
                    level = demo.get_at(demo_row, 2)
                    break
            total = sum(grades.get_at(row, col) for col in range(1, 6))
            totals[level] = totals.get(level, 0) + total
            counts[level] = counts.get(level, 0) + 1
        return {level: totals[level] / counts[level] for level in totals}

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["n_students"] = n_students
    benchmark.extra_info["system"] = "manual-spreadsheet"
