"""WAL durability vs full-JSON save, and snapshot+replay recovery.

The seed's only durability story was :func:`repro.core.persist.save_workbook`
— O(workbook) bytes rewritten per save.  The server's write-ahead log
(:mod:`repro.server.wal`) makes a single edit durable in O(edit) bytes.

Claims measured here:

* a single-cell edit on a 10k-row workbook costs ≥ 10× fewer bytes (and
  far less wall-clock) as a WAL append than as a full-JSON save — the
  bytes ratio is asserted, not just reported;
* recovery time scales with the *replayed suffix*, not total history:
  snapshot + short suffix beats full-log replay as the log grows;
* recovery preserves the *tuned physical layout*: a recovered server's
  grouping matches pre-crash, and replaying the scan trace against it
  costs the tuned — not the default — page I/O
  (``test_recovery_preserves_tuned_layout``, also the CI smoke step).
"""

from __future__ import annotations

import os

import pytest

from repro import Workbook
from repro.core.persist import save_workbook
from repro.server.service import WorkbookService, recover_state
from repro.server.wal import WriteAheadLog

from .conftest import build_sequence_table, write_bench_json

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_TABLE_ROWS = 10_000


def ten_k_row_workbook() -> Workbook:
    return Workbook(database=build_sequence_table(N_TABLE_ROWS))


def edit_op(n: int) -> dict:
    return {"type": "set_cell", "sheet": "Sheet1", "ref": "A1", "raw": n}


def full_save_bytes(tmp_path) -> int:
    workbook = ten_k_row_workbook()
    path = str(tmp_path / "full.json")
    workbook.set("Sheet1", "A1", 1)
    save_workbook(workbook, path)
    return os.path.getsize(path)


def test_single_edit_wal_append(benchmark, tmp_path):
    """Durability cost of one small edit via the WAL (no fsync, matching
    the plain-write full-save baseline)."""
    workbook = ten_k_row_workbook()
    wal = WriteAheadLog(str(tmp_path / "wal.jsonl"), fsync=False)
    counter = iter(range(10_000_000))

    def edit():
        n = next(counter)
        workbook.set("Sheet1", "A1", n)
        wal.append(edit_op(n))

    benchmark(edit)
    wal.sync()
    bytes_per_edit = wal.stats.bytes_written / max(wal.stats.appends, 1)
    baseline = full_save_bytes(tmp_path)
    benchmark.extra_info["wal_bytes_per_edit"] = round(bytes_per_edit, 1)
    benchmark.extra_info["full_save_bytes_per_edit"] = baseline
    benchmark.extra_info["bytes_ratio"] = round(baseline / bytes_per_edit, 1)
    benchmark.extra_info["table_rows"] = N_TABLE_ROWS
    # Acceptance: WAL append writes >= 10x fewer bytes than a full save.
    assert baseline >= 10 * bytes_per_edit
    wal.close()


def test_single_edit_full_json_save(benchmark, tmp_path):
    """The seed's per-edit durability: rewrite the whole workbook."""
    workbook = ten_k_row_workbook()
    path = str(tmp_path / "full.json")
    counter = iter(range(10_000_000))

    def edit():
        workbook.set("Sheet1", "A1", next(counter))
        save_workbook(workbook, path)

    benchmark(edit)
    benchmark.extra_info["bytes_per_edit"] = os.path.getsize(path)
    benchmark.extra_info["table_rows"] = N_TABLE_ROWS


def build_service_dir(tmp_path, n_ops: int, snapshot_at: int = 0) -> str:
    """A service directory with ``n_ops`` logged edits; optionally a
    snapshot covering the first ``snapshot_at`` of them."""
    directory = str(tmp_path / f"svc-{n_ops}-{snapshot_at}")
    service = WorkbookService(directory, fsync=False, compact_every=0)
    session = service.connect("bench")
    for n in range(n_ops):
        if snapshot_at and n == snapshot_at:
            service.compact()
        service.set_cell(session.session_id, "Sheet1", f"A{(n % 500) + 1}", n)
    service.close()
    return directory


@pytest.mark.parametrize("n_ops", [200, 1000, 3000])
def test_recovery_full_log_replay(benchmark, tmp_path, n_ops):
    """Recovery with no snapshot: replay every committed record."""
    directory = build_service_dir(tmp_path, n_ops)

    def recover():
        return recover_state(directory)

    recovery = benchmark(recover)
    assert recovery.ops_replayed == n_ops
    benchmark.extra_info["log_ops"] = n_ops
    benchmark.extra_info["ops_replayed"] = recovery.ops_replayed


def test_recovery_preserves_tuned_layout(tmp_path):
    """A server tuned by the layout advisor crashes (no clean shutdown,
    no snapshot since tuning); the recovered server must come back with
    the tuned grouping and the advisor still on, and the scan-heavy trace
    must cost the tuned layout's page I/O — strictly below what the same
    trace costs on the untuned CREATE TABLE default layout."""
    n_rows = 200 if SMOKE else 600
    scans = 12 if SMOKE else 48
    directory = str(tmp_path / "tuned")
    service = WorkbookService(directory, fsync=False, compact_every=0)
    session = service.connect("bench")
    service.execute(
        session.session_id, "CREATE TABLE t (a INT, b INT, c INT, d INT)"
    )
    # Distinct 8-byte ints: incompressible, so the maintenance loop's
    # encode-first pass cannot pre-empt the migration this scenario needs
    # (encoding durability has its own coverage in test_vectorized.py).
    wide = 2**33
    for start in range(0, n_rows, 10):
        values = ",".join(
            f"({j * wide},{j * wide + 1},{j * wide + 2},{j * wide + 3})"
            for j in range(start, start + 10)
        )
        service.execute(session.session_id, f"INSERT INTO t VALUES {values}")
    service.execute(session.session_id, "ALTER TABLE t SET LAYOUT AUTO")
    table = service.workbook.database.table("t")
    table.layout_advisor.min_ops = 8
    # Tune on the steady-state trace, not the one-off bulk load.
    table.store.access_stats.reset()
    for _ in range(scans):
        list(table.store.scan_column("a"))
    for _ in range(40):
        service.maintenance_tick(steps=2)
        if not table.migration_active and ["a"] in table.schema.groups:
            break
    tuned_groups = table.schema.groups
    assert ["a"] in tuned_groups, "advisor never split the hot column"
    service.close()

    def scan_trace_blocks(target_table) -> int:
        store = target_table.store
        store.checkpoint()
        store.pool.drop_cache()
        before = store.pool.stats.snapshot()
        for _ in range(4):
            for _ in store.scan_column("a"):
                pass
        return store.pool.stats.delta(before).total

    recovery = recover_state(directory)
    recovered = recovery.workbook.database.table("t")
    assert recovered.schema.groups == tuned_groups
    assert recovered.auto_layout
    recovered.validate()

    # The untuned baseline: identical rows, CREATE TABLE default grouping.
    baseline_db = Workbook().database
    baseline_db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
    baseline = baseline_db.table("t")
    for rid in recovered.store.rids():
        baseline.insert(recovered.store.read_row(rid), emit=False)
    tuned_blocks = scan_trace_blocks(recovered)
    default_blocks = scan_trace_blocks(baseline)
    print(
        f"\nscan-trace blocks: recovered(tuned)={tuned_blocks} "
        f"default={default_blocks} groups={tuned_groups}"
    )
    write_bench_json(
        "wal_recovery",
        {
            "table_rows": n_rows,
            "tuned_blocks": tuned_blocks,
            "default_blocks": default_blocks,
            "tuned_groups": tuned_groups,
        },
    )
    assert tuned_blocks < default_blocks, (
        f"recovered layout costs {tuned_blocks} blocks on the scan trace, "
        f"not below the untuned default's {default_blocks}"
    )


@pytest.mark.parametrize("n_ops", [1000, 3000])
def test_recovery_snapshot_plus_suffix(benchmark, tmp_path, n_ops):
    """Recovery with a snapshot near the tail: load + short suffix replay;
    time should track the suffix (here 100 ops), not ``n_ops``."""
    directory = build_service_dir(tmp_path, n_ops, snapshot_at=n_ops - 100)

    def recover():
        return recover_state(directory)

    recovery = benchmark(recover)
    assert recovery.snapshot_used
    assert recovery.ops_replayed == 100
    benchmark.extra_info["log_ops"] = n_ops
    benchmark.extra_info["ops_replayed"] = recovery.ops_replayed
