"""WAL durability vs full-JSON save, and snapshot+replay recovery.

The seed's only durability story was :func:`repro.core.persist.save_workbook`
— O(workbook) bytes rewritten per save.  The server's write-ahead log
(:mod:`repro.server.wal`) makes a single edit durable in O(edit) bytes.

Claims measured here:

* a single-cell edit on a 10k-row workbook costs ≥ 10× fewer bytes (and
  far less wall-clock) as a WAL append than as a full-JSON save — the
  bytes ratio is asserted, not just reported;
* recovery time scales with the *replayed suffix*, not total history:
  snapshot + short suffix beats full-log replay as the log grows.
"""

from __future__ import annotations

import os

import pytest

from repro import Workbook
from repro.core.persist import save_workbook
from repro.server.service import WorkbookService, recover_state
from repro.server.wal import WriteAheadLog

from .conftest import build_sequence_table

N_TABLE_ROWS = 10_000


def ten_k_row_workbook() -> Workbook:
    return Workbook(database=build_sequence_table(N_TABLE_ROWS))


def edit_op(n: int) -> dict:
    return {"type": "set_cell", "sheet": "Sheet1", "ref": "A1", "raw": n}


def full_save_bytes(tmp_path) -> int:
    workbook = ten_k_row_workbook()
    path = str(tmp_path / "full.json")
    workbook.set("Sheet1", "A1", 1)
    save_workbook(workbook, path)
    return os.path.getsize(path)


def test_single_edit_wal_append(benchmark, tmp_path):
    """Durability cost of one small edit via the WAL (no fsync, matching
    the plain-write full-save baseline)."""
    workbook = ten_k_row_workbook()
    wal = WriteAheadLog(str(tmp_path / "wal.jsonl"), fsync=False)
    counter = iter(range(10_000_000))

    def edit():
        n = next(counter)
        workbook.set("Sheet1", "A1", n)
        wal.append(edit_op(n))

    benchmark(edit)
    wal.sync()
    bytes_per_edit = wal.stats.bytes_written / max(wal.stats.appends, 1)
    baseline = full_save_bytes(tmp_path)
    benchmark.extra_info["wal_bytes_per_edit"] = round(bytes_per_edit, 1)
    benchmark.extra_info["full_save_bytes_per_edit"] = baseline
    benchmark.extra_info["bytes_ratio"] = round(baseline / bytes_per_edit, 1)
    benchmark.extra_info["table_rows"] = N_TABLE_ROWS
    # Acceptance: WAL append writes >= 10x fewer bytes than a full save.
    assert baseline >= 10 * bytes_per_edit
    wal.close()


def test_single_edit_full_json_save(benchmark, tmp_path):
    """The seed's per-edit durability: rewrite the whole workbook."""
    workbook = ten_k_row_workbook()
    path = str(tmp_path / "full.json")
    counter = iter(range(10_000_000))

    def edit():
        workbook.set("Sheet1", "A1", next(counter))
        save_workbook(workbook, path)

    benchmark(edit)
    benchmark.extra_info["bytes_per_edit"] = os.path.getsize(path)
    benchmark.extra_info["table_rows"] = N_TABLE_ROWS


def build_service_dir(tmp_path, n_ops: int, snapshot_at: int = 0) -> str:
    """A service directory with ``n_ops`` logged edits; optionally a
    snapshot covering the first ``snapshot_at`` of them."""
    directory = str(tmp_path / f"svc-{n_ops}-{snapshot_at}")
    service = WorkbookService(directory, fsync=False, compact_every=0)
    session = service.connect("bench")
    for n in range(n_ops):
        if snapshot_at and n == snapshot_at:
            service.compact()
        service.set_cell(session.session_id, "Sheet1", f"A{(n % 500) + 1}", n)
    service.close()
    return directory


@pytest.mark.parametrize("n_ops", [200, 1000, 3000])
def test_recovery_full_log_replay(benchmark, tmp_path, n_ops):
    """Recovery with no snapshot: replay every committed record."""
    directory = build_service_dir(tmp_path, n_ops)

    def recover():
        return recover_state(directory)

    recovery = benchmark(recover)
    assert recovery.ops_replayed == n_ops
    benchmark.extra_info["log_ops"] = n_ops
    benchmark.extra_info["ops_replayed"] = recovery.ops_replayed


@pytest.mark.parametrize("n_ops", [1000, 3000])
def test_recovery_snapshot_plus_suffix(benchmark, tmp_path, n_ops):
    """Recovery with a snapshot near the tail: load + short suffix replay;
    time should track the suffix (here 100 ops), not ``n_ops``."""
    directory = build_service_dir(tmp_path, n_ops, snapshot_at=n_ops - 100)

    def recover():
        return recover_state(directory)

    recovery = benchmark(recover)
    assert recovery.snapshot_used
    assert recovery.ops_replayed == 100
    benchmark.extra_info["log_ops"] = n_ops
    benchmark.extra_info["ops_replayed"] = recovery.ops_replayed
