"""E5 — §3 positional index: O(log n) positional access vs the rownum
emulation a vanilla RDBMS needs.

Three operations per table size n, DataSpread (order-statistic tree) vs the
naive baseline (explicit rownum column, OFFSET-style scans, renumbering):

* ``window(pos, 40)`` — the viewport fetch,
* ``row_at(pos)`` — a point positional lookup,
* ``insert_at(middle)`` — a middle insert, which the baseline pays O(n)
  renumbering for.

Expected shape: DataSpread flat-ish in n (log factor); baseline linear in n
for all three — the gap at n=50k should be orders of magnitude.  The
``rows_scanned`` / ``rows_renumbered`` extra-info fields show the logical
work driving the wall-clock gap.
"""

import pytest

from repro.baselines.naive_db import NaiveDbTable
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.engine.types import DBType
from repro.workloads.traces import random_jump_trace

SIZES = [1000, 10_000, 50_000]
WINDOW = 40


def make_dataspread_table(n_rows: int) -> Table:
    schema = TableSchema.from_pairs(
        [("id", DBType.INTEGER), ("v", DBType.REAL)], primary_key="id"
    )
    table = Table("t", schema)
    for i in range(n_rows):
        table.insert((i, float(i)), emit=False)
    return table


def make_naive_table(n_rows: int) -> NaiveDbTable:
    table = NaiveDbTable([("id", DBType.INTEGER), ("v", DBType.REAL)])
    for i in range(n_rows):
        table.append((i, float(i)))
    return table


@pytest.mark.parametrize("n_rows", SIZES)
def test_window_fetch_positional_index(benchmark, n_rows):
    table = make_dataspread_table(n_rows)
    positions = iter(random_jump_trace(n_rows, WINDOW, 10_000, seed=5) * 100)

    def fetch():
        return table.window(next(positions), WINDOW)

    benchmark(fetch)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["system"] = "dataspread"


@pytest.mark.parametrize("n_rows", SIZES)
def test_window_fetch_offset_scan(benchmark, n_rows):
    table = make_naive_table(n_rows)
    positions = iter(random_jump_trace(n_rows, WINDOW, 10_000, seed=5) * 100)

    def fetch():
        return table.window(next(positions), WINDOW)

    benchmark(fetch)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["system"] = "naive-rownum"
    benchmark.extra_info["rows_scanned"] = table.rows_scanned


@pytest.mark.parametrize("n_rows", SIZES)
def test_middle_insert_positional_index(benchmark, n_rows):
    table = make_dataspread_table(n_rows)
    next_id = iter(range(n_rows, 100_000_000))

    def insert_middle():
        table.insert((next(next_id), 0.0), position=table.n_rows // 2, emit=False)

    benchmark(insert_middle)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["system"] = "dataspread"


@pytest.mark.parametrize("n_rows", [1000, 10_000])
def test_middle_insert_renumbering(benchmark, n_rows):
    table = make_naive_table(n_rows)
    next_id = iter(range(n_rows, 100_000_000))

    def insert_middle():
        table.insert_at(table.n_rows // 2, (next(next_id), 0.0))

    benchmark.pedantic(insert_middle, rounds=5, iterations=1)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["system"] = "naive-rownum"
    benchmark.extra_info["rows_renumbered"] = table.rows_renumbered


@pytest.mark.parametrize("n_rows", SIZES)
def test_point_lookup_positional_index(benchmark, n_rows):
    table = make_dataspread_table(n_rows)
    positions = iter(random_jump_trace(n_rows, 1, 10_000, seed=9) * 100)

    def lookup():
        return table.row_at(next(positions))

    benchmark(lookup)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["system"] = "dataspread"


@pytest.mark.parametrize("n_rows", [1000, 10_000])
def test_point_lookup_offset_scan(benchmark, n_rows):
    table = make_naive_table(n_rows)
    positions = iter(random_jump_trace(n_rows, 1, 10_000, seed=9) * 100)

    def lookup():
        return table.row_at(next(positions))

    benchmark(lookup)
    benchmark.extra_info["n_rows"] = n_rows
    benchmark.extra_info["system"] = "naive-rownum"
