"""Unit tests for the three physical layouts (row / column / hybrid).

The schema-change cost table from the hybridstore docstring is verified
here at page granularity — the core of experiment E6.
"""

import pytest

from repro.engine.columnstore import ColumnStore
from repro.engine.hybridstore import HybridStore
from repro.engine.pager import BufferPool
from repro.engine.rowstore import RowStore
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DBType
from repro.errors import SchemaError, StorageError


def schema4(group_size=None):
    return TableSchema.from_pairs(
        [("a", DBType.INTEGER), ("b", DBType.TEXT), ("c", DBType.REAL), ("d", DBType.TEXT)],
        group_size=group_size,
    )


def fill(store, n):
    return [store.insert((i, f"t{i}", i * 0.5, f"u{i}")) for i in range(n)]


STORES = [
    pytest.param(lambda: RowStore(schema4(), page_capacity=8), id="row"),
    pytest.param(lambda: ColumnStore(schema4(), page_capacity=8), id="column"),
    pytest.param(lambda: HybridStore(schema4(group_size=2), page_capacity=8), id="hybrid"),
]


@pytest.mark.parametrize("make", STORES)
class TestCommonBehaviour:
    def test_insert_get_roundtrip(self, make):
        store = make()
        rids = fill(store, 20)
        for i, rid in enumerate(rids):
            assert store.get(rid) == (i, f"t{i}", i * 0.5, f"u{i}")

    def test_n_rows(self, make):
        store = make()
        fill(store, 5)
        assert store.n_rows == 5

    def test_update_full_row(self, make):
        store = make()
        rids = fill(store, 3)
        store.update(rids[1], (99, "new", 9.9, "z"))
        assert store.get(rids[1]) == (99, "new", 9.9, "z")
        assert store.get(rids[0])[0] == 0

    def test_update_single_column(self, make):
        store = make()
        rids = fill(store, 3)
        store.update_column(rids[2], "b", "patched")
        assert store.get(rids[2]) == (2, "patched", 1.0, "u2")

    def test_delete(self, make):
        store = make()
        rids = fill(store, 4)
        store.delete(rids[1])
        assert store.n_rows == 3
        assert not store.exists(rids[1])
        with pytest.raises(StorageError):
            store.get(rids[1])

    def test_scan_yields_all_rows(self, make):
        store = make()
        rids = fill(store, 10)
        scanned = dict(store.scan())
        assert set(scanned) == set(rids)
        assert scanned[rids[3]] == (3, "t3", 1.5, "u3")

    def test_scan_column(self, make):
        store = make()
        fill(store, 6)
        values = [value for _, value in store.scan_column("a")]
        assert sorted(values) == list(range(6))

    def test_add_column_values_default(self, make):
        store = make()
        rids = fill(store, 5)
        store.add_column(Column("e", DBType.INTEGER, default=7))
        for rid in rids:
            assert store.get(rid) == store.get(rid)[:4] + (7,)

    def test_drop_column(self, make):
        store = make()
        rids = fill(store, 5)
        store.drop_column("c")
        assert store.get(rids[0]) == (0, "t0", "u0")

    def test_rename_column_metadata_only(self, make):
        store = make()
        fill(store, 2)
        before = store.pool.stats.snapshot()
        store.checkpoint()
        baseline_writes = store.pool.stats.writes
        store.rename_column("b", "bee")
        store.checkpoint()
        assert store.pool.stats.writes == baseline_writes  # nothing rewritten
        assert store.schema.has_column("bee")

    def test_validate_passes(self, make):
        store = make()
        fill(store, 25)
        store.delete(store.rids()[3])
        store.validate()

    def test_insert_after_schema_change(self, make):
        store = make()
        fill(store, 3)
        store.add_column(Column("e", DBType.TEXT, default="?"))
        rid = store.insert((9, "x", 0.0, "y", "z"))
        assert store.get(rid) == (9, "x", 0.0, "y", "z")
        store.validate()


class TestLayoutCosts:
    """The E6 cost model at page granularity."""

    def test_row_store_add_column_rewrites_all_pages(self):
        store = RowStore(schema4(), page_capacity=8)
        fill(store, 80)  # width 4, 8-value pages -> 2 rows/page -> 40 pages
        total_pages = store.n_pages
        rewritten = store.add_column(Column("e", default=0))
        assert rewritten == total_pages == 40

    def test_column_store_add_column_rewrites_nothing(self):
        store = ColumnStore(schema4(), page_capacity=8)
        fill(store, 80)
        rewritten = store.add_column(Column("e", default=0))
        assert rewritten == 0

    def test_hybrid_add_column_new_group_rewrites_nothing(self):
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        fill(store, 80)
        rewritten = store.add_column(Column("e", default=0))
        assert rewritten == 0
        assert store.schema.groups[-1] == ["e"]

    def test_hybrid_add_column_into_group_rewrites_one_group(self):
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        fill(store, 80)  # width-2 groups, 4 rows/page -> 20 pages/group
        pages_before = store.pages_in_group(1)
        rewritten = store.add_column(Column("e", default=0), group_index=1)
        assert rewritten == pages_before == 20
        assert rewritten < store.n_pages  # strictly less than a full rewrite

    def test_row_store_drop_column_rewrites_all_pages(self):
        store = RowStore(schema4(), page_capacity=8)
        fill(store, 80)
        assert store.drop_column("b") == 40  # every page of the sole group

    def test_column_store_drop_column_frees_chain(self):
        store = ColumnStore(schema4(), page_capacity=8)
        fill(store, 80)
        frees_before = store.pool.stats.frees
        assert store.drop_column("b") == 0
        assert store.pool.stats.frees > frees_before

    def test_fresh_chain_blocks_cheaper_than_rewrite(self):
        """The block-budget model: a fresh single-column chain packs
        page_capacity records per block, so ADD COLUMN via a new group
        writes ~width× fewer blocks than the row store's full rewrite."""
        row_store = RowStore(schema4(), page_capacity=8)
        hybrid = HybridStore(schema4(group_size=2), page_capacity=8)
        fill(row_store, 80)
        fill(hybrid, 80)
        row_store.checkpoint()
        hybrid.checkpoint()
        rw0 = row_store.pool.stats.writes
        hw0 = hybrid.pool.stats.writes
        row_store.add_column(Column("e", default=0))
        hybrid.add_column(Column("e", default=0))
        row_store.checkpoint()
        hybrid.checkpoint()
        row_blocks = row_store.pool.stats.writes - rw0
        hybrid_blocks = hybrid.pool.stats.writes - hw0
        assert row_blocks == 40          # full rewrite (now 5-wide rows)
        assert hybrid_blocks == 10       # fresh width-1 chain: 8 recs/page
        assert hybrid_blocks * 4 == row_blocks

    def test_hybrid_drop_sole_member_rewrites_nothing(self):
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        fill(store, 40)
        store.add_column(Column("e", default=1))  # own group
        assert store.drop_column("e") == 0
        store.validate()

    def test_single_column_update_touches_one_group(self):
        """Tuple-update parity: updating one column in the hybrid layout
        dirties only that column's group chain."""
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        rids = fill(store, 16)
        store.checkpoint()
        before = store.pool.stats.writes
        store.update_column(rids[0], "a", 999)
        store.checkpoint()
        assert store.pool.stats.writes - before == 1

    def test_row_insert_cost_scales_with_groups(self):
        """An insert touches one page per group: the hybrid trade-off."""
        row_store = RowStore(schema4(), page_capacity=8)
        column_store = ColumnStore(schema4(), page_capacity=8)
        fill(row_store, 8)
        fill(column_store, 8)
        row_store.checkpoint()
        column_store.checkpoint()
        rw0 = row_store.pool.stats.writes
        cw0 = column_store.pool.stats.writes
        row_store.insert((1, "x", 0.1, "y"))
        column_store.insert((1, "x", 0.1, "y"))
        row_store.checkpoint()
        column_store.checkpoint()
        assert row_store.pool.stats.writes - rw0 == 1
        assert column_store.pool.stats.writes - cw0 == 4


class TestHybridCompaction:
    def test_compact_groups_repartitions(self):
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        rids = fill(store, 20)
        store.add_column(Column("e", default=5))
        store.compact_groups([["a", "b", "c", "d", "e"]])
        assert store.schema.n_groups == 1
        for i, rid in enumerate(rids):
            assert store.get(rid) == (i, f"t{i}", i * 0.5, f"u{i}", 5)
        store.validate()

    def test_compact_rejects_wrong_cover(self):
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        fill(store, 4)
        with pytest.raises(SchemaError):
            store.compact_groups([["a", "b"]])

    def test_compact_crash_mid_rebuild_leaves_store_intact(self, monkeypatch):
        """Regression: the old compact_groups freed every page *before*
        rebuilding, so a failure mid-rebuild corrupted the store.  With
        build-then-swap-then-free, an injected crash at any allocation
        leaves data, layout and directory exactly as they were."""
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        rids = fill(store, 20)
        before_rows = [store.read_row(rid) for rid in rids]
        before_groups = store.schema.groups
        before_pages = store.pool.disk.n_pages
        real_new_page = BufferPool.new_page
        # Crash at every possible allocation point of the rebuild.
        crash_at = 0
        while True:
            calls = {"n": 0}

            def exploding_new_page(pool, tag=None, _limit=crash_at):
                if calls["n"] >= _limit:
                    raise RuntimeError("injected crash mid-rebuild")
                calls["n"] += 1
                return real_new_page(pool, tag)

            monkeypatch.setattr(BufferPool, "new_page", exploding_new_page)
            try:
                store.compact_groups([["a", "b", "c", "d"]])
                monkeypatch.setattr(BufferPool, "new_page", real_new_page)
                break  # enough allocations allowed: compaction succeeded
            except RuntimeError:
                monkeypatch.setattr(BufferPool, "new_page", real_new_page)
                # Every crash point must leave a fully usable store.
                store.validate()
                assert store.schema.groups == before_groups
                assert [store.read_row(rid) for rid in rids] == before_rows
                # Staged pages were released — no leaked allocations.
                assert store.pool.disk.n_pages == before_pages
            crash_at += 1
        # And once no crash fires, the compaction itself still works.
        assert store.schema.groups == [["a", "b", "c", "d"]]
        assert [store.read_row(rid) for rid in rids] == before_rows
        store.validate()

    def test_group_summary(self):
        store = HybridStore(schema4(group_size=2), page_capacity=8)
        fill(store, 20)
        summary = store.group_summary()
        assert len(summary) == 2
        assert summary[0]["columns"] == ["a", "b"]
        assert summary[0]["pages"] >= 1


class TestSharedPool:
    def test_two_stores_share_io_accounting(self):
        pool = BufferPool(page_capacity=8)
        first = RowStore(schema4(), pool=pool)
        second = RowStore(schema4(), pool=pool)
        fill(first, 8)
        fill(second, 8)
        assert pool.disk.stats.allocations >= 2
