"""Unit tests for the spreadsheet function library.

Functions are tested through the evaluator with a small fixed grid so range
arguments behave exactly as they do in production.
"""

import pytest

from repro.core.address import CellAddress, RangeAddress
from repro.errors import FormulaEvalError
from repro.formula.evaluator import EvalContext, RangeValues, evaluate_formula


GRID = {
    # A: numbers, B: text, C: mixed/lookup table values
    (0, 0): 10, (0, 1): "alpha", (0, 2): 1, (0, 3): "one",
    (1, 0): 20, (1, 1): "beta",  (1, 2): 2, (1, 3): "two",
    (2, 0): 30, (2, 1): "gamma", (2, 2): 3, (2, 3): "three",
    (3, 0): 40, (3, 1): "",      (3, 2): 4, (3, 3): "four",
    (4, 0): None, (4, 1): "x",
}


class GridContext(EvalContext):
    def cell_value(self, address: CellAddress):
        return GRID.get((address.row, address.col))

    def range_values(self, reference: RangeAddress) -> RangeValues:
        return RangeValues(
            [
                [GRID.get((row, col)) for col in range(reference.start.col, reference.end.col + 1)]
                for row in range(reference.start.row, reference.end.row + 1)
            ]
        )


def run(formula):
    return evaluate_formula(formula, GridContext())


class TestAggregates:
    def test_sum_range(self):
        assert run("SUM(A1:A5)") == 100

    def test_sum_mixed_args(self):
        assert run("SUM(A1:A2, 5, A3)") == 65

    def test_sum_skips_text_and_blank(self):
        assert run("SUM(B1:B5)") == 0

    def test_average(self):
        assert run("AVERAGE(A1:A4)") == 25

    def test_average_empty_is_div0(self):
        with pytest.raises(FormulaEvalError) as info:
            run("AVERAGE(B1:B1)")
        assert info.value.code == "#DIV/0!"

    def test_count_counts_numbers_only(self):
        assert run("COUNT(A1:B5)") == 4

    def test_counta(self):
        assert run("COUNTA(B1:B5)") == 4

    def test_countblank(self):
        assert run("COUNTBLANK(A1:B5)") == 2

    def test_min_max(self):
        assert run("MIN(A1:A4)") == 10
        assert run("MAX(A1:A4)") == 40

    def test_median(self):
        assert run("MEDIAN(A1:A4)") == 25

    def test_product(self):
        assert run("PRODUCT(C1:C3)") == 6

    def test_stdev_var(self):
        assert run("VAR(C1:C4)") == pytest.approx(5 / 3)
        assert run("STDEV(C1:C4)") == pytest.approx((5 / 3) ** 0.5)

    def test_large_small(self):
        assert run("LARGE(A1:A4, 2)") == 30
        assert run("SMALL(A1:A4, 1)") == 10
        with pytest.raises(FormulaEvalError):
            run("LARGE(A1:A4, 9)")


class TestMath:
    @pytest.mark.parametrize(
        "formula,expected",
        [
            ("ABS(-3)", 3),
            ("ROUND(2.456, 2)", 2.46),
            ("INT(2.9)", 2),
            ("INT(-2.1)", -3),
            ("MOD(10, 3)", 1),
            ("SQRT(16)", 4),
            ("POWER(2, 5)", 32),
            ("FLOOR(7, 3)", 6),
            ("CEILING(7, 3)", 9),
            ("SIGN(-2)", -1),
            ("EXP(0)", 1),
            ("LN(1)", 0),
            ("LOG(100)", 2),
            ("LOG(8, 2)", 3),
        ],
    )
    def test_math(self, formula, expected):
        assert run(formula) == pytest.approx(expected)

    def test_mod_zero(self):
        with pytest.raises(FormulaEvalError) as info:
            run("MOD(1, 0)")
        assert info.value.code == "#DIV/0!"

    def test_sqrt_negative(self):
        with pytest.raises(FormulaEvalError):
            run("SQRT(-1)")


class TestLogic:
    def test_and_or_not_xor(self):
        assert run("AND(TRUE, 1, \"TRUE\")") is True
        assert run("AND(TRUE, FALSE)") is False
        assert run("OR(FALSE, 0, 1)") is True
        assert run("NOT(0)") is True
        assert run("XOR(TRUE, TRUE, TRUE)") is True

    def test_if_lazy_does_not_eval_untaken_branch(self):
        # The untaken branch divides by zero — IF must not evaluate it.
        assert run("IF(TRUE, 1, 1/0)") == 1

    def test_if_default_false(self):
        assert run("IF(FALSE, 1)") is False

    def test_iferror_catches(self):
        assert run("IFERROR(1/0, \"fallback\")") == "fallback"
        assert run("IFERROR(7, 0)") == 7

    def test_iserror(self):
        assert run("ISERROR(1/0)") is True
        assert run("ISERROR(1)") is False

    def test_type_predicates(self):
        assert run("ISBLANK(A5)") is True
        assert run("ISNUMBER(A1)") is True
        assert run("ISNUMBER(B1)") is False
        assert run("ISTEXT(B1)") is True


class TestText:
    @pytest.mark.parametrize(
        "formula,expected",
        [
            ('CONCATENATE("a", 1, TRUE)', "a1TRUE"),
            ('LEN("hello")', 5),
            ('LEFT("hello", 2)', "he"),
            ('RIGHT("hello", 2)', "lo"),
            ('MID("hello", 2, 3)', "ell"),
            ('FIND("l", "hello")', 3),
            ('SUBSTITUTE("aaa", "a", "b")', "bbb"),
            ('REPT("ab", 3)', "ababab"),
            ('EXACT("a", "A")', False),
            ('VALUE("42")', 42),
            ('UPPER("x")', "X"),
            ('TRIM("  x ")', "x"),
        ],
    )
    def test_text(self, formula, expected):
        assert run(formula) == expected

    def test_find_missing_errors(self):
        with pytest.raises(FormulaEvalError):
            run('FIND("z", "abc")')


class TestLookup:
    def test_vlookup_exact(self):
        assert run("VLOOKUP(2, C1:D4, 2, FALSE)") == "two"

    def test_vlookup_exact_missing_is_na(self):
        with pytest.raises(FormulaEvalError) as info:
            run("VLOOKUP(9, C1:D4, 2, FALSE)")
        assert info.value.code == "#N/A"

    def test_vlookup_approximate(self):
        # 3.5 -> last key <= 3.5 is 3 -> "three"
        assert run("VLOOKUP(3.5, C1:D4, 2, TRUE)") == "three"

    def test_hlookup(self):
        # Searches the first row of C1:D2 ([1, 'one']) for 1, returns row 2.
        assert run("HLOOKUP(1, C1:D2, 2, FALSE)") == 2
        with pytest.raises(FormulaEvalError):
            run("HLOOKUP(99, C1:D2, 2, FALSE)")

    def test_index(self):
        assert run("INDEX(A1:B3, 2, 2)") == "beta"
        with pytest.raises(FormulaEvalError):
            run("INDEX(A1:B3, 9, 1)")

    def test_match_exact(self):
        assert run("MATCH(30, A1:A4, 0)") == 3
        with pytest.raises(FormulaEvalError):
            run("MATCH(35, A1:A4, 0)")

    def test_match_approximate(self):
        assert run("MATCH(35, A1:A4, 1)") == 3

    def test_choose(self):
        assert run('CHOOSE(2, "a", "b", "c")') == "b"


class TestConditionalAggregates:
    def test_countif_number_criteria(self):
        assert run('COUNTIF(A1:A4, ">15")') == 3

    def test_countif_equality(self):
        assert run('COUNTIF(B1:B5, "beta")') == 1

    def test_countif_not_equal(self):
        assert run('COUNTIF(A1:A4, "<>20")') == 3

    def test_sumif(self):
        assert run('SUMIF(A1:A4, ">=20")') == 90

    def test_sumif_separate_sum_range(self):
        assert run('SUMIF(C1:C4, ">2", A1:A4)') == 70

    def test_averageif(self):
        assert run('AVERAGEIF(A1:A4, ">10")') == 30

    def test_averageif_no_match(self):
        with pytest.raises(FormulaEvalError):
            run('AVERAGEIF(A1:A4, ">1000")')
