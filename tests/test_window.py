"""Unit tests for the viewport and the window block cache."""

import pytest

from repro.window.cache import WindowCache
from repro.window.viewport import Viewport


class TestViewport:
    def test_geometry(self):
        viewport = Viewport("S", top=10, left=2, n_rows=20, n_cols=5)
        assert viewport.bottom == 29
        assert viewport.right == 6
        assert viewport.as_range().to_a1(include_sheet=False) == "C11:G30"
        assert viewport.as_range().sheet == "S"

    def test_contains(self):
        viewport = Viewport("S", top=10, left=0, n_rows=10, n_cols=10)
        assert viewport.contains(10, 0)
        assert viewport.contains(19, 9)
        assert not viewport.contains(20, 0)
        assert viewport.contains_key(("S", 15, 5))
        assert not viewport.contains_key(("T", 15, 5))

    def test_scroll_clamps_at_zero(self):
        viewport = Viewport("S")
        viewport.scroll_by(-100)
        assert viewport.top == 0

    def test_page_down_up(self):
        viewport = Viewport("S", n_rows=40)
        viewport.page_down()
        assert viewport.top == 40
        viewport.page_up()
        assert viewport.top == 0

    def test_predicate_is_live(self):
        viewport = Viewport("S", top=0, n_rows=10, n_cols=10)
        predicate = viewport.visible_predicate()
        assert predicate(("S", 5, 0))
        viewport.scroll_to(100)
        assert not predicate(("S", 5, 0))
        assert predicate(("S", 105, 0))

    def test_listeners_fire_on_move(self):
        viewport = Viewport("S")
        moves = []
        viewport.add_listener(lambda v: moves.append(v.top))
        viewport.scroll_to(10)
        viewport.resize(5, 5)
        assert moves == [10, 10]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Viewport("S", n_rows=0)
        viewport = Viewport("S")
        with pytest.raises(ValueError):
            viewport.resize(0, 5)


class TestWindowCache:
    def make(self, n_rows=1000, **kwargs):
        data = [(i, f"row{i}") for i in range(n_rows)]
        fetches = []

        def fetcher(start, count):
            fetches.append((start, count))
            return data[start : start + count]

        cache = WindowCache(fetcher, **kwargs)
        return cache, fetches

    def test_window_contents(self):
        cache, _ = self.make(block_rows=64)
        rows = cache.window(100, 10)
        assert rows[0] == (100, "row100")
        assert len(rows) == 10

    def test_window_spanning_blocks(self):
        cache, _ = self.make(block_rows=64)
        rows = cache.window(60, 10)
        assert [r[0] for r in rows] == list(range(60, 70))

    def test_repeat_window_hits_cache(self):
        cache, fetches = self.make(block_rows=64, prefetch=False)
        cache.window(0, 10)
        cache.window(5, 10)
        assert len(fetches) == 1
        assert cache.stats.hits >= 1

    def test_sequential_scroll_prefetches(self):
        cache, fetches = self.make(block_rows=64)
        cache.window(0, 10)
        cache.window(64, 10)  # downward move -> prefetch block 2
        assert (128, 64) in fetches
        assert cache.stats.prefetches == 1

    def test_eviction_respects_capacity(self):
        cache, _ = self.make(block_rows=16, capacity_blocks=2, prefetch=False)
        cache.window(0, 4)
        cache.window(100, 4)
        cache.window(200, 4)
        assert cache.cached_blocks <= 2
        assert cache.stats.evictions >= 1

    def test_invalidate_all(self):
        cache, fetches = self.make(block_rows=64, prefetch=False)
        cache.window(0, 4)
        cache.invalidate()
        cache.window(0, 4)
        assert len(fetches) == 2

    def test_invalidate_single_row_block(self):
        cache, fetches = self.make(block_rows=64, prefetch=False)
        cache.window(0, 4)
        cache.window(64, 4)
        cache.invalidate(row=70)  # drops block 1 only
        cache.window(0, 4)   # still cached
        cache.window(64, 4)  # refetched
        assert len(fetches) == 3

    def test_invalidate_last_block_resets_direction_hint(self):
        """Dropping the block the hint points at must clear it: otherwise
        the next window() compares against a stale block index and
        prefetches in a direction the user is not scrolling."""
        cache, fetches = self.make(block_rows=64)
        cache.window(128, 10)   # _last_block = 2
        cache.invalidate(row=130)  # drops block 2 (the last-touched one)
        assert cache._last_block is None
        before = cache.stats.prefetches
        # Before the fix this looked like an upward scroll (1 < 2) and
        # prefetched block 0 — a stale direction.
        cache.window(64, 10)
        assert cache.stats.prefetches == before
        cache.window(128, 10)  # a real downward move resumes prefetching
        assert cache.stats.prefetches == before + 1
        assert (192, 64) in fetches  # ...of the *next* block

    def test_invalidate_other_block_keeps_direction_hint(self):
        cache, _ = self.make(block_rows=64)
        cache.window(128, 10)
        cache.invalidate(row=0)  # block 0: unrelated to the hint
        assert cache._last_block == 2

    def test_clamps_past_end(self):
        cache, _ = self.make(n_rows=100, block_rows=64)
        rows = cache.window(90, 50)
        assert len(rows) == 10

    def test_empty_window(self):
        cache, _ = self.make()
        assert cache.window(0, 0) == []

    def test_hit_ratio(self):
        cache, _ = self.make(block_rows=64, prefetch=False)
        cache.window(0, 4)
        cache.window(0, 4)
        assert cache.hit_ratio == 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WindowCache(lambda s, c: [], block_rows=0)
