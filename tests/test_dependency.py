"""Unit tests for precedent extraction, copy/paste shifting, and
structural reference adjustment."""

import pytest

from repro.core.address import CellAddress, RangeAddress
from repro.errors import FormulaError
from repro.formula.dependency import (
    ReferenceDeleted,
    adjust_formula_for_structural_edit,
    extract_dependencies,
    shift_formula,
)


class TestExtraction:
    def test_cells_and_ranges(self):
        deps = extract_dependencies("A1 + SUM(B1:B10) * C3")
        assert CellAddress.parse("A1") in deps.cells
        assert CellAddress.parse("C3") in deps.cells
        assert RangeAddress.parse("B1:B10") in deps.ranges

    def test_base_sheet_attribution(self):
        deps = extract_dependencies("A1 + Other!B2", base_sheet="Main")
        sheets = {address.sheet for address in deps.cells}
        assert sheets == {"Main", "Other"}

    def test_no_dependencies(self):
        deps = extract_dependencies('1 + 2 & "x"')
        assert deps.is_empty()

    def test_nested_function_args(self):
        deps = extract_dependencies("IF(A1>0, SUM(B1:B3), C1)")
        assert len(deps.cells) == 2
        assert len(deps.ranges) == 1

    def test_all_cells_expands_ranges(self):
        deps = extract_dependencies("SUM(A1:A3)", base_sheet="S")
        cells = deps.all_cells()
        assert len(cells) == 3

    def test_all_cells_refuses_huge_ranges(self):
        deps = extract_dependencies("SUM(A1:Z100000)")
        with pytest.raises(FormulaError):
            deps.all_cells(clamp=1000)

    def test_duplicates_deduplicated(self):
        deps = extract_dependencies("A1 + A1 + A1")
        assert len(deps.cells) == 1


class TestShift:
    def test_relative_shift(self):
        assert shift_formula("A1+B2", 1, 1) == "B2+C3"

    def test_absolute_pinned(self):
        assert shift_formula("$A$1+B2", 5, 5) == "$A$1+G7"

    def test_mixed_flags(self):
        assert shift_formula("A$1+$B2", 2, 2) == "C$1+$B4"

    def test_range_shift(self):
        assert shift_formula("SUM(A1:B2)", 1, 0) == "SUM(A2:B3)"

    def test_off_sheet_is_error(self):
        with pytest.raises(FormulaError):
            shift_formula("A1", -1, 0)

    def test_literals_untouched(self):
        assert shift_formula('1+"x"&A1', 0, 1) == '1+"x"&B1'


class TestStructuralAdjustment:
    def test_row_insert_shifts_below(self):
        out = adjust_formula_for_structural_edit("A5+A1", "row", 2, 1, "S", "S")
        assert out == "A6+A1"

    def test_row_insert_shifts_absolute_too(self):
        out = adjust_formula_for_structural_edit("$A$5", "row", 2, 1, "S", "S")
        assert out == "$A$6"

    def test_row_delete_shifts_up(self):
        out = adjust_formula_for_structural_edit("A5", "row", 1, -2, "S", "S")
        assert out == "A3"

    def test_row_delete_of_referenced_cell(self):
        with pytest.raises(ReferenceDeleted):
            adjust_formula_for_structural_edit("A2", "row", 1, -1, "S", "S")

    def test_range_shrinks_on_interior_delete(self):
        out = adjust_formula_for_structural_edit("SUM(A1:A10)", "row", 2, -3, "S", "S")
        assert out == "SUM(A1:A7)"

    def test_range_start_in_deleted_span_clamps(self):
        out = adjust_formula_for_structural_edit("SUM(A3:A10)", "row", 1, -4, "S", "S")
        assert out == "SUM(A2:A6)"

    def test_range_fully_deleted(self):
        with pytest.raises(ReferenceDeleted):
            adjust_formula_for_structural_edit("SUM(A3:A4)", "row", 2, -2, "S", "S")

    def test_range_grows_on_interior_insert(self):
        out = adjust_formula_for_structural_edit("SUM(A1:A10)", "row", 5, 2, "S", "S")
        assert out == "SUM(A1:A12)"

    def test_col_insert(self):
        out = adjust_formula_for_structural_edit("C1+A1", "col", 1, 1, "S", "S")
        assert out == "D1+A1"

    def test_other_sheet_untouched(self):
        out = adjust_formula_for_structural_edit("Other!A5+A5", "row", 0, 1, "S", "S")
        assert out == "Other!A5+A6"

    def test_formula_on_other_sheet_referencing_edited_sheet(self):
        out = adjust_formula_for_structural_edit("S!A5", "row", 0, 1, "S", "Other")
        assert out == "S!A6"

    def test_unqualified_ref_belongs_to_base_sheet(self):
        # base sheet differs from the edited sheet: refs don't move
        out = adjust_formula_for_structural_edit("A5", "row", 0, 1, "S", "Other")
        assert out == "A5"

    def test_bad_axis(self):
        with pytest.raises(FormulaError):
            adjust_formula_for_structural_edit("A1", "diagonal", 0, 1, "S", "S")
