"""Tests for workbook persistence (save/load round trips)."""

import datetime

import pytest

from repro import Workbook
from repro.core.persist import (
    load_workbook,
    save_workbook,
    workbook_from_dict,
    workbook_to_dict,
)
from repro.errors import ImportExportError


def build_rich_workbook() -> Workbook:
    wb = Workbook()
    wb.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT, "
        "added DATE DEFAULT NULL)"
    )
    wb.execute(
        "INSERT INTO items VALUES (1,'apple',10,'2020-01-02'),"
        "(2,'pear',20,NULL),(3,'fig',30,'2021-03-04')"
    )
    wb.set("Sheet1", "H1", 5)
    wb.set("Sheet1", "H2", "=H1*2")
    wb.add_sheet("Notes")
    wb.set("Notes", "A1", "remember")
    wb.dbtable("Sheet1", "A1", "items")
    wb.dbsql("Sheet1", "F1", "SELECT sum(qty) FROM items")
    return wb


class TestRoundTrip:
    def test_tables_restored(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.execute("SELECT count(*) FROM items").scalar() == 3
        assert wb.execute("SELECT name FROM items WHERE id=2").scalar() == "pear"

    def test_schema_details_restored(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        schema = wb.database.table("items").schema
        assert schema.primary_key == "id"
        assert schema.column("added").dtype.value == "DATE"

    def test_attribute_groups_restored(self):
        source = Workbook()
        source.execute("CREATE TABLE g (a INT, b INT)")
        source.execute("ALTER TABLE g ADD COLUMN c INT")  # own group
        wb = workbook_from_dict(workbook_to_dict(source))
        assert wb.database.table("g").schema.groups == [["a", "b"], ["c"]]

    def test_dates_roundtrip(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        value = wb.execute("SELECT added FROM items WHERE id=1").scalar()
        assert value == datetime.date(2020, 1, 2)

    def test_presentation_order_preserved(self):
        source = Workbook()
        source.execute("CREATE TABLE p (id INT PRIMARY KEY)")
        source.execute("INSERT INTO p VALUES (1),(3)")
        source.execute("INSERT INTO p VALUES (2) AT POSITION 1")
        wb = workbook_from_dict(workbook_to_dict(source))
        assert [r[0] for r in wb.execute("SELECT id FROM p").rows] == [1, 2, 3]

    def test_plain_cells_and_formulas(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.get("Sheet1", "H1") == 5
        assert wb.get("Sheet1", "H2") == 10
        wb.set("Sheet1", "H1", 7)  # formula is live, not a frozen value
        assert wb.get("Sheet1", "H2") == 14

    def test_multiple_sheets(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.get("Notes", "A1") == "remember"

    def test_regions_live_after_load(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.get("Sheet1", "A1") == "id"          # DBTABLE header
        assert wb.get("Sheet1", "F1") == 60            # DBSQL result
        # Two-way sync still works on the loaded copy.
        wb.set("Sheet1", "C2", 100)
        assert wb.get("Sheet1", "F1") == 150

    def test_windowed_region_offset_restored(self):
        source = Workbook()
        source.execute("CREATE TABLE big (id INT PRIMARY KEY)")
        table = source.database.table("big")
        for i in range(200):
            table.insert((i,), emit=False)
        region = source.dbtable("Sheet1", "A1", "big", window_rows=10)
        region.scroll_to(50)
        wb = workbook_from_dict(workbook_to_dict(source))
        assert wb.get("Sheet1", "A2") == 50

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "workbook.json")
        save_workbook(build_rich_workbook(), path)
        wb = load_workbook(path)
        assert wb.get("Sheet1", "F1") == 60

    def test_bad_version_rejected(self):
        with pytest.raises(ImportExportError):
            workbook_from_dict({"version": 99})

    def test_empty_workbook(self):
        wb = workbook_from_dict(workbook_to_dict(Workbook()))
        assert wb.sheet_names() == ["Sheet1"]
