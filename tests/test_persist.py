"""Tests for workbook persistence (save/load round trips)."""

import datetime

import pytest

from repro import Workbook
from repro.core.persist import (
    load_workbook,
    save_workbook,
    workbook_from_dict,
    workbook_to_dict,
)
from repro.errors import ImportExportError


def build_rich_workbook() -> Workbook:
    wb = Workbook()
    wb.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT, "
        "added DATE DEFAULT NULL)"
    )
    wb.execute(
        "INSERT INTO items VALUES (1,'apple',10,'2020-01-02'),"
        "(2,'pear',20,NULL),(3,'fig',30,'2021-03-04')"
    )
    wb.set("Sheet1", "H1", 5)
    wb.set("Sheet1", "H2", "=H1*2")
    wb.add_sheet("Notes")
    wb.set("Notes", "A1", "remember")
    wb.dbtable("Sheet1", "A1", "items")
    wb.dbsql("Sheet1", "F1", "SELECT sum(qty) FROM items")
    return wb


class TestRoundTrip:
    def test_tables_restored(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.execute("SELECT count(*) FROM items").scalar() == 3
        assert wb.execute("SELECT name FROM items WHERE id=2").scalar() == "pear"

    def test_schema_details_restored(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        schema = wb.database.table("items").schema
        assert schema.primary_key == "id"
        assert schema.column("added").dtype.value == "DATE"

    def test_attribute_groups_restored(self):
        source = Workbook()
        source.execute("CREATE TABLE g (a INT, b INT)")
        source.execute("ALTER TABLE g ADD COLUMN c INT")  # own group
        wb = workbook_from_dict(workbook_to_dict(source))
        assert wb.database.table("g").schema.groups == [["a", "b"], ["c"]]

    def test_dates_roundtrip(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        value = wb.execute("SELECT added FROM items WHERE id=1").scalar()
        assert value == datetime.date(2020, 1, 2)

    def test_presentation_order_preserved(self):
        source = Workbook()
        source.execute("CREATE TABLE p (id INT PRIMARY KEY)")
        source.execute("INSERT INTO p VALUES (1),(3)")
        source.execute("INSERT INTO p VALUES (2) AT POSITION 1")
        wb = workbook_from_dict(workbook_to_dict(source))
        assert [r[0] for r in wb.execute("SELECT id FROM p").rows] == [1, 2, 3]

    def test_plain_cells_and_formulas(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.get("Sheet1", "H1") == 5
        assert wb.get("Sheet1", "H2") == 10
        wb.set("Sheet1", "H1", 7)  # formula is live, not a frozen value
        assert wb.get("Sheet1", "H2") == 14

    def test_multiple_sheets(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.get("Notes", "A1") == "remember"

    def test_regions_live_after_load(self):
        wb = workbook_from_dict(workbook_to_dict(build_rich_workbook()))
        assert wb.get("Sheet1", "A1") == "id"          # DBTABLE header
        assert wb.get("Sheet1", "F1") == 60            # DBSQL result
        # Two-way sync still works on the loaded copy.
        wb.set("Sheet1", "C2", 100)
        assert wb.get("Sheet1", "F1") == 150

    def test_windowed_region_offset_restored(self):
        source = Workbook()
        source.execute("CREATE TABLE big (id INT PRIMARY KEY)")
        table = source.database.table("big")
        for i in range(200):
            table.insert((i,), emit=False)
        region = source.dbtable("Sheet1", "A1", "big", window_rows=10)
        region.scroll_to(50)
        wb = workbook_from_dict(workbook_to_dict(source))
        assert wb.get("Sheet1", "A2") == 50

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "workbook.json")
        save_workbook(build_rich_workbook(), path)
        wb = load_workbook(path)
        assert wb.get("Sheet1", "F1") == 60

    def test_bad_version_rejected(self):
        with pytest.raises(ImportExportError):
            workbook_from_dict({"version": 99})

    def test_empty_workbook(self):
        wb = workbook_from_dict(workbook_to_dict(Workbook()))
        assert wb.sheet_names() == ["Sheet1"]


class TestLayoutState:
    """Format v2: the tuned physical layout round-trips — advisor flag,
    decayed workload window, and any in-flight migration target."""

    def build(self) -> Workbook:
        wb = Workbook()
        wb.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        table = wb.database.table("t")
        for i in range(40):
            table.insert((i, i + 1, i + 2, i + 3), emit=False)
        return wb

    def test_auto_layout_flag_roundtrip(self):
        source = self.build()
        source.execute("ALTER TABLE t SET LAYOUT AUTO")
        wb = workbook_from_dict(workbook_to_dict(source))
        assert wb.database.table("t").auto_layout
        # And the off state stays off.
        source.execute("ALTER TABLE t SET LAYOUT MANUAL")
        wb = workbook_from_dict(workbook_to_dict(source))
        assert not wb.database.table("t").auto_layout

    def test_access_stats_roundtrip(self):
        source = self.build()
        table = source.database.table("t")
        for _ in range(7):
            list(table.store.scan_column("b"))
        for rid in table.store.rids()[:5]:
            table.store.get(rid)
        table.store.access_stats.decay()
        wb = workbook_from_dict(workbook_to_dict(source))
        # Verbatim — load-time row inserts must not be double-counted on
        # top of the persisted (decayed) window.
        assert (
            wb.database.table("t").store.access_stats.to_dict()
            == table.store.access_stats.to_dict()
        )

    def test_migration_target_roundtrip_and_resume(self):
        source = self.build()
        table = source.database.table("t")
        table.migrate_layout([["a"], ["b", "c", "d"]], online=True)
        assert table.migration_active
        wb = workbook_from_dict(workbook_to_dict(source))
        clone = wb.database.table("t")
        assert clone.migration_active
        assert clone.layout_migration_target == [["a"], ["b", "c", "d"]]
        # The loaded workbook's maintenance loop resumes and completes it.
        while clone.migration_active:
            clone.layout_tick(steps=1)
        assert clone.schema.groups == [["a"], ["b", "c", "d"]]
        clone.validate()

    def test_mid_migration_grouping_is_the_live_one(self):
        source = self.build()
        table = source.database.table("t")
        # [[a,b],[c,d]] -> [[a,c],[b,d]] takes four steps (two splits,
        # two merges); stop after one so the grouping is intermediate.
        table.store.restructure([["a", "b"], ["c", "d"]])
        migration = table.migrate_layout(
            [["a", "c"], ["b", "d"]], online=True
        )
        migration.step()
        assert not migration.done
        intermediate = table.schema.groups
        wb = workbook_from_dict(workbook_to_dict(source))
        clone = wb.database.table("t")
        assert clone.schema.groups == intermediate
        assert clone.migration_active
        assert clone.layout_migration_target == [["a", "c"], ["b", "d"]]

    def test_group_io_counters_roundtrip(self):
        source = self.build()
        table = source.database.table("t")
        table.migrate_layout([["a"], ["b", "c", "d"]], online=False)
        table.checkpoint()
        for _ in range(5):
            list(table.store.scan_column("a"))
        before = table.store.group_io_snapshot()
        assert any(entry["writes"] or entry["allocations"] for entry in before)
        wb = workbook_from_dict(workbook_to_dict(source))
        # The per-group I/O surface continues from the pre-save counters
        # instead of restarting from the load's own write burst.
        assert wb.database.table("t").store.group_io_snapshot() == before

    def test_missing_group_io_loads_with_live_counters(self):
        payload = workbook_to_dict(self.build())
        for spec in payload["tables"]:
            del spec["group_io"]
        wb = workbook_from_dict(payload)  # must not raise
        assert wb.database.table("t").n_rows == 40

    def test_v1_payload_loads_with_layout_defaults(self):
        source = self.build()
        source.execute("ALTER TABLE t SET LAYOUT AUTO")
        payload = workbook_to_dict(source)
        payload["version"] = 1
        for spec in payload["tables"]:
            for key in ("auto_layout", "access_stats", "migration_target"):
                spec.pop(key, None)
        wb = workbook_from_dict(payload)
        table = wb.database.table("t")
        assert not table.auto_layout
        assert not table.migration_active
        assert table.schema.groups == [["a", "b", "c", "d"]]
