"""The observability subsystem: metrics, spans, events, and their wiring.

Covers the cross-layer claims:

* an ``EXPLAIN TRACE`` / :meth:`Database.trace_statement` span tree for a
  projected scan over a *grouped* table reports pages_read consistent
  with the pager's per-tag ``IOStats`` deltas (two independent counter
  paths agreeing),
* a crashed-then-recovered workbook's event log contains the WAL-repair
  and migration-resume events, in causal order,
* the pager satellite: ``tag_stats`` misses share one immutable empty
  ``IOStats``; ``stats_snapshot`` aggregates every tag in one pass,
* registry semantics: get-or-create, disabled no-ops, collectors,
  histogram percentiles, Prometheus rendering,
* the CLI ``metrics`` / ``events`` surfaces.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import DataSpreadShell, observability_report
from repro.engine.database import Database, is_explain_trace
from repro.engine.pager import EMPTY_IO_STATS, BufferPool
from repro.errors import StorageError
from repro.obs import EventLog, MetricsRegistry
from repro.obs.metrics import Histogram
from repro.server.service import WAL_FILENAME, WorkbookService, recover_state


def build_grouped_db(n_rows: int = 120) -> Database:
    """A 4-column table stored as two 2-column groups."""
    db = Database(page_capacity=16, buffer_frames=8)
    db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
    table = db.table("t")
    table.store.restructure([["a", "b"], ["c", "d"]])
    for i in range(n_rows):
        table.insert((i, i * 2, i * 3, i * 5), emit=False)
    db.checkpoint()
    table.store.pool.drop_cache()
    return db


def find_prefix(span, prefix: str):
    if span.name.startswith(prefix):
        return span
    for child in span.children:
        hit = find_prefix(child, prefix)
        if hit is not None:
            return hit
    return None


# -- span tracing ------------------------------------------------------------


def test_trace_pager_span_matches_tag_stats():
    """The execute span's pager child counts the same pages the per-tag
    pager accounting charges to the groups the query covered."""
    db = build_grouped_db()
    store = db.table("t").store
    before = [store.group_io_stats(g).snapshot() for g in range(store.n_groups)]

    result, trace = db.trace_statement("SELECT a, b FROM t WHERE a > 10")

    deltas = [
        store.group_io_stats(g).delta(before[g]) for g in range(store.n_groups)
    ]
    assert len(result.rows) == 109
    pager = trace.find("pager")
    assert pager is not None
    # (a, b) live in group 0: the trace's pages_read must equal that
    # group's tag delta, and the untouched (c, d) group must stay cold.
    assert pager.counters["pages_read"] == deltas[0].reads
    assert deltas[0].reads > 0
    assert deltas[1].reads == 0

    scan = find_prefix(trace, "ProjectedScan")
    assert scan is not None
    # Zone maps may prove some pages irrelevant to ``a > 10``, so the scan
    # examines at most every row and at least the survivors.
    assert 109 <= scan.counters["rows_scanned"] <= 120
    assert scan.counters["rows_scanned"] + scan.counters.get("pages_skipped", 0) >= 120 - scan.counters["rows_scanned"]
    assert scan.counters["cols_read"] == 2
    assert scan.counters["pages_read"] == deltas[0].reads
    assert scan.counters["rows_out"] == 109
    # Vectorized execution counters ride the same span: every scanned row
    # arrived in some batch, so the batch arithmetic must close.
    assert scan.counters["batches"] >= 1
    assert (
        scan.counters["rows_per_batch"]
        == scan.counters["rows_scanned"] // scan.counters["batches"]
    )


def test_trace_span_tree_shape_and_timing():
    db = build_grouped_db(n_rows=20)
    _, trace = db.trace_statement("SELECT a FROM t")
    assert trace.name == "statement"
    names = [child.name for child in trace.children]
    assert names[:3] == ["parse", "plan", "execute"]
    execute = trace.find("execute")
    assert execute.duration >= 0
    assert execute.counters["rows_out"] == 20
    assert trace.duration >= execute.duration
    # Rendering: one line per span, indented, with the counters inline.
    rendered = trace.render()
    assert "statement" in rendered and "ProjectedScan" in rendered
    assert "rows_scanned=20" in rendered
    # No trace is left active afterwards — the null-span fast path is back.
    assert not db.tracer.active
    assert db.last_trace is trace


def test_explain_trace_statement():
    db = build_grouped_db(n_rows=15)
    assert is_explain_trace("  EXPLAIN   TRACE SELECT 1")
    assert not is_explain_trace("EXPLAIN TRACER SELECT 1")
    assert not is_explain_trace("SELECT 1")
    result = db.execute("EXPLAIN TRACE SELECT a, b FROM t WHERE a > 3")
    assert result.columns == ["trace"]
    text = "\n".join(row[0] for row in result.rows)
    assert "statement" in text and "execute" in text
    assert "rows_out=11" in text
    # The traced statement really ran (EXPLAIN TRACE executes, not plans).
    assert db.metrics()["db_statements_total"] >= 2


# -- event log on the crash/recovery path ------------------------------------


def test_crash_recovery_event_order(tmp_path):
    """Crash mid-migration with a torn WAL tail: the recovered event log
    shows repair before migration-resume before the recovery summary."""
    directory = str(tmp_path / "svc")
    service = WorkbookService(directory, fsync=False, compact_every=0)
    session = service.connect("test")
    service.execute(session.session_id, "CREATE TABLE t (a INT, b INT, c INT, d INT)")
    # Distinct 8-byte ints: incompressible, so the maintenance loop's
    # encode-first pass cannot pre-empt the migration this test drives.
    wide = 2**33
    for start in range(0, 120, 10):
        values = ",".join(
            f"({j * wide},{j * wide + 1},{j * wide + 2},{j * wide + 3})"
            for j in range(start, start + 10)
        )
        service.execute(session.session_id, f"INSERT INTO t VALUES {values}")
    service.execute(session.session_id, "ALTER TABLE t SET LAYOUT AUTO")
    table = service.workbook.database.table("t")
    table.layout_advisor.min_ops = 8
    table.store.access_stats.reset()
    for _ in range(24):
        service.execute(session.session_id, "SELECT a FROM t WHERE a >= 0")
    for _ in range(40):
        service.maintenance_tick(steps=1)
        if table.migration_active:
            break
    assert table.migration_active, "migration never started"
    target = table.layout_migration_target
    # The advisor's decision and the migration start were themselves logged.
    assert service.events.of_kind("layout_advice")
    assert service.events.of_kind("migration_start")
    service.close()

    # Simulate the crash: a torn final record (no newline) on the WAL.
    garbage = b'{"crc": 1234, "rec": {"lsn"'
    with open(os.path.join(directory, WAL_FILENAME), "ab") as handle:
        handle.write(garbage)

    recovery = recover_state(directory)
    events = recovery.workbook.database.events
    kinds = [event.kind for event in events]
    assert "wal_repair" in kinds
    assert "migration_resume" in kinds
    assert "recovery" in kinds
    assert (
        kinds.index("wal_repair")
        < kinds.index("migration_resume")
        < kinds.index("recovery")
    )
    repair = events.of_kind("wal_repair")[0]
    assert repair.data["cause"] == "torn_tail"
    assert repair.data["truncated_bytes"] == len(garbage)
    resume = events.of_kind("migration_resume")[0]
    assert resume.data["table"] == "t"
    assert resume.data["groups"] == target
    recovered = recovery.workbook.database.table("t")
    assert recovered.migration_active
    assert recovered.layout_migration_target == target


def test_migration_lifecycle_events():
    """Start-to-finish migration leaves start/step/finish in the log."""
    db = Database(page_capacity=16, buffer_frames=8)
    db.execute("CREATE TABLE t (a INT, b INT, c INT)")
    table = db.table("t")
    for i in range(80):
        table.insert((i, i * 2, i * 3), emit=False)
    db.execute("ALTER TABLE t SET LAYOUT AUTO")
    table.layout_advisor.min_ops = 8
    table.store.access_stats.reset()
    for _ in range(24):
        list(table.store.scan_column("a"))
    for _ in range(60):
        table.layout_tick(steps=2)
        if not table.migration_active and db.events.of_kind("migration_finish"):
            break
    kinds = [event.kind for event in db.events]
    assert "layout_advice" in kinds and "migration_start" in kinds
    assert "migration_step" in kinds and "migration_finish" in kinds
    assert kinds.index("migration_start") < kinds.index("migration_finish")
    finish = db.events.of_kind("migration_finish")[0]
    assert finish.data["table"] == "t"
    assert finish.data["steps"] >= 1


def test_snapshot_compaction_event(tmp_path):
    directory = str(tmp_path / "svc")
    with WorkbookService(directory, fsync=False, compact_every=0) as service:
        session = service.connect("test")
        service.set_cell(session.session_id, "Sheet1", "A1", 42)
        assert service.compact() is not None
        event = service.events.of_kind("snapshot_compaction")[0]
        assert event.data["directory"] == directory
        assert event.data["lsn"] >= 1


# -- event log primitives ----------------------------------------------------


def test_event_log_bounded_and_ordered():
    log = EventLog(maxlen=4)
    for i in range(10):
        log.record("tick", n=i)
    assert len(log) == 4
    assert [event.data["n"] for event in log] == [6, 7, 8, 9]
    # Sequence numbers keep counting even after the deque drops entries.
    assert [event.seq for event in log] == [7, 8, 9, 10]
    assert [event.data["n"] for event in log.tail(2)] == [8, 9]
    assert log.kinds() == ["tick"]
    log.enabled = False
    assert log.record("tick", n=99) is None
    assert len(log) == 4
    rendered = log.tail(1)[0].render()
    assert "tick" in rendered and "n=9" in rendered


# -- pager satellite ---------------------------------------------------------


def test_tag_stats_miss_returns_shared_immutable_empty():
    pool = BufferPool(capacity=4, page_capacity=8)
    missing = pool.tag_stats("never-written")
    assert missing is EMPTY_IO_STATS
    assert pool.tag_stats(("other", 1)) is missing
    assert (missing.reads, missing.writes) == (0, 0)
    with pytest.raises(StorageError):
        missing.reads = 5
    with pytest.raises(StorageError):
        EMPTY_IO_STATS.writes = 1
    EMPTY_IO_STATS.reset()  # no-op, must not raise
    assert EMPTY_IO_STATS.reads == 0


def test_pager_stats_snapshot_aggregates_tags():
    db = build_grouped_db(n_rows=60)
    store = db.table("t").store
    for _ in store.scan_column("a"):
        pass
    snap = store.pool.stats_snapshot()
    assert snap["pager_reads"] == store.pool.stats.reads
    assert snap["pager_writes"] == store.pool.stats.writes
    assert snap["buffer_hits"] == store.pool.hits
    assert snap["buffer_misses"] == store.pool.misses
    assert snap["pager_tags"] >= store.n_groups
    per_tag_reads = sum(
        store.group_io_stats(g).reads for g in range(store.n_groups)
    )
    assert snap["pager_tagged_reads"] >= per_tag_reads
    assert 0.0 <= snap["buffer_hit_ratio"] <= 1.0


# -- metrics registry --------------------------------------------------------


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    counter = registry.counter("ops_total", help="operations")
    assert registry.counter("ops_total") is counter
    counter.inc()
    counter.inc(4)
    registry.gauge("depth").set(7)
    histogram = registry.histogram("latency_seconds")
    for value in (0.001, 0.002, 0.004, 0.1):
        histogram.observe(value)
    snap = registry.snapshot()
    assert snap["ops_total"] == 5
    assert snap["depth"] == 7
    assert snap["latency_seconds"]["count"] == 4
    assert snap["latency_seconds"]["p50"] <= snap["latency_seconds"]["p99"]
    with pytest.raises(ValueError):
        registry.gauge("ops_total")  # name already taken by a counter


def test_registry_disabled_is_inert_but_collectors_run():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("ops_total")
    counter.inc()
    registry.gauge("depth").set(3)
    registry.histogram("latency_seconds").observe(0.5)
    registry.register_collector(lambda: {"pulled": 11})
    snap = registry.snapshot()
    # Push-side instruments are no-ops when disabled...
    assert snap["ops_total"] == 0
    assert snap["depth"] == 0
    assert snap["latency_seconds"]["count"] == 0
    # ...but pull collectors still report (stats_summary depends on it).
    assert snap["pulled"] == 11


def test_histogram_percentiles_log_buckets():
    histogram = Histogram("h")
    for _ in range(95):
        histogram.observe(0.001)
    for _ in range(5):
        histogram.observe(1.0)
    # Percentile resolution is one power-of-two bucket: the p50 bucket
    # upper bound is within 2x of the true median, p99 lands in the
    # outlier bucket.
    assert 0.001 <= histogram.p50 <= 0.002
    assert histogram.p99 >= 1.0
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["sum"] == pytest.approx(0.095 + 5.0)


def test_prometheus_and_table_rendering():
    registry = MetricsRegistry()
    registry.counter("ops_total", help="operations").inc(3)
    registry.histogram("latency_seconds").observe(0.01)
    text = registry.render_prometheus()
    assert "# TYPE ops_total counter" in text
    assert "ops_total 3" in text
    assert "# TYPE latency_seconds histogram" in text
    assert 'latency_seconds_bucket{le="+Inf"} 1' in text
    assert "latency_seconds_count 1" in text
    table = registry.render_table()
    assert "ops_total" in table and "3" in table


def test_database_metrics_collects_engine_state():
    db = build_grouped_db(n_rows=30)
    db.execute("SELECT a FROM t")
    snap = db.metrics()
    assert snap["db_statements_total"] >= 2
    assert snap["db_tables"] == 1
    assert snap["db_statement_seconds"]["count"] >= 2
    assert snap["pager_reads"] >= 1
    assert "buffer_hit_ratio" in snap


def test_service_stats_summary_aliases(tmp_path):
    with WorkbookService(str(tmp_path / "svc"), fsync=False) as service:
        session = service.connect("test")
        service.set_cell(session.session_id, "Sheet1", "A1", 1)
        summary = service.stats_summary()
        assert summary["ops_applied"] == summary["metrics"]["server_ops_applied"]
        assert summary["version"] == service.version
        assert summary["wal"] is service.wal.stats
        assert summary["metrics"]["wal_appends"] == service.wal.stats.appends
        assert summary["metrics"]["server_apply_seconds"]["count"] >= 1


# -- CLI surfaces ------------------------------------------------------------


def test_cli_metrics_and_events_commands():
    shell = DataSpreadShell()
    shell.handle_line("sql CREATE TABLE t (a INT, b INT)")
    shell.handle_line("sql INSERT INTO t VALUES (1, 2)")
    table = shell.handle_line("metrics")
    assert "db_statements_total" in table
    prom = shell.handle_line("metrics prom")
    assert "# TYPE db_statements_total counter" in prom
    assert shell.handle_line("metrics bogus") == "usage: metrics [prom]"
    assert shell.handle_line("events") == "(no events)"
    shell.workbook.database.events.record("tick", n=1)
    assert "tick" in shell.handle_line("events")
    assert shell.handle_line("events x") == "usage: events [n]"
    trace = shell.handle_line("sql EXPLAIN TRACE SELECT a FROM t")
    assert trace.startswith("statement") and "execute" in trace


def test_cli_observability_report(tmp_path):
    directory = str(tmp_path / "svc")
    with WorkbookService(directory, fsync=False) as service:
        session = service.connect("test")
        service.execute(session.session_id, "CREATE TABLE t (a INT)")
        service.execute(session.session_id, "INSERT INTO t VALUES (7)")
    metrics_text = observability_report("metrics", directory)
    assert "db_statements_total" in metrics_text
    prom_text = observability_report("metrics", directory, "prom")
    assert "# TYPE" in prom_text
    events_text = observability_report("events", directory)
    assert "recovery" in events_text
    with pytest.raises(Exception):
        observability_report("metrics", str(tmp_path / "missing"))
