"""Unit tests for the Table abstraction: positional order, key index,
change events."""

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.table import ChangeEvent, Table
from repro.engine.types import DBType
from repro.errors import ConstraintError, ExecutionError


def make_table(pk=True):
    schema = TableSchema.from_pairs(
        [("id", DBType.INTEGER), ("name", DBType.TEXT)],
        primary_key="id" if pk else None,
    )
    return Table("t", schema)


class TestPositionalOrder:
    def test_append_order(self):
        table = make_table()
        for i in range(5):
            table.insert((i, f"n{i}"))
        assert [row[0] for row in table.rows()] == [0, 1, 2, 3, 4]

    def test_insert_at_position(self):
        table = make_table()
        table.insert((1, "a"))
        table.insert((2, "b"))
        table.insert((9, "mid"), position=1)
        assert [row[0] for row in table.rows()] == [1, 9, 2]

    def test_row_at_and_rid_at(self):
        table = make_table()
        rid = table.insert((7, "x"))
        assert table.rid_at(0) == rid
        assert table.row_at(0) == (7, "x")

    def test_window(self):
        table = make_table()
        for i in range(100):
            table.insert((i, f"n{i}"))
        window = table.window(40, 5)
        assert [row[0] for row in window] == [40, 41, 42, 43, 44]

    def test_window_clamps(self):
        table = make_table()
        table.insert((1, "a"))
        assert table.window(5, 10) == []

    def test_delete_at_shifts_positions(self):
        table = make_table()
        for i in range(4):
            table.insert((i, str(i)))
        table.delete_at(1)
        assert [row[0] for row in table.rows()] == [0, 2, 3]
        assert table.row_at(1) == (2, "2")

    def test_scan_yields_positions(self):
        table = make_table()
        for i in range(3):
            table.insert((i, str(i)))
        positions = [pos for pos, _, _ in table.scan()]
        assert positions == [0, 1, 2]


class TestPrimaryKey:
    def test_find_by_key(self):
        table = make_table()
        rid = table.insert((42, "x"))
        assert table.find_by_key(42) == rid
        assert table.find_by_key(99) is None

    def test_no_pk_find_raises(self):
        table = make_table(pk=False)
        table.insert((1, "a"))
        with pytest.raises(ExecutionError):
            table.find_by_key(1)

    def test_update_changes_key_index(self):
        table = make_table()
        rid = table.insert((1, "a"))
        table.update_rid(rid, {"id": 5})
        assert table.find_by_key(5) == rid
        assert table.find_by_key(1) is None

    def test_delete_removes_key(self):
        table = make_table()
        table.insert((1, "a"))
        table.delete_at(0)
        assert table.find_by_key(1) is None

    def test_not_null_enforced_on_update(self):
        table = make_table()
        rid = table.insert((1, "a"))
        with pytest.raises(ConstraintError):
            table.update_rid(rid, {"id": None})


class TestEvents:
    def collect(self, table):
        events = []
        table.listeners.append(events.append)
        return events

    def test_insert_event(self):
        table = make_table()
        events = self.collect(table)
        table.insert((1, "a"))
        assert events[0].kind == "insert"
        assert events[0].position == 0
        assert events[0].row == (1, "a")

    def test_update_event_carries_old_row(self):
        table = make_table()
        rid = table.insert((1, "a"))
        events = self.collect(table)
        table.update_rid(rid, {"name": "b"}, position=0)
        assert events[0].kind == "update"
        assert events[0].old_row == (1, "a")
        assert events[0].row == (1, "b")

    def test_delete_event(self):
        table = make_table()
        table.insert((1, "a"))
        events = self.collect(table)
        table.delete_at(0)
        assert events[0].kind == "delete"
        assert events[0].old_row == (1, "a")

    def test_schema_events(self):
        table = make_table()
        events = self.collect(table)
        table.add_column(Column("x", DBType.INTEGER))
        table.rename_column("x", "y")
        table.drop_column("y")
        assert [e.kind for e in events] == ["add_column", "rename_column", "drop_column"]

    def test_emit_false_suppresses(self):
        table = make_table()
        events = self.collect(table)
        table.insert((1, "a"), emit=False)
        assert events == []

    def test_delete_rids_bulk(self):
        table = make_table()
        rids = [table.insert((i, str(i))) for i in range(5)]
        events = self.collect(table)
        deleted = table.delete_rids([rids[1], rids[3]])
        assert deleted == 2
        assert [row[0] for row in table.rows()] == [0, 2, 4]
        assert all(e.kind == "delete" for e in events)


class TestValidation:
    def test_validate_full_consistency(self):
        table = make_table()
        for i in range(50):
            table.insert((i, str(i)))
        table.delete_at(10)
        table.update_rid(table.rid_at(5), {"name": "patched"}, position=5)
        table.validate()

    def test_single_column_update_uses_group_path(self):
        schema = TableSchema.from_pairs(
            [("id", DBType.INTEGER), ("a", DBType.TEXT), ("b", DBType.TEXT)],
            primary_key="id",
            group_size=1,
        )
        table = Table("g", schema, LayoutPolicy.HYBRID)
        rid = table.insert((1, "x", "y"))
        table.checkpoint()
        before = table.store.pool.stats.writes
        table.update_rid(rid, {"b": "z"})
        table.checkpoint()
        assert table.store.pool.stats.writes - before == 1
