"""Property test: the positional-mapping structural-edit path agrees with
a naive dict-of-cells model under random edit sequences, and WAL replay of
the same operation log reproduces the identical sheet."""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Workbook
from repro.core.address import CellAddress
from repro.formula.dependency import (
    ReferenceDeleted,
    adjust_formula_for_structural_edit,
)
from repro.server.service import apply_op
from repro.server.wal import WriteAheadLog, committed_ops, read_wal

COORD = st.integers(0, 12)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("value"), COORD, COORD, st.integers(0, 99)),
        st.tuples(st.just("formula"), COORD, COORD, st.tuples(COORD, COORD)),
        st.tuples(
            st.sampled_from(["insert_rows", "delete_rows", "insert_cols", "delete_cols"]),
            st.integers(0, 10),
            st.integers(1, 2),
            st.none(),
        ),
    ),
    max_size=22,
)


def formula_text(ref_row: int, ref_col: int) -> str:
    return f"={CellAddress(ref_row, ref_col).to_a1()}+1"


def snapshot(workbook: Workbook):
    """(row, col) -> (value, formula) for every occupied cell."""
    return {
        (row, col): (cell.value, cell.formula)
        for row, col, cell in workbook.sheet("Sheet1").store.items()
    }


def shift_model(model, axis, at, count):
    """Apply a structural edit to the naive dict model: shift keys, drop
    deleted ones, rewrite formula text (the per-formula oracle)."""
    index = 0 if axis == "row" else 1
    removed = -count if count < 0 else 0
    out = {}
    for coord, raw in model.items():
        position = coord[index]
        if removed and at <= position < at + removed:
            continue  # deleted slice
        if position >= at + removed:
            moved = position + count
        else:
            moved = position
        new_coord = (moved, coord[1]) if axis == "row" else (coord[0], moved)
        if isinstance(raw, str) and raw.startswith("="):
            try:
                raw = "=" + adjust_formula_for_structural_edit(
                    raw[1:], axis, at, count, "Sheet1", "Sheet1"
                )
            except ReferenceDeleted:
                raw = "#REF!"
        out[new_coord] = raw
    return out


@settings(max_examples=30, deadline=None)
@given(operations=operations)
def test_structural_edits_match_naive_model(operations):
    workbook = Workbook()
    model = {}
    ops_log = []
    for kind, a, b, extra in operations:
        if kind == "value":
            workbook.set("Sheet1", CellAddress(a, b), extra)
            model[(a, b)] = extra
            ops_log.append(
                {"type": "set_cell", "sheet": "Sheet1",
                 "ref": CellAddress(a, b).to_a1(), "raw": extra}
            )
        elif kind == "formula":
            raw = formula_text(*extra)
            workbook.set("Sheet1", CellAddress(a, b), raw)
            model[(a, b)] = raw
            ops_log.append(
                {"type": "set_cell", "sheet": "Sheet1",
                 "ref": CellAddress(a, b).to_a1(), "raw": raw}
            )
        else:
            axis = "row" if "rows" in kind else "col"
            count = b if kind.startswith("insert") else -b
            getattr(workbook, kind)("Sheet1", a, b)
            model = shift_model(model, axis, a, count)
            ops_log.append({"type": kind, "sheet": "Sheet1", "at": a, "count": b})

    # 1. The live workbook equals a fresh workbook built from the model.
    oracle = Workbook()
    for (row, col), raw in model.items():
        oracle.set("Sheet1", CellAddress(row, col), raw)
    workbook.recalc_all()
    oracle.recalc_all()
    assert snapshot(workbook) == snapshot(oracle)

    # 2. WAL replay of the same op sequence reproduces the identical sheet.
    with tempfile.TemporaryDirectory() as tmp:
        path = tmp + "/wal.jsonl"
        with WriteAheadLog(path, fsync=False) as wal:
            for op in ops_log:
                wal.append(op)
        records, _, _ = read_wal(path)
        replayed = Workbook()
        for op in committed_ops(records):
            apply_op(replayed, op)
        replayed.recalc_all()
        assert snapshot(replayed) == snapshot(workbook)
