"""Unit tests for the page/buffer substrate (repro.engine.pager)."""

import pytest

from repro.engine.pager import BufferPool, DiskManager, IOStats, Page
from repro.errors import StorageError


class TestDiskManager:
    def test_allocate_read_write(self):
        disk = DiskManager()
        page_id = disk.allocate()
        page = disk.read(page_id)
        page.records.append((1, ("x",)))
        disk.write(page)
        again = disk.read(page_id)
        assert again.records == [(1, ("x",))]

    def test_snapshots_are_isolated(self):
        disk = DiskManager()
        page_id = disk.allocate()
        page = disk.read(page_id)
        page.records.append((1, ("x",)))
        # Not written back: disk must still be empty.
        assert disk.read(page_id).records == []

    def test_stats_count(self):
        disk = DiskManager()
        page_id = disk.allocate()
        disk.read(page_id)
        disk.write(disk.read(page_id))
        assert disk.stats.allocations == 1
        assert disk.stats.reads == 2
        assert disk.stats.writes == 1

    def test_free(self):
        disk = DiskManager()
        page_id = disk.allocate()
        disk.free(page_id)
        assert disk.n_pages == 0
        with pytest.raises(StorageError):
            disk.read(page_id)

    def test_bad_page_operations(self):
        disk = DiskManager()
        with pytest.raises(StorageError):
            disk.read(99)
        with pytest.raises(StorageError):
            disk.write(Page(99))
        with pytest.raises(StorageError):
            disk.free(99)


class TestIOStats:
    def test_snapshot_delta(self):
        stats = IOStats(reads=10, writes=5)
        before = stats.snapshot()
        stats.reads += 3
        stats.writes += 1
        delta = stats.delta(before)
        assert delta.reads == 3
        assert delta.writes == 1
        assert delta.total == 4

    def test_reset(self):
        stats = IOStats(reads=1, writes=2, allocations=3, frees=4)
        stats.reset()
        assert stats.total == 0 and stats.allocations == 0 and stats.frees == 0


class TestBufferPool:
    def test_new_page_is_dirty_and_buffered(self):
        pool = BufferPool()
        page = pool.new_page()
        assert page.dirty
        assert pool.get(page.page_id) is page
        assert pool.hits == 1

    def test_flush_all_writes_only_dirty(self):
        pool = BufferPool()
        first = pool.new_page()
        second = pool.new_page()
        first.records.append((0, ()))
        written = pool.flush_all()
        assert written == 2
        assert pool.flush_all() == 0  # now clean

    def test_lru_eviction_writes_back(self):
        pool = BufferPool(capacity=2)
        first = pool.new_page()
        first.records.append((0, ("v",)))
        pool.new_page()
        pool.new_page()  # evicts `first`, which is dirty -> written back
        assert pool.disk.stats.writes >= 1
        reread = pool.get(first.page_id)
        assert reread.records == [(0, ("v",))]

    def test_miss_counts(self):
        pool = BufferPool(capacity=1)
        a = pool.new_page()
        b = pool.new_page()  # evicts a
        pool.get(a.page_id)  # miss
        assert pool.misses == 1

    def test_drop_cache_forces_cold_reads(self):
        pool = BufferPool()
        page = pool.new_page()
        pool.drop_cache()
        before = pool.disk.stats.reads
        pool.get(page.page_id)
        assert pool.disk.stats.reads == before + 1

    def test_free_page(self):
        pool = BufferPool()
        page = pool.new_page()
        pool.free_page(page.page_id)
        with pytest.raises(StorageError):
            pool.get(page.page_id)

    def test_invalid_page_capacity(self):
        with pytest.raises(StorageError):
            BufferPool(page_capacity=0)

    def test_hit_ratio(self):
        pool = BufferPool()
        page = pool.new_page()
        pool.get(page.page_id)
        pool.get(page.page_id)
        assert pool.hit_ratio == 1.0

    def test_rejects_non_positive_capacity(self):
        # capacity <= 0 made _admit evict the page it had just admitted;
        # writes through the still-held reference were then lost.
        for capacity in (0, -1):
            with pytest.raises(StorageError):
                BufferPool(capacity=capacity)
        BufferPool(capacity=1)  # the smallest legal pool is fine

    def test_held_reference_write_back(self):
        # The store's access pattern: get a page, mutate it through the
        # held reference, mark dirty — the mutation must survive eviction
        # and be visible on disk and to later reads.
        pool = BufferPool(capacity=1)
        page = pool.new_page()
        page.records.append((0, ("held",)))
        page.mark_dirty()
        pool.new_page()  # evicts the held page, writing it back
        records, _ = pool.disk._pages[page.page_id]
        assert records == [(0, ("held",))]
        assert pool.get(page.page_id).records == [(0, ("held",))]
        # And flush_all on a clean pool has nothing left to lose.
        pool.flush_all()
        assert pool.get(page.page_id).records == [(0, ("held",))]


class TestTagStats:
    def test_per_tag_accounting(self):
        pool = BufferPool(capacity=1)
        tagged = pool.new_page(tag=("t", 0))
        other = pool.new_page(tag=("t", 1))  # evicts `tagged` (dirty)
        pool.get(tagged.page_id)  # miss -> read charged to ("t", 0)
        stats = pool.tag_stats(("t", 0))
        assert stats.allocations == 1
        assert stats.writes == 1
        assert stats.reads == 1
        assert pool.tag_stats(("t", 1)).allocations == 1
        assert pool.tag_stats(("missing", 9)).total == 0

    def test_tag_stats_survive_free(self):
        pool = BufferPool()
        page = pool.new_page(tag="gone")
        pool.free_page(page.page_id)
        assert pool.tag_stats("gone").allocations == 1
        assert pool.tag_stats("gone").frees == 1
