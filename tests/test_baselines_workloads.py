"""Tests for the baselines and workload generators."""

import pytest

from repro.baselines.naive_db import NaiveDbTable
from repro.baselines.naive_spreadsheet import NaiveSpreadsheet
from repro.engine.types import DBType
from repro.workloads.datasets import (
    generate_grades_data,
    generate_movie_data,
    load_grades_database,
    load_movie_database,
)
from repro.workloads.traces import (
    mixed_scroll_trace,
    random_edit_trace,
    random_jump_trace,
    sequential_scroll_trace,
)


class TestNaiveSpreadsheet:
    def test_set_get(self):
        sheet = NaiveSpreadsheet()
        sheet.set("A1", "5")
        assert sheet.get("A1") == 5

    def test_formula_evaluates(self):
        sheet = NaiveSpreadsheet()
        sheet.set("A1", 2)
        sheet.set("A2", "=A1*3")
        assert sheet.get("A2") == 6

    def test_every_edit_recalculates_everything(self):
        sheet = NaiveSpreadsheet()
        for row in range(1, 11):
            sheet.set(f"B{row}", f"=A{row}+1")
        evaluated_before = sheet.cells_evaluated
        sheet.set("A1", 5)  # one edit...
        # ...but all 10 formulas were re-evaluated (at least once each).
        assert sheet.cells_evaluated - evaluated_before >= 10

    def test_fixpoint_chain(self):
        sheet = NaiveSpreadsheet()
        sheet.set("A1", 1)
        sheet.set("A2", "=A1+1")
        sheet.set("A3", "=A2+1")
        assert sheet.get("A3") == 3

    def test_load_rows_materialises_everything(self):
        sheet = NaiveSpreadsheet()
        count = sheet.load_rows([(i, i * 2) for i in range(100)])
        assert count == 200
        assert sheet.n_cells == 200

    def test_window(self):
        sheet = NaiveSpreadsheet()
        sheet.load_rows([(i,) for i in range(50)])
        window = sheet.window(10, 3, 0, 1)
        assert window == [[10], [11], [12]]

    def test_error_renders_code(self):
        sheet = NaiveSpreadsheet()
        sheet.set("A1", "=1/0")
        assert sheet.get("A1") == "#DIV/0!"


class TestNaiveDbTable:
    def make(self, n=50):
        table = NaiveDbTable([("id", DBType.INTEGER), ("v", DBType.TEXT)])
        for i in range(n):
            table.append((i, f"v{i}"))
        return table

    def test_row_at_scans(self):
        table = self.make()
        assert table.row_at(10) == (10, "v10")
        assert table.rows_scanned >= 10

    def test_window(self):
        table = self.make()
        rows = table.window(20, 5)
        assert [r[0] for r in rows] == [20, 21, 22, 23, 24]
        assert table.rows_scanned >= 50  # full scan

    def test_insert_at_renumbers_tail(self):
        table = self.make(10)
        table.insert_at(5, (99, "mid"))
        assert table.rows_renumbered == 5
        assert table.row_at(5) == (99, "mid")
        assert table.row_at(6) == (5, "v5")
        assert table.n_rows == 11

    def test_delete_at_renumbers(self):
        table = self.make(10)
        table.delete_at(3)
        assert table.rows_renumbered == 6
        assert table.row_at(3) == (4, "v4")

    def test_scan_ordered(self):
        table = self.make(5)
        table.insert_at(0, (-1, "first"))
        assert [r[0] for r in table.scan_ordered()] == [-1, 0, 1, 2, 3, 4]

    def test_missing_position(self):
        table = self.make(3)
        with pytest.raises(IndexError):
            table.row_at(99)


class TestDatasets:
    def test_movie_data_deterministic(self):
        first = generate_movie_data(n_movies=20, n_actors=10, seed=5)
        second = generate_movie_data(n_movies=20, n_actors=10, seed=5)
        assert first.movies == second.movies
        assert first.actors == second.actors

    def test_movie_data_shape(self):
        data = generate_movie_data(n_movies=20, n_actors=10, links_per_movie=3)
        assert len(data.movies) == 20
        assert len(data.actors) == 10
        assert len(data.movies2actors) == 60
        assert all(1 <= a <= 10 for _, a in data.movies2actors)

    def test_load_movie_database(self):
        db = load_movie_database(generate_movie_data(10, 5, 2))
        assert db.execute("SELECT count(*) FROM movies").scalar() == 10
        joined = db.execute(
            "SELECT count(*) FROM movies m JOIN movies2actors ma "
            "ON m.movieid = ma.movieid"
        ).scalar()
        assert joined == 20

    def test_grades_shape(self):
        data = generate_grades_data(n_students=30)
        assert len(data.grades) == 30
        assert all(40 <= row[1] <= 100 for row in data.grades)
        assert all(row[6] in "ABCD" for row in data.grades)

    def test_load_grades_database(self):
        db = load_grades_database(generate_grades_data(25))
        assert db.execute("SELECT count(*) FROM demographics").scalar() == 25
        levels = db.execute("SELECT DISTINCT level FROM demographics").rows
        assert set(l for (l,) in levels) <= {"undergrad", "MS", "PhD"}


class TestTraces:
    def test_sequential_visits_final_partial_window(self):
        # 100 rows / window 40: the tail window starts at 60; the old
        # wrap-to-0 arithmetic skipped rows 80..99 entirely.
        trace = sequential_scroll_trace(n_rows=100, window=40, steps=5)
        assert trace == [0, 40, 60, 0, 40]

    def test_sequential_covers_every_row(self):
        for n_rows, window in [(100, 40), (95, 30), (64, 64), (50, 7), (10, 3)]:
            steps = 3 * (n_rows // window + 2)
            trace = sequential_scroll_trace(n_rows, window, steps)
            covered = set()
            for position in trace:
                covered.update(range(position, min(position + window, n_rows)))
            assert covered == set(range(n_rows)), (n_rows, window)

    def test_sequential_exact_multiple_unchanged(self):
        assert sequential_scroll_trace(n_rows=80, window=40, steps=4) == [0, 40, 0, 40]

    def test_random_jump_bounds(self):
        trace = random_jump_trace(n_rows=1000, window=40, steps=50)
        assert len(trace) == 50
        assert all(0 <= p < 960 for p in trace)

    def test_mixed_deterministic(self):
        first = mixed_scroll_trace(500, 40, 20, seed=9)
        second = mixed_scroll_trace(500, 40, 20, seed=9)
        assert first == second

    def test_mixed_can_reach_the_tail_window(self):
        # Sequential panning inside the mixed trace must visit the final
        # partial window (the old `% (n_rows - window)` arithmetic could
        # never produce a start > n_rows - 2*window + 1).
        trace = mixed_scroll_trace(100, 40, 12, jump_probability=0.0, seed=1)
        assert 60 in trace
        covered = set()
        for position in trace:
            covered.update(range(position, min(position + 40, 100)))
        assert covered == set(range(100))
        # Jumps draw from every valid window start, inclusive of the last.
        jumpy = mixed_scroll_trace(60, 20, 400, jump_probability=1.0, seed=3)
        assert all(0 <= p <= 40 for p in jumpy)
        assert 40 in jumpy

    def test_edit_trace(self):
        trace = random_edit_trace(10, 3, 25)
        assert len(trace) == 25
        assert all(0 <= r < 10 and 0 <= c < 3 for r, c, _ in trace)
