"""Unit tests for the Workbook facade (editing, routing, sheets)."""

import pytest

from repro import Workbook
from repro.errors import RegionError, SheetError


class TestSheets:
    def test_default_sheet(self, wb):
        assert wb.sheet_names() == ["Sheet1"]

    def test_add_and_get(self, wb):
        wb.add_sheet("Data")
        assert wb["Data"].name == "Data"

    def test_duplicate_rejected(self, wb):
        with pytest.raises(SheetError):
            wb.add_sheet("Sheet1")

    def test_missing_sheet(self, wb):
        with pytest.raises(SheetError):
            wb.sheet("Nope")

    def test_no_default_sheet(self):
        wb = Workbook(default_sheet="")
        assert wb.sheet_names() == []


class TestEditing:
    def test_plain_value(self, wb):
        wb.set("Sheet1", "A1", "42")
        assert wb.get("Sheet1", "A1") == 42

    def test_formula(self, wb):
        wb.set("Sheet1", "A1", 6)
        wb.set("Sheet1", "A2", "=A1*7")
        assert wb.get("Sheet1", "A2") == 42

    def test_get_range(self, wb):
        wb.sheet("Sheet1").set_grid("A1", [[1, 2], [3, 4]])
        assert wb.get_range("Sheet1", "A1:B2") == [[1, 2], [3, 4]]

    def test_get_range_evaluates_formulas(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "B1", "=A1+1")
        assert wb.get_range("Sheet1", "A1:B1") == [[1, 2]]

    def test_display(self, wb):
        wb.set("Sheet1", "A1", "=4/2")
        assert wb.display("Sheet1", "A1") == "2"

    def test_cell_address_objects_accepted(self, wb):
        from repro.core.address import CellAddress

        wb.set("Sheet1", CellAddress(0, 0), 9)
        assert wb.get("Sheet1", CellAddress(0, 0)) == 9


class TestRegionsRouting:
    @pytest.fixture
    def with_table(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        wb.execute("INSERT INTO t VALUES (1,'a'),(2,'b')")
        wb.dbtable("Sheet1", "A1", "t")
        return wb

    def test_dbsql_cells_read_only(self, wb):
        wb.execute("CREATE TABLE t (id INT)")
        wb.execute("INSERT INTO t VALUES (1),(2)")
        wb.dbsql("Sheet1", "A1", "SELECT id FROM t")
        with pytest.raises(RegionError):
            wb.set("Sheet1", "A2", 99)

    def test_dbtable_edit_routes_to_db(self, with_table):
        with_table.set("Sheet1", "B2", "EDITED")
        assert with_table.execute("SELECT v FROM t WHERE id=1").scalar() == "EDITED"

    def test_dbtable_header_read_only(self, with_table):
        with pytest.raises(RegionError):
            with_table.set("Sheet1", "A1x" if False else "B1", "nope")

    def test_append_below_region_inserts_row(self, with_table):
        # Region spans A1:B3 (header + 2 rows); writing at row 4 appends.
        with_table.set("Sheet1", "A4", 3)
        assert with_table.execute("SELECT count(*) FROM t").scalar() == 3

    def test_replacing_anchor_tears_region_down(self, with_table):
        with_table.set("Sheet1", "A1", "plain")
        assert len(with_table.regions) == 0
        assert with_table.get("Sheet1", "A1") == "plain"
        # Old spill cells were cleared.
        assert with_table.get("Sheet1", "B2") is None

    def test_remove_region(self, with_table):
        region = with_table.regions.all()[0]
        with_table.remove_region(region.context.region_id)
        assert with_table.get("Sheet1", "A1") is None

    def test_overlapping_regions_rejected(self, with_table):
        with pytest.raises(RegionError):
            with_table.dbtable("Sheet1", "B2", "t")


class TestStatsAndBatching:
    def test_stats_summary_keys(self, wb):
        summary = wb.stats_summary()
        assert {"sheets", "regions", "formulas", "compute", "sync", "io"} <= set(summary)

    def test_batch_flushes_once(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        wb.dbtable("Sheet1", "A1", "t")
        region = wb.regions.all()[0]
        refreshes_before = region.refresh_count
        with wb.batch():
            for i in range(10):
                wb.database.execute(f"INSERT INTO t VALUES ({i})")
        assert region.refresh_count == refreshes_before + 1

    def test_execute_refreshes_dependents(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        wb.execute("INSERT INTO t VALUES (1)")
        wb.dbsql("Sheet1", "D1", "SELECT count(*) FROM t")
        assert wb.get("Sheet1", "D1") == 1
        wb.execute("INSERT INTO t VALUES (2)")
        assert wb.get("Sheet1", "D1") == 2
