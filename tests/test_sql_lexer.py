"""Unit tests for the SQL tokenizer."""

import pytest

from repro.engine.sql_lexer import Token, tokenize
from repro.errors import SqlSyntaxError


def kinds(sql):
    return [(t.kind, t.text) for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "select"),
            ("KEYWORD", "SeLeCt"),
        ]

    def test_identifiers(self):
        assert kinds("movies m1 _x")[0] == ("IDENT", "movies")
        assert kinds("movies m1 _x")[2] == ("IDENT", "_x")

    def test_numbers(self):
        assert kinds("42 3.14 .5 1e3 2E-2") == [
            ("NUMBER", "42"),
            ("NUMBER", "3.14"),
            ("NUMBER", ".5"),
            ("NUMBER", "1e3"),
            ("NUMBER", "2E-2"),
        ]

    def test_malformed_number(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("1.2.3")

    def test_strings_with_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("'oops")
        assert info.value.position == 0

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].text == "weird name"

    def test_operators(self):
        assert [t for _, t in kinds("a <= b <> c || d != e")] == [
            "a", "<=", "b", "<>", "c", "||", "d", "!=", "e"
        ]

    def test_punctuation(self):
        assert [t for _, t in kinds("(a, b.c);")] == ["(", "a", ",", "b", ".", "c", ")", ";"]

    def test_parameter_marker(self):
        assert kinds("?") == [("OP", "?")]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("SELECT -- hidden\n 1") == [("KEYWORD", "SELECT"), ("NUMBER", "1")]

    def test_block_comment(self):
        assert kinds("SELECT /* x */ 1") == [("KEYWORD", "SELECT"), ("NUMBER", "1")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT /* oops")


class TestTokenHelpers:
    def test_matches(self):
        token = Token("KEYWORD", "Select", 0)
        assert token.matches("KEYWORD", "select")
        assert token.matches("KEYWORD")
        assert not token.matches("IDENT")
        ident = Token("IDENT", "Movies", 0)
        assert ident.matches("IDENT", "Movies")
        assert not ident.matches("IDENT", "movies")  # idents keep case

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
