"""The durable multi-session service: pipeline, recovery, concurrency."""

from __future__ import annotations

import os
import shutil

import pytest

from repro.core.address import CellAddress
from repro.errors import (
    CatalogError,
    ServerError,
    SheetError,
    StaleWriteError,
)
from repro.server import (
    SnapshotStore,
    WorkbookService,
    read_wal,
    recover_state,
)
from repro.server.service import WAL_FILENAME


def make_service(tmp_path, name="svc", **kwargs) -> WorkbookService:
    kwargs.setdefault("fsync", False)
    return WorkbookService(str(tmp_path / name), **kwargs)


class TestPipeline:
    def test_edit_compute_and_durability(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.set_cell(session.session_id, "Sheet1", "A1", 21)
        service.set_cell(session.session_id, "Sheet1", "A2", "=A1*2")
        assert service.workbook.get("Sheet1", "A2") == 42
        service.close()

        reopened = make_service(tmp_path)
        assert reopened.recovered_ops == 2
        assert reopened.workbook.get("Sheet1", "A2") == 42
        reopened.close()

    def test_sql_and_region_ops_replay(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE m (id INT PRIMARY KEY, t TEXT)")
        service.execute(session.session_id, "INSERT INTO m VALUES (1,'x'),(2,'y')")
        service.apply(
            session.session_id,
            {"type": "dbtable", "sheet": "Sheet1", "anchor": "C1", "table": "m"},
        )
        service.apply(session.session_id, {"type": "add_sheet", "name": "Other"})
        service.apply(
            session.session_id,
            {"type": "insert_rows", "sheet": "Other", "at": 0, "count": 2},
        )
        service.close()

        reopened = make_service(tmp_path)
        workbook = reopened.workbook
        assert workbook.database.table("m").n_rows == 2
        assert workbook.get("Sheet1", "C1") == "id"
        assert workbook.get("Sheet1", "D2") == "x"
        assert "Other" in workbook.sheet_names()
        assert len(workbook.regions.all()) == 1
        reopened.close()

    def test_validation_rejects_before_wal(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        with pytest.raises(ServerError):
            service.apply(session.session_id, {"type": "no_such_op"})
        with pytest.raises(SheetError):
            service.set_cell(session.session_id, "Nope", "A1", 1)
        assert service.wal.last_lsn == 0  # nothing reached the log
        service.close()

    def test_failed_apply_compensates_wal(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.set_cell(session.session_id, "Sheet1", "A1", 1)
        before = service.wal.last_lsn
        # parses fine (passes validation) but fails at apply: unknown table
        with pytest.raises(CatalogError):
            service.execute(session.session_id, "INSERT INTO ghost VALUES (1)")
        assert service.wal.last_lsn == before
        assert [r.op["type"] for r in service.wal.records()] == ["set_cell"]
        service.close()

    def test_select_is_not_logged(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY)")
        service.execute(session.session_id, "INSERT INTO t VALUES (1)")
        lsn = service.wal.last_lsn
        for _ in range(5):
            result = service.execute(session.session_id, "SELECT * FROM t")
        assert result.result.rows == [(1,)]
        assert service.wal.last_lsn == lsn  # reads add nothing to replay
        service.close()

    def test_version_monotonic_and_result_passthrough(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        v0 = service.version
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY)")
        service.execute(session.session_id, "INSERT INTO t VALUES (1),(2),(3)")
        result = service.execute(session.session_id, "SELECT COUNT(*) AS n FROM t")
        assert result.result.scalar() == 3
        assert service.version == v0 + 3
        service.close()


class TestSessionsAndBroadcast:
    def test_stale_write_rejected_with_current_version(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=10, n_cols=10)
        bob = service.connect("bob", n_rows=10, n_cols=10)
        service.set_cell(alice.session_id, "Sheet1", "A1", "first")
        with pytest.raises(StaleWriteError) as excinfo:
            # bob writes based on the version he saw at connect time
            service.set_cell(bob.session_id, "Sheet1", "A1", "second")
        assert excinfo.value.current_version == service.version
        assert service.workbook.get("Sheet1", "A1") == "first"  # not clobbered
        assert bob.writes_rejected == 1
        # bob catches up by polling, then the retry wins
        bob.poll()
        service.set_cell(bob.session_id, "Sheet1", "A1", "second")
        assert service.workbook.get("Sheet1", "A1") == "second"
        service.close()

    def test_delta_delivered_only_to_covering_viewports(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=10, n_cols=10)
        bob = service.connect("bob", n_rows=10, n_cols=10)        # sees A1
        carol = service.connect("carol", top=500, n_rows=10, n_cols=10)
        service.set_cell(alice.session_id, "Sheet1", "A1", 7)
        assert bob.pending_deltas == 1
        assert carol.pending_deltas == 0  # panned away: suppressed
        assert alice.pending_deltas == 0  # origin already has the result
        [delta] = bob.poll()
        assert (delta.kind, delta.sheet, delta.row, delta.col, delta.value) == (
            "cell", "Sheet1", 0, 0, 7
        )
        assert bob.last_seen_version == service.version
        assert service.broadcast.suppressed > 0
        service.close()

    def test_region_refresh_delta_scoped_by_viewport(self, tmp_path):
        service = make_service(tmp_path)
        writer = service.connect("writer", top=500, n_rows=5, n_cols=5)
        viewer = service.connect("viewer", n_rows=10, n_cols=10)
        far = service.connect("far", top=500, n_rows=5, n_cols=5)
        service.execute(writer.session_id, "CREATE TABLE m (id INT PRIMARY KEY, t TEXT)")
        service.execute(writer.session_id, "INSERT INTO m VALUES (1,'x')")
        service.apply(
            writer.session_id,
            {"type": "dbtable", "sheet": "Sheet1", "anchor": "A1", "table": "m"},
        )
        viewer.poll()
        far.poll()
        # a back-end write refreshes the region; only the viewer covers it
        service.execute(writer.session_id, "INSERT INTO m VALUES (2,'y')")
        kinds = [delta.kind for delta in viewer.poll()]
        assert "region" in kinds
        assert far.pending_deltas == 0
        assert service.workbook.get("Sheet1", "B3") == "y"
        service.close()

    def test_structural_edit_broadcasts_compact_shift_delta(self, tmp_path):
        """A structural edit reaches other sessions as ONE shift delta
        describing the half-space translation — not a per-cell flood for
        every relocated position."""
        service = make_service(tmp_path)
        editor = service.connect("editor", n_rows=10, n_cols=10)
        viewer = service.connect("viewer", n_rows=10, n_cols=10)
        above = service.connect("above", n_rows=3, n_cols=10)  # rows 0..2
        for n in range(1, 9):
            service.set_cell(editor.session_id, "Sheet1", f"A{n}", n)
        viewer.poll()
        above.poll()
        result = service.apply(
            editor.session_id,
            {"type": "insert_rows", "sheet": "Sheet1", "at": 5, "count": 2},
        )
        shifts = [delta for delta in result.deltas if delta.kind == "shift"]
        assert [(d.axis, d.at, d.count) for d in shifts] == [("row", 5, 2)]
        # The viewer's pane reaches the shifted half-space: one shift delta.
        viewer_kinds = [delta.kind for delta in viewer.poll()]
        assert viewer_kinds.count("shift") == 1
        # 8 values moved down but zero per-cell deltas were manufactured.
        assert "cell" not in viewer_kinds
        # A pane entirely above the edit never sees it.
        assert all(delta.kind != "shift" for delta in above.poll())
        # Deletes carry a negative count.
        result = service.apply(
            editor.session_id,
            {"type": "delete_rows", "sheet": "Sheet1", "at": 5, "count": 2},
        )
        [shift] = [delta for delta in result.deltas if delta.kind == "shift"]
        assert (shift.axis, shift.at, shift.count) == ("row", 5, -2)
        service.close()

    def test_poll_unblocks_off_viewport_conflict(self, tmp_path):
        """A stale rejection caused by an *off-screen* change can never be
        seen in the inbox; service.poll must still advance the horizon so
        the retry is not rejected forever."""
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=10, n_cols=10)
        bob = service.connect("bob", n_rows=10, n_cols=10)
        # alice edits far outside both viewports
        service.apply(
            alice.session_id,
            {"type": "set_cell", "sheet": "Sheet1", "ref": "A1000", "raw": 1},
        )
        with pytest.raises(StaleWriteError):
            service.set_cell(bob.session_id, "Sheet1", "A1000", 2)
        assert service.poll(bob.session_id) == []  # nothing visible to bob
        service.set_cell(bob.session_id, "Sheet1", "A1000", 2)  # now wins
        assert service.workbook.get("Sheet1", "A1000") == 2
        service.close()

    def test_region_edit_broadcasts_and_stamps_versions(self, tmp_path):
        """Regression: edits routed through DBTableRegion.apply_edit
        update the region's cells in place (its own sync refresh is
        suppressed), so they used to produce no delta and no version
        stamp — letting a second session silently clobber the edit."""
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=10, n_cols=10)
        bob = service.connect("bob", n_rows=10, n_cols=10)
        service.execute(alice.session_id, "CREATE TABLE m (id INT PRIMARY KEY, t TEXT)")
        service.execute(alice.session_id, "INSERT INTO m VALUES (1,'x')")
        service.apply(
            alice.session_id,
            {"type": "dbtable", "sheet": "Sheet1", "anchor": "A1", "table": "m"},
        )
        service.poll(bob.session_id)
        base = bob.last_seen_version
        # alice edits the region's B2 cell (column t of row 1)
        result = service.set_cell(alice.session_id, "Sheet1", "B2", "ALICE")
        assert any(d.kind == "region" for d in result.deltas)
        assert bob.pending_deltas >= 1  # bob sees the change
        with pytest.raises(StaleWriteError):
            service.set_cell(
                bob.session_id, "Sheet1", "B2", "BOB", base_version=base
            )
        assert service.workbook.get("Sheet1", "B2") == "ALICE"
        service.close()

    def test_offscreen_formula_install_stamps_version(self, tmp_path):
        """Regression: installing a formula in a cell no viewport covers
        skipped the cell-written notification, so a stale overwrite of
        the formula was silently accepted."""
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=10, n_cols=10)
        bob = service.connect("bob", n_rows=10, n_cols=10)
        base = bob.last_seen_version
        service.apply(
            alice.session_id,
            {"type": "set_cell", "sheet": "Sheet1", "ref": "Z100", "raw": "=1+1"},
        )
        with pytest.raises(StaleWriteError):
            service.set_cell(bob.session_id, "Sheet1", "Z100", "BOB", base_version=base)
        assert service.workbook.get("Sheet1", "Z100") == 2
        service.close()

    def test_second_writer_on_same_directory_is_locked_out(self, tmp_path):
        from repro.errors import WALError

        service = make_service(tmp_path)
        with pytest.raises(WALError):
            make_service(tmp_path)  # same directory, first still open
        service.close()
        reopened = make_service(tmp_path)  # lock released on close
        reopened.close()

    def test_concurrent_edits_to_different_cells_both_win(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice")
        bob = service.connect("bob")
        service.set_cell(alice.session_id, "Sheet1", "A1", 1)
        # bob has not polled, but B5 was never written: no conflict
        service.set_cell(bob.session_id, "Sheet1", "B5", 2)
        assert service.workbook.get("Sheet1", "A1") == 1
        assert service.workbook.get("Sheet1", "B5") == 2
        service.close()

    def test_step_honours_disabled_maintenance(self, tmp_path):
        """Regression: the serve loop's implicit maintenance beat must
        respect auto_layout_interval=0 (layouts pinned) — before the fix,
        step() ticked the advisor anyway and could migrate a table whose
        operator had maintenance configured off."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(
            session.session_id, "CREATE TABLE t (a INT, b INT, c INT, d INT)"
        )
        for start in range(0, 400, 100):
            values = ",".join(f"({j},{j},{j},{j})" for j in range(start, start + 100))
            service.execute(session.session_id, f"INSERT INTO t VALUES {values}")
        service.execute(session.session_id, "ALTER TABLE t SET LAYOUT AUTO")
        table = service.workbook.database.table("t")
        table.layout_advisor.min_ops = 1
        table.store.access_stats.reset()
        for _ in range(40):
            list(table.store.scan_column("a"))
        service._maintenance_interval = 0  # operator: maintenance off
        for _ in range(5):
            service.step()
        assert not table.migration_active
        assert table.schema.groups == [["a", "b", "c", "d"]]
        # An explicit tick is still an operator override.
        reports = service.maintenance_tick()
        assert reports and reports[0]["action"] == "migration_started"
        service.close()

    def test_visible_first_recalc_and_background_step(self, tmp_path):
        service = make_service(tmp_path)
        near = service.connect("near", n_rows=10, n_cols=10)
        service.set_cell(near.session_id, "Sheet1", "A1", 10)
        # visible dependent computed inside the apply; far one deferred
        service.set_cell(near.session_id, "Sheet1", "B1", "=A1+1")
        service.apply(
            near.session_id,
            {"type": "set_cell", "sheet": "Sheet1", "ref": "A500", "raw": "=A1*2"},
        )
        assert service.workbook.sheet("Sheet1").value_at(0, 1) == 11
        assert service.workbook.compute.pending > 0  # A500 not yet computed
        far = service.connect("far", top=499, n_rows=5, n_cols=5)
        computed = service.step()
        assert computed >= 1
        assert service.workbook.sheet("Sheet1").value_at(499, 0) == 20
        assert far.pending_deltas >= 1  # background result broadcast to far
        service.close()

    def test_disconnect_stops_delivery(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice")
        bob = service.connect("bob")
        service.disconnect(bob.session_id)
        service.set_cell(alice.session_id, "Sheet1", "A1", 1)
        assert bob.pending_deltas == 0
        assert len(service.sessions) == 1
        service.close()


class TestShiftVersionRemap:
    """Satellite regression: `_cell_versions` is keyed by logical
    coordinates, so structural shifts must remap the stamps — otherwise
    the optimistic check compares against the wrong cell's history."""

    def test_stale_write_cannot_clobber_moved_cell(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=20, n_cols=10)
        bob = service.connect("bob", n_rows=20, n_cols=10)
        base = bob.last_seen_version  # bob's view predates everything below
        service.set_cell(alice.session_id, "Sheet1", "A5", "precious")
        service.apply(
            alice.session_id,
            {"type": "insert_rows", "sheet": "Sheet1", "at": 0, "count": 1},
        )
        assert service.workbook.get("Sheet1", "A6") == "precious"
        # bob writes to the cell's NEW home with a stale base: before the
        # fix the version stamp stayed at A5, so this silently clobbered
        # the moved-but-modified cell.
        with pytest.raises(StaleWriteError):
            service.set_cell(
                bob.session_id, "Sheet1", "A6", "clobber", base_version=base
            )
        assert service.workbook.get("Sheet1", "A6") == "precious"
        service.close()

    def test_slid_in_coordinates_not_spuriously_rejected(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=20, n_cols=10)
        bob = service.connect("bob", n_rows=20, n_cols=10)
        base = bob.last_seen_version
        service.set_cell(alice.session_id, "Sheet1", "A5", "moved-away")
        service.apply(
            alice.session_id,
            {"type": "insert_rows", "sheet": "Sheet1", "at": 0, "count": 1},
        )
        # A5 is now a fresh, never-written slot; before the fix the moved
        # cell's ghost stamp rejected this write forever.
        result = service.set_cell(
            bob.session_id, "Sheet1", "A5", "fresh", base_version=base
        )
        assert result.version == service.version
        assert service.workbook.get("Sheet1", "A5") == "fresh"
        assert service.workbook.get("Sheet1", "A6") == "moved-away"
        service.close()

    def test_deleted_cell_stamp_is_dropped(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=20, n_cols=10)
        bob = service.connect("bob", n_rows=20, n_cols=10)
        base = bob.last_seen_version
        service.set_cell(alice.session_id, "Sheet1", "A3", "doomed")
        service.set_cell(alice.session_id, "Sheet1", "A4", "survivor")
        service.apply(
            alice.session_id,
            {"type": "delete_rows", "sheet": "Sheet1", "at": 2, "count": 1},
        )
        assert service.workbook.get("Sheet1", "A3") == "survivor"
        # The deleted cell's stamp must not linger at A3 — but the
        # survivor's stamp moved there, so a stale write is still (and
        # correctly) rejected against the *surviving* cell's version.
        with pytest.raises(StaleWriteError):
            service.set_cell(
                bob.session_id, "Sheet1", "A3", "late", base_version=base
            )
        # One row below, nothing was ever written: accepted.
        service.set_cell(bob.session_id, "Sheet1", "A4", "ok", base_version=base)
        assert service.workbook.get("Sheet1", "A4") == "ok"
        service.close()

    def test_column_shift_remaps_versions(self, tmp_path):
        service = make_service(tmp_path)
        alice = service.connect("alice", n_rows=20, n_cols=10)
        bob = service.connect("bob", n_rows=20, n_cols=10)
        base = bob.last_seen_version
        service.set_cell(alice.session_id, "Sheet1", "B2", "precious")
        service.apply(
            alice.session_id,
            {"type": "insert_cols", "sheet": "Sheet1", "at": 0, "count": 2},
        )
        assert service.workbook.get("Sheet1", "D2") == "precious"
        with pytest.raises(StaleWriteError):
            service.set_cell(
                bob.session_id, "Sheet1", "D2", "clobber", base_version=base
            )
        service.set_cell(bob.session_id, "Sheet1", "B2", "fresh", base_version=base)
        assert service.workbook.get("Sheet1", "D2") == "precious"
        assert service.workbook.get("Sheet1", "B2") == "fresh"
        service.close()

    def test_remap_survives_recovery_semantics(self, tmp_path):
        """The remap is in-memory state; after recovery the stamps are
        empty, which is safe (no false accepts relative to the recovered
        version horizon) — just pin that reopening works after shifts."""
        service = make_service(tmp_path)
        alice = service.connect("alice")
        service.set_cell(alice.session_id, "Sheet1", "A5", 1)
        service.apply(
            alice.session_id,
            {"type": "insert_rows", "sheet": "Sheet1", "at": 0, "count": 1},
        )
        service.close()
        reopened = make_service(tmp_path)
        assert reopened.workbook.get("Sheet1", "A6") == 1
        reopened.close()


class TestTransactionsInWal:
    def test_rollback_discards_mixed_dml_ddl_records(self, tmp_path):
        """Satellite regression: rolling back a mixed DML+DDL batch must
        discard its WAL records (and the begin marker) entirely."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        service.execute(session.session_id, "INSERT INTO t VALUES (1,'a')")
        lsn_before = service.wal.last_lsn
        service.execute(session.session_id, "BEGIN")
        service.execute(session.session_id, "INSERT INTO t VALUES (2,'b')")
        service.execute(session.session_id, "ALTER TABLE t ADD COLUMN w INT")
        service.execute(session.session_id, "UPDATE t SET v = 'z' WHERE k = 1")
        service.execute(session.session_id, "ROLLBACK")
        # in-memory state rolled back...
        table = service.workbook.database.table("t")
        assert table.n_rows == 1
        assert table.column_names == ["k", "v"]
        # ...and the log holds no trace of the transaction
        assert service.wal.last_lsn == lsn_before
        kinds = [r.op.get("type") for r in service.wal.records()]
        assert "txn_begin" not in kinds
        service.close()

        reopened = make_service(tmp_path)
        table = reopened.workbook.database.table("t")
        assert table.n_rows == 1
        assert table.column_names == ["k", "v"]
        assert [row for _, _, row in table.scan()] == [(1, "a")]
        reopened.close()

    def test_commit_makes_batch_durable(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        service.execute(session.session_id, "BEGIN")
        service.execute(session.session_id, "INSERT INTO t VALUES (1,'a')")
        service.execute(session.session_id, "ALTER TABLE t ADD COLUMN w INT")
        service.execute(session.session_id, "COMMIT")
        kinds = [r.op.get("type") for r in service.wal.records()]
        assert kinds.count("txn_begin") == 1 and kinds.count("txn_commit") == 1
        service.close()

        reopened = make_service(tmp_path)
        table = reopened.workbook.database.table("t")
        assert table.column_names == ["k", "v", "w"]
        assert table.n_rows == 1
        reopened.close()

    def test_sheet_edits_refused_inside_transaction(self, tmp_path):
        """The engine's undo log only rolls back database state, so a
        sheet edit inside a transaction would survive the rollback in
        memory while being truncated from the WAL — refuse it."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "BEGIN")
        with pytest.raises(ServerError):
            service.set_cell(session.session_id, "Sheet1", "A1", 1)
        with pytest.raises(ServerError):
            service.apply(session.session_id, {"type": "add_sheet", "name": "X"})
        service.execute(session.session_id, "ROLLBACK")
        # outside a transaction the same ops are fine
        service.set_cell(session.session_id, "Sheet1", "A1", 1)
        assert service.workbook.get("Sheet1", "A1") == 1
        service.close()

    def test_direct_database_rollback_also_discards(self, tmp_path):
        """The hook lives on the TransactionManager, so a rollback driven
        through the workbook (not a service op) is still discarded."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY)")
        lsn_before = service.wal.last_lsn
        service.execute(session.session_id, "BEGIN")
        service.execute(session.session_id, "INSERT INTO t VALUES (1)")
        service.workbook.execute("ROLLBACK")  # bypasses service.apply
        assert service.wal.last_lsn == lsn_before
        service.close()


class TestSnapshotCompaction:
    def test_auto_compaction_and_suffix_replay(self, tmp_path):
        service = make_service(tmp_path, compact_every=5)
        session = service.connect("alice")
        for n in range(1, 8):  # crosses the compaction threshold at 5
            service.set_cell(session.session_id, "Sheet1", f"A{n}", n)
        assert service.snapshots.snapshots_written >= 1
        snapshot_lsn = service._snapshot_lsn
        assert snapshot_lsn >= 5
        service.close()

        recovery = recover_state(str(tmp_path / "svc"))
        assert recovery.snapshot_used
        # only the suffix past the snapshot was replayed
        assert recovery.ops_replayed == recovery.last_lsn - recovery.snapshot_lsn
        for n in range(1, 8):
            assert recovery.workbook.get("Sheet1", f"A{n}") == n

    def test_compact_refused_inside_transaction(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY)")
        service.execute(session.session_id, "BEGIN")
        assert service.compact() is None
        with pytest.raises(ServerError):
            service.compact(force=True)
        service.execute(session.session_id, "COMMIT")
        assert service.compact() is not None
        service.close()

    def test_snapshot_atomic_replace(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.set_cell(session.session_id, "Sheet1", "A1", 1)
        first = service.compact()
        service.set_cell(session.session_id, "Sheet1", "A2", 2)
        second = service.compact()
        assert first == second  # same path, replaced atomically
        assert not os.path.exists(first + ".tmp")
        service.close()


class TestCrashRecoveryInvariant:
    """Acceptance: for ANY prefix truncation of the WAL, recovery yields
    exactly the committed prefix — plain edits up to the cut, and the
    transactional batch all-or-nothing on its commit marker."""

    def build_workload(self, tmp_path):
        directory = str(tmp_path / "svc")
        service = WorkbookService(directory, fsync=False)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        for n in range(1, 4):
            service.set_cell(session.session_id, "Sheet1", f"A{n}", n)
        service.execute(session.session_id, "BEGIN")
        service.execute(session.session_id, "INSERT INTO t VALUES (1,'a')")
        service.execute(session.session_id, "ALTER TABLE t ADD COLUMN w INT")
        service.execute(session.session_id, "COMMIT")
        service.close()
        wal_file = os.path.join(directory, WAL_FILENAME)
        with open(wal_file, "rb") as handle:
            data = handle.read()
        records, intact_end, size = read_wal(wal_file)
        assert intact_end == size
        return directory, data, records

    def recover_truncated(self, tmp_path, data, cut, case_dir):
        directory = str(tmp_path / case_dir)
        os.makedirs(directory)
        with open(os.path.join(directory, WAL_FILENAME), "wb") as handle:
            handle.write(data[:cut])
        return recover_state(directory)

    def test_every_byte_boundary_of_the_tail(self, tmp_path):
        directory, data, records = self.build_workload(tmp_path)
        by_type = {}
        for record in records:
            by_type.setdefault(record.op["type"], []).append(record)
        begin_record = by_type["txn_begin"][0]
        commit_record = by_type["txn_commit"][0]
        set_cell_records = by_type["set_cell"]

        # every byte boundary from the start of the transaction bracket to
        # EOF (covers every boundary of the final record), plus every
        # record boundary before it
        cuts = sorted(
            {record.end_offset for record in records if record.end_offset <= begin_record.offset}
            | set(range(begin_record.offset, len(data) + 1))
        )
        for index, cut in enumerate(cuts):
            recovery = self.recover_truncated(tmp_path, data, cut, f"case{index}")
            workbook = recovery.workbook
            # plain cells: applied iff their record is fully on disk
            for record in set_cell_records:
                n = int(record.op["raw"])
                expected = n if record.end_offset <= cut else None
                assert workbook.get("Sheet1", f"A{n}") == expected, f"cut={cut}"
            # the batch: all-or-nothing on the commit marker
            committed = commit_record.end_offset <= cut
            if workbook.database.has_table("t"):
                table = workbook.database.table("t")
                if committed:
                    assert table.n_rows == 1, f"cut={cut}"
                    assert table.column_names == ["k", "v", "w"], f"cut={cut}"
                else:
                    assert table.n_rows == 0, f"cut={cut}"
                    assert table.column_names == ["k", "v"], f"cut={cut}"
            else:
                assert not committed

    def test_truncated_tail_repaired_and_service_continues(self, tmp_path):
        directory, data, records = self.build_workload(tmp_path)
        # crash mid-way through the final record
        with open(os.path.join(directory, WAL_FILENAME), "wb") as handle:
            handle.write(data[: len(data) - 7])
        service = WorkbookService(directory, fsync=False)
        table = service.workbook.database.table("t")
        assert table.n_rows == 0  # batch lost its commit marker
        session = service.connect("alice")
        service.set_cell(session.session_id, "Sheet1", "B1", "after-crash")
        service.close()
        reopened = WorkbookService(directory, fsync=False)
        assert reopened.workbook.get("Sheet1", "B1") == "after-crash"
        reopened.close()
