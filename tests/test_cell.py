"""Unit tests for cells and dynamic typing (repro.core.cell)."""

import datetime

import pytest

from repro.core.cell import Cell, CellKind, coerce_scalar, infer_cell_kind


class TestCoerceScalar:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("123", 123),
            ("-4", -4),
            ("3.5", 3.5),
            ("+2", 2),
            ("1e3", 1000.0),
            (".5", 0.5),
            ("TRUE", True),
            ("false", False),
            ("2020-05-17", datetime.date(2020, 5, 17)),
            ("hello", "hello"),
            ("", None),
            ("  ", None),
            ("12abc", "12abc"),
            (7, 7),
            (None, None),
        ],
    )
    def test_coercion(self, raw, expected):
        assert coerce_scalar(raw) == expected

    def test_invalid_date_stays_text(self):
        assert coerce_scalar("2020-13-45") == "2020-13-45"

    def test_integer_string_stays_int(self):
        assert isinstance(coerce_scalar("42"), int)

    def test_decimal_string_becomes_float(self):
        assert isinstance(coerce_scalar("42.0"), float)


class TestInferCellKind:
    @pytest.mark.parametrize(
        "value,kind",
        [
            (None, CellKind.EMPTY),
            ("", CellKind.EMPTY),
            (True, CellKind.BOOLEAN),
            (0, CellKind.NUMBER),
            (3.14, CellKind.NUMBER),
            ("txt", CellKind.TEXT),
            (datetime.date(2020, 1, 1), CellKind.DATE),
            ("#REF!", CellKind.ERROR),
            (float("nan"), CellKind.ERROR),
        ],
    )
    def test_kinds(self, value, kind):
        assert infer_cell_kind(value) == kind


class TestCell:
    def test_default_empty(self):
        cell = Cell()
        assert cell.is_empty
        assert not cell.is_formula
        assert cell.display() == ""

    def test_set_value_updates_kind(self):
        cell = Cell()
        cell.set_value(5)
        assert cell.kind is CellKind.NUMBER
        cell.set_value("x")
        assert cell.kind is CellKind.TEXT

    def test_set_input_plain(self):
        cell = Cell()
        cell.set_input("99")
        assert cell.value == 99
        assert not cell.is_formula

    def test_set_input_formula(self):
        cell = Cell()
        cell.set_input("=A1+1")
        assert cell.is_formula
        assert cell.formula == "A1+1"

    def test_formula_replaced_by_value(self):
        cell = Cell()
        cell.set_input("=A1")
        cell.set_input("5")
        assert not cell.is_formula
        assert cell.value == 5

    def test_set_error(self):
        cell = Cell()
        cell.set_error("#DIV/0!")
        assert cell.kind is CellKind.ERROR
        assert cell.value == "#DIV/0!"

    def test_set_error_unknown_code_normalised(self):
        cell = Cell()
        cell.set_error("#WAT?")
        assert cell.value == "#VALUE!"

    def test_clear(self):
        cell = Cell()
        cell.set_input("=A1")
        cell.region_id = 4
        cell.clear()
        assert cell.is_empty
        assert cell.region_id is None

    def test_display_formatting(self):
        assert Cell(value=True).display() == "TRUE"
        assert Cell(value=2.0).display() == "2"
        assert Cell(value=2.5).display() == "2.5"
        assert Cell(value="s").display() == "s"

    def test_copy_independent(self):
        cell = Cell(value=1)
        cell.meta["x"] = 1
        clone = cell.copy()
        clone.set_value(2)
        clone.meta["x"] = 9
        assert cell.value == 1
        assert cell.meta["x"] == 1

    def test_constructor_infers_kind(self):
        assert Cell(value=5).kind is CellKind.NUMBER
