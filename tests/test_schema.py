"""Unit tests for schemas and attribute groups (repro.engine.schema)."""

import pytest

from repro.engine.schema import Column, TableSchema
from repro.engine.types import DBType
from repro.errors import SchemaError


def make_schema(group_size=None):
    return TableSchema.from_pairs(
        [("a", DBType.INTEGER), ("b", DBType.TEXT), ("c", DBType.REAL), ("d", DBType.TEXT)],
        primary_key="a",
        group_size=group_size,
    )


class TestConstruction:
    def test_default_single_group(self):
        schema = make_schema()
        assert schema.n_groups == 1
        assert schema.groups == [["a", "b", "c", "d"]]

    def test_group_size_chunks(self):
        schema = make_schema(group_size=2)
        assert schema.groups == [["a", "b"], ["c", "d"]]

    def test_group_size_uneven(self):
        schema = make_schema(group_size=3)
        assert schema.groups == [["a", "b", "c"], ["d"]]

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([Column("x"), Column("X")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_primary_key_flag(self):
        schema = make_schema()
        assert schema.primary_key == "a"
        assert schema.column("a").not_null

    def test_groups_must_cover_columns(self):
        with pytest.raises(SchemaError):
            TableSchema([Column("x"), Column("y")], groups=[["x"]])

    def test_groups_no_duplicates(self):
        with pytest.raises(SchemaError):
            TableSchema([Column("x"), Column("y")], groups=[["x", "y"], ["x"]])


class TestLookup:
    def test_column_index_case_insensitive(self):
        schema = make_schema()
        assert schema.column_index("B") == 1
        assert schema.column("C").dtype is DBType.REAL

    def test_missing_column(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.column("zz")
        with pytest.raises(SchemaError):
            schema.column_index("zz")

    def test_group_of(self):
        schema = make_schema(group_size=2)
        assert schema.group_of("a") == 0
        assert schema.group_of("d") == 1

    def test_group_column_indexes(self):
        schema = make_schema(group_size=2)
        assert schema.group_column_indexes(1) == [2, 3]


class TestEvolution:
    def test_add_column_new_group(self):
        schema = make_schema()
        group = schema.add_column(Column("e", DBType.INTEGER))
        assert group == 1
        assert schema.groups[-1] == ["e"]
        assert schema.n_columns == 5

    def test_add_column_into_existing_group(self):
        schema = make_schema(group_size=2)
        group = schema.add_column(Column("e"), group_index=0)
        assert group == 0
        assert "e" in schema.groups[0]

    def test_add_into_missing_group_rejected_without_side_effects(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.add_column(Column("e"), group_index=9)
        assert not schema.has_column("e")

    def test_drop_column(self):
        schema = make_schema(group_size=2)
        schema.drop_column("c")
        assert schema.column_names == ["a", "b", "d"]
        assert schema.groups == [["a", "b"], ["d"]]

    def test_drop_sole_member_removes_group(self):
        schema = make_schema(group_size=2)
        schema.drop_column("c")
        schema.drop_column("d")
        assert schema.groups == [["a", "b"]]

    def test_drop_last_column_rejected(self):
        schema = TableSchema([Column("only")])
        with pytest.raises(SchemaError):
            schema.drop_column("only")

    def test_rename_column(self):
        schema = make_schema()
        schema.rename_column("b", "title")
        assert schema.has_column("title")
        assert not schema.has_column("b")
        assert "title" in schema.groups[0]

    def test_rename_to_existing_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.rename_column("b", "c")

    def test_set_groups(self):
        schema = make_schema()
        schema.set_groups([["a", "c"], ["b", "d"]])
        assert schema.group_of("c") == 0


class TestRowSplitting:
    def test_split_and_join_roundtrip(self):
        schema = make_schema(group_size=2)
        row = (1, "x", 2.5, "y")
        fragments = schema.split_row(row)
        assert fragments == [(1, "x"), (2.5, "y")]
        assert schema.join_fragments(fragments) == row

    def test_split_non_contiguous_groups(self):
        schema = make_schema()
        schema.set_groups([["a", "d"], ["b", "c"]])
        row = (1, "x", 2.5, "y")
        fragments = schema.split_row(row)
        assert fragments == [(1, "y"), ("x", 2.5)]
        assert schema.join_fragments(fragments) == row

    def test_split_wrong_width(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.split_row((1, 2))

    def test_copy_is_independent(self):
        schema = make_schema()
        clone = schema.copy()
        clone.add_column(Column("e"))
        assert not schema.has_column("e")
        assert schema != clone
