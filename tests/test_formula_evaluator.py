"""Unit tests for formula evaluation semantics (operators, coercion,
errors, implicit intersection)."""

import pytest

from repro.core.address import CellAddress, RangeAddress
from repro.errors import FormulaEvalError
from repro.formula.evaluator import EvalContext, RangeValues, evaluate_formula


class SimpleContext(EvalContext):
    def __init__(self, cells=None, extensions=None):
        self.cells = cells or {}
        self.extensions = extensions or {}
        self.extension_calls = []

    def cell_value(self, address: CellAddress):
        return self.cells.get(address.to_a1(include_sheet=False))

    def range_values(self, reference: RangeAddress) -> RangeValues:
        grid = [
            [
                self.cells.get(CellAddress(row, col).to_a1(include_sheet=False))
                for col in range(reference.start.col, reference.end.col + 1)
            ]
            for row in range(reference.start.row, reference.end.row + 1)
        ]
        return RangeValues(grid)

    def call_extension(self, name, args):
        self.extension_calls.append((name, args))
        if name in self.extensions:
            return self.extensions[name](*args)
        return super().call_extension(name, args)


def run(formula, cells=None, **kwargs):
    return evaluate_formula(formula, SimpleContext(cells, **kwargs))


class TestOperators:
    @pytest.mark.parametrize(
        "formula,expected",
        [
            ("1+2", 3),
            ("5-8", -3),
            ("3*4", 12),
            ("7/2", 3.5),
            ("8/2", 4),
            ("2^10", 1024),
            ("-2^2", 4),  # unary binds tighter: (-2)^2
            ('"a"&"b"', "ab"),
            ("1&2", "12"),
            ("1=1", True),
            ("1<>2", True),
            ("2>=3", False),
            ('"a"<"b"', True),
        ],
    )
    def test_operators(self, formula, expected):
        assert run(formula) == expected

    def test_divide_by_zero(self):
        with pytest.raises(FormulaEvalError) as info:
            run("1/0")
        assert info.value.code == "#DIV/0!"

    def test_text_case_insensitive_equality(self):
        assert run('"Hello"="hello"') is True

    def test_numbers_sort_before_text(self):
        assert run('99<"a"') is True

    def test_blank_counts_as_zero_in_arithmetic(self):
        assert run("A1+5") == 5  # A1 is blank

    def test_numeric_text_coerces_in_arithmetic(self):
        assert run('"3"+4') == 7

    def test_non_numeric_text_errors(self):
        with pytest.raises(FormulaEvalError):
            run('"abc"+1')

    def test_boolean_as_number(self):
        assert run("TRUE+TRUE") == 2

    def test_blank_concat_is_empty(self):
        assert run('A1&"x"') == "x"


class TestReferences:
    def test_cell_value(self):
        assert run("B2*2", {"B2": 21}) == 42

    def test_chained_refs_via_context(self):
        cells = {"A1": 5, "A2": 10}
        assert run("A1+A2", cells) == 15

    def test_single_cell_range_dereferences(self):
        assert run("A1:A1+1", {"A1": 9}) == 10

    def test_multi_cell_range_in_scalar_context_errors(self):
        with pytest.raises(FormulaEvalError):
            run("A1:A3+1", {"A1": 1, "A2": 2, "A3": 3})


class TestExtensions:
    def test_extension_dispatch(self):
        result = run(
            'DBSQL("SELECT 1")',
            extensions={"DBSQL": lambda sql: f"ran:{sql}"},
        )
        assert result == "ran:SELECT 1"

    def test_unknown_function_is_name_error(self):
        with pytest.raises(FormulaEvalError) as info:
            run("NOPE(1)")
        assert info.value.code == "#NAME?"

    def test_extension_receives_evaluated_args(self):
        context = SimpleContext({"A1": 6}, {"TWICE": lambda x: x * 2})
        assert evaluate_formula("TWICE(A1+1)", context) == 14
        assert context.extension_calls == [("TWICE", [7])]


class TestErrorCodes:
    def test_if_condition_must_be_boolish(self):
        with pytest.raises(FormulaEvalError):
            run('IF("zzz", 1, 2)')

    def test_nested_error_propagates(self):
        with pytest.raises(FormulaEvalError):
            run("SUM(A1:A2) + 1/0", {"A1": 1})

    def test_iferror_shields_inner(self):
        assert run("IFERROR(SQRT(-1), -1)") == -1
