"""Unit tests for the interface storage manager (CellStore) and Sheet."""

import pytest

from repro.core.cell import Cell
from repro.core.sheet import Sheet
from repro.interface_storage import CellStore


class TestCellStore:
    def test_point_ops(self):
        store = CellStore()
        store.set(5, 3, "v")
        assert store.get(5, 3) == "v"
        assert store.get(5, 4) is None
        assert store.delete(5, 3)
        assert not store.delete(5, 3)

    def test_negative_coordinates_rejected(self):
        store = CellStore()
        with pytest.raises(ValueError):
            store.set(-1, 0, "x")

    def test_len_and_blocks(self):
        store = CellStore(tile_rows=4, tile_cols=4)
        for i in range(10):
            store.set(i, 0, i)
        assert len(store) == 10
        assert store.n_blocks == 3  # rows 0-3, 4-7, 8-9

    def test_get_range_row_major(self):
        store = CellStore()
        store.set(1, 1, "a")
        store.set(0, 2, "b")
        store.set(1, 0, "c")
        hits = list(store.get_range(0, 0, 2, 2))
        assert [payload for _, _, payload in hits] == ["b", "c", "a"]

    def test_range_query_counts_blocks(self):
        store = CellStore(tile_rows=4, tile_cols=4)
        store.set(0, 0, 1)
        store.set(100, 100, 2)
        list(store.get_range(0, 0, 3, 3))
        assert store.stats.blocks_scanned == 1

    def test_used_bounds(self):
        store = CellStore()
        assert store.used_bounds() is None
        store.set(5, 2, "x")
        store.set(1, 7, "y")
        assert store.used_bounds() == (1, 2, 5, 7)

    def test_insert_rows_shifts_down_without_moving_cells(self):
        store = CellStore()
        store.set(5, 0, "below")
        store.set(2, 0, "above")
        moved = store.insert_rows(3, 2)
        assert moved == 0  # positional mapping: the key space splices
        assert store.stats.cells_moved == 0
        assert store.get(7, 0) == "below"
        assert store.get(2, 0) == "above"

    def test_delete_rows_drops_and_shifts(self):
        store = CellStore()
        store.set(2, 0, "doomed")
        store.set(5, 0, "survivor")
        dropped = store.delete_rows(2, 2)
        assert dropped == 1
        assert store.stats.cells_dropped == 1
        assert store.stats.cells_moved == 0
        assert store.get(2, 0) is None
        assert store.get(3, 0) == "survivor"

    def test_insert_cols(self):
        store = CellStore()
        store.set(0, 3, "x")
        store.insert_cols(1, 2)
        assert store.get(0, 5) == "x"

    def test_delete_cols(self):
        store = CellStore()
        store.set(0, 3, "x")
        store.set(0, 1, "gone")
        store.delete_cols(1, 1)
        assert store.get(0, 2) == "x"
        assert store.get(0, 1) is None

    def test_clear_range(self):
        store = CellStore()
        for i in range(5):
            store.set(i, 0, i)
        removed = store.clear_range(1, 0, 3, 0)
        assert removed == 3
        assert len(store) == 2

    def test_quadtree_variant(self):
        store = CellStore(index_kind="quadtree")
        store.set(10, 10, "x")
        assert store.get(10, 10) == "x"
        assert len(list(store.get_range(0, 0, 20, 20))) == 1

    def test_unknown_index_kind(self):
        with pytest.raises(ValueError):
            CellStore(index_kind="btree")


class TestSheet:
    def test_set_get_value(self):
        sheet = Sheet("S")
        sheet.set_value("B2", 42)
        assert sheet.value("B2") == 42
        assert sheet.value_at(1, 1) == 42

    def test_cell_object_identity(self):
        sheet = Sheet("S")
        cell = sheet.ensure_cell("A1")
        cell.set_value(5)
        assert sheet.cell("A1") is cell

    def test_grid_dense_with_blanks(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 1)
        sheet.set_value("B2", 2)
        assert sheet.grid("A1:B2") == [[1, None], [None, 2]]

    def test_set_grid_returns_extent(self):
        sheet = Sheet("S")
        extent = sheet.set_grid("B2", [[1, 2], [3, 4]])
        assert extent.to_a1(include_sheet=False) == "B2:C3"
        assert sheet.value("C3") == 4

    def test_used_range(self):
        sheet = Sheet("S")
        sheet.set_value("C3", 1)
        sheet.set_value("E7", 2)
        assert sheet.used_range().to_a1(include_sheet=False) == "C3:E7"

    def test_clear_range(self):
        sheet = Sheet("S")
        sheet.set_grid("A1", [[1, 2], [3, 4]])
        assert sheet.clear_range("A1:A2") == 2
        assert sheet.value("A1") is None
        assert sheet.value("B1") == 2

    def test_range_cells_skips_blanks(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 1)
        cells = list(sheet.range_cells("A1:C3"))
        assert len(cells) == 1

    def test_formula_cells_iterator(self):
        sheet = Sheet("S")
        sheet.ensure_cell("A1").set_input("=B1+1")
        sheet.set_value("A2", 5)
        formulas = list(sheet.formula_cells())
        assert len(formulas) == 1
        assert formulas[0][0].to_a1(include_sheet=False) == "A1"

    def test_display(self):
        sheet = Sheet("S")
        sheet.set_value("A1", 2.0)
        assert sheet.display("A1") == "2"

    def test_structural_edit_delegates(self):
        sheet = Sheet("S")
        sheet.set_value("A5", "x")
        sheet.insert_rows(0, 2)
        assert sheet.value("A7") == "x"

    def test_empty_name_rejected(self):
        from repro.errors import SheetError

        with pytest.raises(SheetError):
            Sheet("")
