"""Unit + property tests for the order-statistic tree (positional index
substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.order_statistic import OrderStatisticTree


class TestBasics:
    def test_empty(self):
        tree = OrderStatisticTree()
        assert len(tree) == 0
        assert tree.to_list() == []

    def test_bulk_load_preserves_order(self):
        values = list(range(100))
        tree = OrderStatisticTree(values)
        assert tree.to_list() == values
        tree.validate()

    def test_get(self):
        tree = OrderStatisticTree(["a", "b", "c"])
        assert tree.get(0) == "a"
        assert tree.get(2) == "c"
        assert tree.get(-1) == "c"

    def test_get_out_of_range(self):
        tree = OrderStatisticTree([1])
        with pytest.raises(IndexError):
            tree.get(1)
        with pytest.raises(IndexError):
            tree.get(-2)

    def test_set(self):
        tree = OrderStatisticTree([1, 2, 3])
        tree.set(1, 99)
        assert tree.to_list() == [1, 99, 3]

    def test_insert_middle(self):
        tree = OrderStatisticTree([1, 2, 4])
        tree.insert(2, 3)
        assert tree.to_list() == [1, 2, 3, 4]

    def test_insert_ends(self):
        tree = OrderStatisticTree([2])
        tree.insert(0, 1)
        tree.append(3)
        assert tree.to_list() == [1, 2, 3]

    def test_insert_bad_position(self):
        tree = OrderStatisticTree([1])
        with pytest.raises(IndexError):
            tree.insert(5, 9)

    def test_delete(self):
        tree = OrderStatisticTree([1, 2, 3])
        assert tree.delete(1) == 2
        assert tree.to_list() == [1, 3]

    def test_delete_all(self):
        tree = OrderStatisticTree([1, 2, 3])
        for _ in range(3):
            tree.delete(0)
        assert len(tree) == 0


class TestSlices:
    def test_iter_slice(self):
        tree = OrderStatisticTree(list(range(50)))
        assert list(tree.iter_slice(10, 5)) == [10, 11, 12, 13, 14]

    def test_iter_slice_clamps(self):
        tree = OrderStatisticTree([0, 1, 2])
        assert list(tree.iter_slice(2, 10)) == [2]
        assert list(tree.iter_slice(5, 3)) == []
        assert list(tree.iter_slice(0, 0)) == []

    def test_insert_slice(self):
        tree = OrderStatisticTree([1, 5])
        tree.insert_slice(1, [2, 3, 4])
        assert tree.to_list() == [1, 2, 3, 4, 5]
        tree.validate()

    def test_insert_slice_empty(self):
        tree = OrderStatisticTree([1])
        tree.insert_slice(0, [])
        assert tree.to_list() == [1]

    def test_delete_slice(self):
        tree = OrderStatisticTree(list(range(10)))
        removed = tree.delete_slice(3, 4)
        assert removed == [3, 4, 5, 6]
        assert tree.to_list() == [0, 1, 2, 7, 8, 9]
        tree.validate()

    def test_delete_slice_bounds(self):
        tree = OrderStatisticTree([1, 2])
        with pytest.raises(IndexError):
            tree.delete_slice(1, 5)
        with pytest.raises(IndexError):
            tree.delete_slice(0, -1)


class TestScale:
    def test_large_sequential(self):
        tree = OrderStatisticTree()
        for i in range(5000):
            tree.append(i)
        assert len(tree) == 5000
        assert tree.get(2500) == 2500
        tree.validate()

    def test_many_middle_inserts(self):
        tree = OrderStatisticTree()
        reference = []
        for i in range(2000):
            position = (i * 37) % (len(reference) + 1)
            tree.insert(position, i)
            reference.insert(position, i)
        assert tree.to_list() == reference
        tree.validate()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "get", "set", "slice"]),
                  st.integers(0, 10_000), st.integers(0, 10_000)),
        max_size=60,
    )
)
def test_matches_python_list_model(operations):
    """Property: the tree behaves exactly like a Python list under random
    positional operations."""
    tree = OrderStatisticTree()
    model = []
    for op, a, b in operations:
        if op == "insert":
            position = a % (len(model) + 1)
            tree.insert(position, b)
            model.insert(position, b)
        elif op == "delete" and model:
            position = a % len(model)
            assert tree.delete(position) == model.pop(position)
        elif op == "get" and model:
            position = a % len(model)
            assert tree.get(position) == model[position]
        elif op == "set" and model:
            position = a % len(model)
            tree.set(position, b)
            model[position] = b
        elif op == "slice" and model:
            position = a % len(model)
            count = b % (len(model) - position + 1)
            assert list(tree.iter_slice(position, count)) == model[position : position + count]
    assert tree.to_list() == model
    tree.validate()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(), max_size=200), st.integers(0, 200), st.integers(0, 50))
def test_slice_ops_match_list_model(initial, position, count):
    tree = OrderStatisticTree(initial)
    model = list(initial)
    position = position % (len(model) + 1)
    tree.insert_slice(position, [77, 88])
    model[position:position] = [77, 88]
    start = min(position, len(model) - 1) if model else 0
    count = min(count, len(model) - start)
    assert tree.delete_slice(start, count) == model[start : start + count]
    del model[start : start + count]
    assert tree.to_list() == model
