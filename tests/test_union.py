"""Tests for UNION / UNION ALL."""

import pytest

from repro import Workbook
from repro.errors import PlanError


@pytest.fixture
def two_tables(db):
    db.execute("CREATE TABLE a (x INT)")
    db.execute("CREATE TABLE b (x INT)")
    db.execute("INSERT INTO a VALUES (1), (2), (3)")
    db.execute("INSERT INTO b VALUES (3), (4)")
    return db


class TestUnion:
    def test_union_all_keeps_duplicates(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a UNION ALL SELECT x FROM b"
        ).rows
        assert sorted(r[0] for r in rows) == [1, 2, 3, 3, 4]

    def test_union_deduplicates(self, two_tables):
        rows = two_tables.execute("SELECT x FROM a UNION SELECT x FROM b").rows
        assert sorted(r[0] for r in rows) == [1, 2, 3, 4]

    def test_three_way_chain(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a UNION SELECT x FROM b UNION ALL SELECT 99"
        ).rows
        assert sorted(r[0] for r in rows) == [1, 2, 3, 4, 99]

    def test_union_within_members_clauses(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a WHERE x > 1 UNION ALL SELECT x FROM b WHERE x < 4"
        ).rows
        assert sorted(r[0] for r in rows) == [2, 3, 3]

    def test_column_names_from_first_member(self, two_tables):
        result = two_tables.execute(
            "SELECT x AS first_name FROM a UNION ALL SELECT x FROM b"
        )
        assert result.columns == ["first_name"]

    def test_mismatched_arity_rejected(self, two_tables):
        with pytest.raises(PlanError):
            two_tables.execute("SELECT x FROM a UNION SELECT x, x FROM b")

    def test_union_agrees_with_sqlite(self):
        from repro.baselines.sqlite_backend import SqliteComparator

        comp = SqliteComparator()
        try:
            comp.setup(
                [
                    "CREATE TABLE u (v INTEGER)",
                    "INSERT INTO u VALUES (1),(1),(2),(NULL)",
                ]
            )
            comp.assert_match("SELECT v FROM u UNION SELECT v + 1 FROM u")
            comp.assert_match("SELECT v FROM u UNION ALL SELECT v FROM u")
        finally:
            comp.close()

    def test_union_in_dbsql_spill(self, two_tables):
        wb = Workbook(database=two_tables)
        wb.dbsql(
            "Sheet1", "A1",
            "SELECT x FROM a WHERE x = 1 UNION ALL SELECT x FROM b WHERE x = 4",
        )
        assert wb.get("Sheet1", "A1") == 1
        assert wb.get("Sheet1", "A2") == 4
        # Dependencies on BOTH tables: inserting into b refreshes the spill.
        wb.execute("INSERT INTO b VALUES (4)")
        assert wb.get("Sheet1", "A3") == 4
