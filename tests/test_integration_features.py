"""Integration tests reproducing the paper's §4 demonstration end-to-end.

Each test narrates one of the three demonstrated features (Fig 2a/2b/2c)
plus the §1 motivating scenarios, exercising the full stack: parser →
planner → executor → storage → interface manager → compute → sync.
"""

import pytest

from repro import Workbook
from repro.workloads.datasets import (
    generate_grades_data,
    load_grades_database,
)


class TestFeature1Querying:
    """Fig 2a: DBSQL joining three relations with RANGEVALUE references."""

    def test_fig_2a(self, movie_wb):
        wb = movie_wb
        # B1/B2 hold the query parameters, exactly like the screenshot.
        wb.set("Sheet1", "B1", 1960)
        wb.set("Sheet1", "B2", 2010)
        wb.dbsql(
            "Sheet1", "B3",
            "SELECT DISTINCT a.name "
            "FROM movies m "
            "JOIN movies2actors ma ON m.movieid = ma.movieid "
            "JOIN actors a ON a.actorid = ma.actorid "
            "WHERE m.year >= RANGEVALUE(B1) AND m.year <= RANGEVALUE(B2) "
            "ORDER BY a.name LIMIT 8",
        )
        spill = [wb.get("Sheet1", f"B{row}") for row in range(3, 11)]
        names = [v for v in spill if v is not None]
        assert names == sorted(names)
        assert len(names) >= 1
        # Narrowing the year window re-runs the query and shrinks the spill.
        wb.set("Sheet1", "B1", 2015)
        wb.set("Sheet1", "B2", 2015)
        narrowed = [
            v for v in (wb.get("Sheet1", f"B{row}") for row in range(3, 11)) if v is not None
        ]
        assert len(narrowed) <= len(names)


class TestFeature2ImportExport:
    """Fig 2b: create table from a range; DBTABLE import."""

    def test_export_then_import(self, wb):
        wb.sheet("Sheet1").set_grid(
            "A1",
            [
                ["sid", "name", "points"],
                [1, "ann", 93],
                [2, "bob", 77],
                [3, "cat", 88],
            ],
        )
        table = wb.create_table_from_range(
            "Sheet1", "A1:C4", "roster", primary_key="sid"
        )
        # Schema inferred from heading + data (paper: "automatically
        # inferred using the column heading and the data").
        assert table.column_names == ["sid", "name", "points"]
        assert table.schema.column("points").dtype.value == "INTEGER"
        # Sheet range replaced by a live DBTABLE view.
        assert wb.sheet("Sheet1").cell("A1").formula == 'DBTABLE("roster")'
        # Import the same table elsewhere.
        wb.add_sheet("View")
        wb.dbtable("View", "A1", "roster")
        assert wb.get("View", "B2") == "ann"
        # SQL can use it like any regular table.
        assert wb.execute("SELECT max(points) FROM roster").scalar() == 93


class TestFeature3Modifications:
    """Fig 2c: two-way sync between a DBTABLE, the database, and a DBSQL."""

    def test_fig_2c(self, wb):
        wb.execute("CREATE TABLE budget (item TEXT PRIMARY KEY, amount INT)")
        wb.execute("INSERT INTO budget VALUES ('rent', 1000), ('food', 400)")
        # A3:B5 (paper's layout): DBTABLE with headers.
        wb.dbtable("Sheet1", "A3", "budget")
        # A10: a DBSQL referencing that data.
        wb.dbsql("Sheet1", "A10", "SELECT sum(amount) FROM budget")
        assert wb.get("Sheet1", "A10") == 1400
        # Front-end modification -> database -> dependent DBSQL updates.
        wb.set("Sheet1", "B4", 1200)  # rent -> 1200
        assert wb.execute("SELECT amount FROM budget WHERE item='rent'").scalar() == 1200
        assert wb.get("Sheet1", "A10") == 1600
        # Back-end modification -> front-end updates.
        wb.execute("UPDATE budget SET amount = 500 WHERE item = 'food'")
        assert wb.get("Sheet1", "B5") == 500
        assert wb.get("Sheet1", "A10") == 1700


class TestMotivatingScenarios:
    """§1: the course-grades operations that are cumbersome in a plain
    spreadsheet but one-liners in DataSpread."""

    @pytest.fixture
    def grades_wb(self):
        data = generate_grades_data(n_students=100, seed=13)
        wb = Workbook(database=load_grades_database(data))
        return wb, data

    def test_select_students_above_90(self, grades_wb):
        wb, data = grades_wb
        wb.dbsql(
            "Sheet1", "A1",
            "SELECT student_id FROM grades "
            "WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90 "
            "ORDER BY student_id",
        )
        expected = [
            row[0] for row in data.grades if any(score > 90 for score in row[1:6])
        ]
        got = []
        row = 1
        while wb.get("Sheet1", f"A{row}") is not None:
            got.append(wb.get("Sheet1", f"A{row}"))
            row += 1
        assert got == expected

    def test_join_and_group_average_by_level(self, grades_wb):
        wb, data = grades_wb
        wb.dbsql(
            "Sheet1", "D1",
            "SELECT d.level, avg(g.a1 + g.a2 + g.a3 + g.a4 + g.a5) "
            "FROM grades g JOIN demographics d ON g.student_id = d.student_id "
            "GROUP BY d.level ORDER BY d.level",
            include_headers=True,
        )
        assert wb.get("Sheet1", "D1") == "level"
        levels = [wb.get("Sheet1", f"D{row}") for row in range(2, 5)]
        assert sorted(levels) == ["MS", "PhD", "undergrad"]

    def test_continuously_added_external_data(self, grades_wb):
        """§1: course software appends actions; the sheet stays current."""
        wb, _ = grades_wb
        wb.execute(
            "CREATE TABLE actions (aid INT PRIMARY KEY, student_id INT, kind TEXT)"
        )
        wb.dbsql("Sheet1", "G1", "SELECT count(*) FROM actions")
        assert wb.get("Sheet1", "G1") == 0
        for i in range(5):
            wb.execute(f"INSERT INTO actions VALUES ({i}, {i + 1}, 'submit')")
        assert wb.get("Sheet1", "G1") == 5


class TestMixedFormulaAndSql:
    def test_spreadsheet_formula_over_dbsql_spill(self, movie_wb):
        wb = movie_wb
        wb.dbsql(
            "Sheet1", "A1",
            "SELECT year FROM movies ORDER BY movieid LIMIT 10",
        )
        wb.set("Sheet1", "C1", "=AVERAGE(A1:A10)")
        years = [wb.get("Sheet1", f"A{row}") for row in range(1, 11)]
        assert wb.get("Sheet1", "C1") == pytest.approx(sum(years) / 10)
        # Database change flows through the spill into the formula.
        wb.execute("UPDATE movies SET year = year + 10 WHERE movieid <= 10")
        new_years = [wb.get("Sheet1", f"A{row}") for row in range(1, 11)]
        assert wb.get("Sheet1", "C1") == pytest.approx(sum(new_years) / 10)

    def test_formula_feeding_rangevalue(self, movie_wb):
        wb = movie_wb
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "A2", "=A1+1")
        wb.dbsql(
            "Sheet1", "A3",
            "SELECT title FROM movies WHERE movieid = RANGEVALUE(A2)",
        )
        expected = wb.execute("SELECT title FROM movies WHERE movieid = 2").scalar()
        assert wb.get("Sheet1", "A3") == expected
        wb.set("Sheet1", "A1", 4)  # A2 becomes 5; query re-runs
        expected = wb.execute("SELECT title FROM movies WHERE movieid = 5").scalar()
        assert wb.get("Sheet1", "A3") == expected
