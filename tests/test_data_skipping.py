"""The selective-read stack: zone maps, sargable ranges, secondary
indexes, and the planner's access-path choice.

Covers the tentpole claims end to end:

* ``extract_sargable_ranges`` compiles pushed WHERE conjuncts into
  per-column interval sets with Kleene-correct NULL handling,
* ``CREATE [UNIQUE] INDEX`` / ``DROP INDEX`` flow through the whole SQL
  stack, are maintained by every DML path, and survive crash recovery
  (snapshot + WAL, cut at arbitrary byte boundaries),
* the planner picks an index probe for selective point predicates and a
  zone-map-skipping scan otherwise — and both return the same rows,
* trace spans report ``pages_skipped`` consistent with the pager's
  independent per-tag I/O accounting,
* the property: random DML ∘ migrations ∘ encodings, then random
  sargable predicates — the skipping scan, the non-skipping scan, and a
  dict model all agree.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.expr import IntervalSet, extract_sargable_ranges
from repro.engine.sql_parser import parse_statement
from repro.errors import CatalogError, ConstraintError, SqlError
from repro.server.service import WAL_FILENAME, WorkbookService, recover_state
from repro.server.snapshot import SnapshotStore
from repro.server.wal import read_wal


def find_prefix(span, prefix: str):
    if span.name.startswith(prefix):
        return span
    for child in span.children:
        hit = find_prefix(child, prefix)
        if hit is not None:
            return hit
    return None


def where_ranges(sql_where: str, params=None):
    statement = parse_statement(f"SELECT * FROM t WHERE {sql_where}")
    return extract_sargable_ranges(statement.where, params)


# -- sargable extraction ------------------------------------------------------


class TestSargableExtraction:
    def test_comparisons_and_between(self):
        ranges = where_ranges("a > 3 AND a <= 9 AND b BETWEEN 1 AND 2")
        assert ranges["a"].intervals == [(3, False, 9, True)]
        assert ranges["b"].intervals == [(1, True, 2, True)]
        assert not ranges["a"].includes_null

    def test_equality_and_in_are_points(self):
        ranges = where_ranges("a = 5 AND b IN (1, 2, 3)")
        assert ranges["a"].points() == [5]
        assert sorted(ranges["b"].points()) == [1, 2, 3]

    def test_or_unions_only_shared_columns(self):
        ranges = where_ranges("(a < 2 AND b = 1) OR a > 8")
        # b is unconstrained on the right branch — it must not survive.
        assert "b" not in ranges
        assert ranges["a"].intervals == [
            (None, False, 2, False),
            (8, False, None, False),
        ]

    def test_null_comparison_matches_nothing(self):
        # Kleene: `a = NULL` is never TRUE, so the interval set is empty
        # (a scan consulting it may skip every page).
        ranges = where_ranges("a = NULL")
        assert ranges["a"].is_empty()

    def test_is_null_keeps_only_nulls(self):
        ranges = where_ranges("a IS NULL")
        assert ranges["a"].includes_null
        assert ranges["a"].intervals == []
        ranges = where_ranges("a IS NOT NULL")
        assert not ranges["a"].includes_null

    def test_unbound_parameter_never_authorises_a_skip(self):
        # Plan time (no params): `?` could be anything, so `a`'s set
        # carries an unknown bound that matches every page, while `b`'s
        # literal constraint survives the AND at full strength.
        ranges = where_ranges("a > ? AND b = 7")
        assert ranges["a"].may_match(0, 5, 0, 8)
        assert ranges["a"].may_match(100, 200, 0, 8)
        assert ranges["a"].points() is None
        assert ranges["b"].points() == [7]

    def test_bound_parameter_is_a_real_bound(self):
        ranges = where_ranges("a > ?", params=(5,))
        assert ranges["a"].intervals == [(5, False, None, False)]

    def test_may_match_is_conservative(self):
        interval_set = IntervalSet([(10, True, 20, True)], False)
        assert interval_set.may_match(15, 30, 0, 8)
        assert not interval_set.may_match(21, 30, 0, 8)
        # Unknown page bounds must never authorise a skip.
        assert interval_set.may_match(None, None, 0, 8)


# -- index DDL ----------------------------------------------------------------


class TestIndexDdl:
    def build(self, n_rows=50):
        db = Database(page_capacity=16)
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT, s TEXT)")
        for i in range(n_rows):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, i * 3, f"s{i % 7}"))
        return db

    def test_create_probe_and_drop(self):
        db = self.build()
        db.execute("CREATE INDEX idx_v ON t (v)")
        table = db.table("t")
        assert "idx_v" in table.indexes
        rows = db.execute("SELECT k FROM t WHERE v = 36").rows
        assert rows == [(12,)]
        table.validate()
        db.execute("DROP INDEX idx_v")
        assert "idx_v" not in table.indexes
        assert db.execute("SELECT k FROM t WHERE v = 36").rows == [(12,)]

    def test_unique_index_rejects_duplicates(self):
        db = self.build()
        db.execute("CREATE UNIQUE INDEX idx_v ON t (v)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (100, 3, 'dup')")  # v=3 taken
        # The failed insert left no trace in table or index.
        assert db.execute("SELECT COUNT(*) FROM t").rows == [(50,)]
        db.table("t").validate()

    def test_unique_index_on_duplicated_column_fails_to_build(self):
        db = self.build()
        with pytest.raises(ConstraintError):
            db.execute("CREATE UNIQUE INDEX idx_s ON t (s)")  # s repeats
        assert "idx_s" not in db.table("t").indexes

    def test_duplicate_and_missing_names(self):
        db = self.build()
        db.execute("CREATE INDEX idx_v ON t (v)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_v ON t (k)")
        db.execute("CREATE INDEX IF NOT EXISTS idx_v ON t (k)")  # swallowed
        assert db.table("t").indexes["idx_v"].column == "v"
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX ghost")
        db.execute("DROP INDEX IF EXISTS ghost")

    def test_parse_errors(self):
        with pytest.raises(SqlError):
            parse_statement("CREATE INDEX ON t (v)")
        with pytest.raises(SqlError):
            parse_statement("CREATE INDEX idx ON t ()")

    def test_indexes_follow_column_renames_and_drops(self):
        db = self.build()
        db.execute("CREATE INDEX idx_v ON t (v)")
        db.execute("ALTER TABLE t RENAME COLUMN v TO w")
        table = db.table("t")
        assert table.indexes["idx_v"].column == "w"
        assert db.execute("SELECT k FROM t WHERE w = 36").rows == [(12,)]
        db.execute("ALTER TABLE t DROP COLUMN w")
        assert "idx_v" not in table.indexes

    def test_transaction_rollback_unwinds_index_ddl(self):
        db = self.build()
        db.execute("BEGIN")
        db.execute("CREATE INDEX idx_v ON t (v)")
        db.execute("ROLLBACK")
        assert "idx_v" not in db.table("t").indexes
        db.execute("CREATE INDEX idx_v ON t (v)")
        db.execute("BEGIN")
        db.execute("DROP INDEX idx_v")
        db.execute("ROLLBACK")
        assert "idx_v" in db.table("t").indexes
        db.table("t").validate()


# -- planner access path ------------------------------------------------------


def build_big_db(n_rows=2000, **kwargs):
    db = Database(page_capacity=64, **kwargs)
    db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT, w INT)")
    for start in range(0, n_rows, 50):
        values = ",".join(
            f"({i},{i * 7},{i % 13})" for i in range(start, start + 50)
        )
        db.execute(f"INSERT INTO t VALUES {values}")
    return db


class TestPlannerAccessPath:
    def test_point_lookup_uses_the_index(self):
        db = build_big_db()
        db.execute("CREATE UNIQUE INDEX idx_v ON t (v)")
        result, trace = db.trace_statement("SELECT k FROM t WHERE v = 700")
        assert result.rows == [(100,)]
        scan = find_prefix(trace, "IndexScan")
        assert scan is not None
        assert scan.counters["index_probes"] == 1
        assert scan.counters["rows_scanned"] == 1

    def test_non_selective_predicate_stays_a_scan(self):
        db = build_big_db()
        db.execute("CREATE INDEX idx_v ON t (v)")
        result, trace = db.trace_statement("SELECT k FROM t WHERE v >= 0")
        assert len(result.rows) == 2000
        assert find_prefix(trace, "IndexScan") is None
        assert find_prefix(trace, "ProjectedScan") is not None

    def test_index_and_scan_agree_on_every_shape(self):
        db = build_big_db(n_rows=600)
        plain = Database(page_capacity=64)
        plain.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT, w INT)")
        for start in range(0, 600, 50):
            values = ",".join(
                f"({i},{i * 7},{i % 13})" for i in range(start, start + 50)
            )
            plain.execute(f"INSERT INTO t VALUES {values}")
        db.execute("CREATE INDEX idx_v ON t (v)")
        queries = [
            "SELECT k, v FROM t WHERE v = 77",
            "SELECT k, v FROM t WHERE v IN (7, 70, 700)",
            "SELECT k, v FROM t WHERE v BETWEEN 100 AND 140",
            "SELECT k, v FROM t WHERE v = 77 AND w > 2",
            "SELECT k, v FROM t WHERE v = 77 OR v = 140",
            "SELECT k, v FROM t WHERE v IS NULL",
        ]
        for sql in queries:
            assert sorted(db.execute(sql).rows) == sorted(plain.execute(sql).rows), sql

    def test_point_lookup_with_parameter(self):
        db = build_big_db(n_rows=400)
        db.execute("CREATE UNIQUE INDEX idx_v ON t (v)")
        assert db.execute("SELECT k FROM t WHERE v = ?", (770,)).rows == [(110,)]

    def test_skipping_can_be_disabled(self):
        db = build_big_db(n_rows=400, data_skipping=False)
        db.execute("CREATE UNIQUE INDEX idx_v ON t (v)")
        result, trace = db.trace_statement("SELECT k FROM t WHERE v = 700")
        assert result.rows == [(100,)]
        # With the flag off the planner never leaves the scan path.
        assert find_prefix(trace, "IndexScan") is None


# -- DML through the same machinery -------------------------------------------


class TestDmlSelectiveReads:
    def test_update_delete_keep_indexes_exact(self):
        db = build_big_db(n_rows=500)
        db.execute("CREATE INDEX idx_v ON t (v)")
        table = db.table("t")
        db.execute("UPDATE t SET v = v + 1 WHERE v = 700")
        assert db.execute("SELECT k FROM t WHERE v = 701").rows == [(100,)]
        assert db.execute("SELECT k FROM t WHERE v = 700").rows == []
        db.execute("DELETE FROM t WHERE v = 701")
        assert db.execute("SELECT k FROM t WHERE v = 701").rows == []
        assert db.execute("SELECT COUNT(*) FROM t").rows == [(499,)]
        table.validate()

    def test_dml_point_predicate_probes_the_index(self):
        db = build_big_db(n_rows=500)
        db.execute("CREATE UNIQUE INDEX idx_v ON t (v)")
        table = db.table("t")
        before = table.index_lookups
        db.execute("DELETE FROM t WHERE v = 777")
        assert table.index_lookups > before
        table.validate()

    def test_update_after_skipping_scan_stays_correct(self):
        """Zone maps may only over-approximate after updates: a stale
        min/max widens the candidate set, never narrows it."""
        db = build_big_db(n_rows=500)
        # Warm the zone cache, then move rows across the old bounds.
        assert len(db.execute("SELECT k FROM t WHERE v > 3000").rows) > 0
        db.execute("UPDATE t SET v = 9999 WHERE k < 5")
        rows = db.execute("SELECT k FROM t WHERE v = 9999").rows
        assert sorted(rows) == [(0,), (1,), (2,), (3,), (4,)]
        db.table("t").validate()


# -- observability ------------------------------------------------------------


class TestSkippingObservability:
    def test_span_pages_skipped_matches_tag_stats(self):
        """The scan span's pages_skipped and the pager's independent
        per-tag read accounting describe the same scan: with warm zone
        maps and a cold cache, pages fetched + pages skipped covers the
        whole chain."""
        db = build_big_db(n_rows=2000)
        store = db.table("t").store
        sql = "SELECT k, v FROM t WHERE v >= 13500"
        # First pass populates the zone cache (cold zones are computed
        # from fetched pages, which still counts as a read).
        expected = sorted(db.execute(sql).rows)
        db.checkpoint()
        store.pool.drop_cache()
        before = [
            store.group_io_stats(g).snapshot() for g in range(store.n_groups)
        ]
        result, trace = db.trace_statement(sql)
        assert sorted(result.rows) == expected
        scan = find_prefix(trace, "ProjectedScan")
        assert scan is not None
        skipped = scan.counters.get("pages_skipped", 0)
        assert skipped > 0
        deltas = [
            store.group_io_stats(g).delta(before[g])
            for g in range(store.n_groups)
        ]
        fetched = sum(delta.reads for delta in deltas)
        chain_pages = sum(
            store.pages_in_group(g) for g in range(store.n_groups)
        )
        # Every chain page was either fetched or skipped via a cached
        # zone — two independent counters closing over the same total.
        assert fetched + skipped == chain_pages
        assert scan.counters["pages_read"] == fetched

    def test_db_metrics_expose_skips_and_probes(self):
        db = build_big_db(n_rows=1000)
        db.execute("CREATE UNIQUE INDEX idx_v ON t (v)")
        # Probe while the zone cache is cold (a warm cache makes the
        # skipping scan cheap enough to beat the index — also correct).
        db.execute("SELECT k FROM t WHERE v = 700")    # index probe
        db.execute("SELECT k FROM t WHERE v >= 6650")  # warm zones
        db.execute("SELECT k FROM t WHERE v >= 6650")  # skipping pass
        snap = db.metrics()
        assert snap["db_pages_skipped"] > 0
        assert snap["db_index_lookups"] >= 1

    def test_group_skip_stats_surface(self):
        db = build_big_db(n_rows=1000)
        db.execute("SELECT k FROM t WHERE v >= 6650")
        db.execute("SELECT k FROM t WHERE v >= 6650")
        store = db.table("t").store
        stats = store.group_skip_stats(0)
        assert stats["pages_skipped"] > 0
        assert 0.0 < stats["skip_ratio"] <= 1.0
        summary = store.group_summary()[0]
        assert summary["skip"]["pages_skipped"] == stats["pages_skipped"]
        assert summary["zones"] > 0


# -- equivalence property -----------------------------------------------------

COLUMNS = ("a", "b", "c")

DML_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 10**6), st.integers(-50, 50)),
        st.tuples(st.just("update"), st.integers(-50, 50), st.integers(-50, 50)),
        st.tuples(st.just("delete"), st.integers(-50, 50), st.none()),
        st.tuples(st.just("null_insert"), st.integers(0, 10**6), st.none()),
        st.tuples(
            st.just("layout"), st.sampled_from(["ROW", "COLUMN"]), st.none()
        ),
        st.tuples(st.just("encode"), st.none(), st.none()),
    ),
    min_size=3,
    max_size=14,
)

PREDICATES = st.lists(
    st.tuples(
        st.sampled_from(COLUMNS),
        st.sampled_from(["=", "<", "<=", ">", ">=", "between", "in", "isnull"]),
        st.integers(-60, 60),
        st.integers(-60, 60),
    ),
    min_size=1,
    max_size=3,
)


def model_matches(model, predicates):
    """The dict model: rows surviving every conjunct under SQL ternary
    logic (NULL comparisons are never TRUE)."""
    out = []
    for key, row in sorted(model.items()):
        keep = True
        for column, op, x, y in predicates:
            value = row[COLUMNS.index(column)]
            if op == "isnull":
                keep = value is None
            elif value is None:
                keep = False
            elif op == "=":
                keep = value == x
            elif op == "<":
                keep = value < x
            elif op == "<=":
                keep = value <= x
            elif op == ">":
                keep = value > x
            elif op == ">=":
                keep = value >= x
            elif op == "between":
                low, high = min(x, y), max(x, y)
                keep = low <= value <= high
            else:  # in
                keep = value in (x, y, x + 1)
            if not keep:
                break
        if keep:
            out.append(row)
    return out


def predicate_sql(predicates):
    parts = []
    for column, op, x, y in predicates:
        if op == "isnull":
            parts.append(f"{column} IS NULL")
        elif op == "between":
            parts.append(f"{column} BETWEEN {min(x, y)} AND {max(x, y)}")
        elif op == "in":
            parts.append(f"{column} IN ({x}, {y}, {x + 1})")
        else:
            parts.append(f"{column} {op} {x}")
    return " AND ".join(parts)


@settings(max_examples=25, deadline=None)
@given(ops=DML_OPS, predicates=PREDICATES)
def test_skipping_scan_equals_plain_scan_equals_model(ops, predicates):
    skipping = Database(page_capacity=8)
    plain = Database(page_capacity=8, data_skipping=False)
    ddl = "CREATE TABLE t (k INT PRIMARY KEY, a INT, b INT, c INT)"
    for db in (skipping, plain):
        db.execute(ddl)
        db.execute("CREATE INDEX idx_a ON t (a)")
    model = {}
    next_key = 0
    for kind, x, y in ops:
        if kind == "insert":
            row = (x % 101 - 50, (x // 7) % 101 - 50, y)
            for db in (skipping, plain):
                db.execute(
                    "INSERT INTO t VALUES (?, ?, ?, ?)", (next_key, *row)
                )
            model[next_key] = row
            next_key += 1
        elif kind == "null_insert":
            row = (None, x % 101 - 50, None)
            for db in (skipping, plain):
                db.execute(
                    "INSERT INTO t VALUES (?, ?, ?, ?)", (next_key, *row)
                )
            model[next_key] = row
            next_key += 1
        elif kind == "update":
            for db in (skipping, plain):
                db.execute("UPDATE t SET b = ? WHERE a = ?", (y, x))
            for key, row in model.items():
                if row[0] == x:
                    model[key] = (row[0], y, row[2])
        elif kind == "delete":
            for db in (skipping, plain):
                db.execute("DELETE FROM t WHERE a = ?", (x,))
            model = {k: r for k, r in model.items() if r[0] != x}
        elif kind == "layout":
            for db in (skipping, plain):
                db.execute(f"ALTER TABLE t SET LAYOUT {x}")
        else:  # encode: force a checkpoint + page encoding pass
            for db in (skipping, plain):
                db.checkpoint()
                table = db.table("t")
                for g in range(table.store.n_groups):
                    table.store.encode_group(g)
    sql = f"SELECT a, b, c FROM t WHERE {predicate_sql(predicates)}"
    skipping_rows = sorted(skipping.execute(sql).rows, key=repr)
    plain_rows = sorted(plain.execute(sql).rows, key=repr)
    expected = sorted(model_matches(model, predicates), key=repr)
    assert skipping_rows == plain_rows == expected
    skipping.table("t").validate()


# -- crash recovery -----------------------------------------------------------


class TestIndexCrashRecovery:
    """Pattern from test_layout_durability: cut the WAL at byte
    boundaries across the index-DDL tail; every intact prefix recovers a
    consistent catalog whose indexes answer queries correctly."""

    def build(self, tmp_path):
        directory = str(tmp_path / "svc")
        service = WorkbookService(directory, fsync=False, compact_every=0)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        for start in range(0, 60, 10):
            values = ",".join(f"({i},{i * 3})" for i in range(start, start + 10))
            service.execute(session.session_id, f"INSERT INTO t VALUES {values}")
        service.execute(session.session_id, "CREATE UNIQUE INDEX idx_v ON t (v)")
        service.execute(session.session_id, "INSERT INTO t VALUES (100, 450)")
        service.execute(session.session_id, "DROP INDEX idx_v")
        service.execute(session.session_id, "CREATE INDEX idx_v2 ON t (v)")
        service.close()
        with open(os.path.join(directory, WAL_FILENAME), "rb") as handle:
            data = handle.read()
        return directory, data

    def test_cuts_across_the_index_ddl_tail(self, tmp_path):
        directory, data = self.build(tmp_path)
        records, _, _ = read_wal(os.path.join(directory, WAL_FILENAME))
        index_records = [
            r for r in records if r.op["type"] in ("index_create", "index_drop")
        ]
        assert len(index_records) == 3  # promoted to first-class ops
        first = index_records[0]
        cuts = set()
        for record in records:
            if record.end_offset >= first.offset:
                cuts.update(
                    (record.offset, record.offset + 1, record.end_offset)
                )
        cuts.add(len(data))
        for case, cut in enumerate(
            sorted(c for c in cuts if first.offset <= c <= len(data))
        ):
            case_dir = str(tmp_path / f"case{case}")
            os.makedirs(case_dir)
            with open(os.path.join(case_dir, WAL_FILENAME), "wb") as handle:
                handle.write(data[:cut])
            recovery = recover_state(case_dir)
            table = recovery.workbook.database.table("t")
            table.validate()
            # Exactly the fully-logged DDL is reflected.
            applied = [r.op for r in index_records if r.end_offset <= cut]
            expect = set()
            for op in applied:
                if op["type"] == "index_create":
                    expect.add(op["name"].lower())
                else:
                    expect.discard(op["name"].lower())
            assert set(table.indexes) == expect, f"cut={cut}"
            # Whatever index exists answers probes correctly.
            for index in table.indexes.values():
                hits = index.tree.get(30)
                rids = hits if isinstance(hits, list) else [hits]
                assert table.store.get(rids[0])[0] == 10, f"cut={cut}"

    def test_snapshot_covers_index_definitions(self, tmp_path):
        directory = str(tmp_path / "svc")
        service = WorkbookService(directory, fsync=False, compact_every=0)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        for i in range(40):
            service.execute(
                session.session_id, "INSERT INTO t VALUES (?, ?)", (i, i * 3)
            )
        service.execute(session.session_id, "CREATE UNIQUE INDEX idx_v ON t (v)")
        service.compact()
        service.close()
        payload = SnapshotStore(directory).load()
        [spec] = payload["workbook"]["tables"]
        assert spec["indexes"] == [
            {"name": "idx_v", "column": "v", "unique": True}
        ]
        # Recovery must work from the snapshot alone (WAL replays nothing
        # past it) — the tree is rebuilt from the restored rows.
        recovery = recover_state(directory)
        assert recovery.ops_replayed == 0
        table = recovery.workbook.database.table("t")
        assert "idx_v" in table.indexes
        assert table.store.get(table.indexes["idx_v"].tree.get(39))[0] == 13
        table.validate()

    def test_index_ddl_inside_transaction_stays_sql(self, tmp_path):
        """Mirrors the layout rule: inside a txn the DDL must keep riding
        the engine's undo log, so it is not promoted to a first-class
        record (the bracket's replay is all-or-nothing)."""
        directory = str(tmp_path / "svc")
        service = WorkbookService(directory, fsync=False, compact_every=0)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        service.execute(session.session_id, "BEGIN")
        service.execute(session.session_id, "CREATE INDEX idx_v ON t (v)")
        kinds = [r.op["type"] for r in service.wal.records()]
        assert "index_create" not in kinds
        service.execute(session.session_id, "ROLLBACK")
        assert "idx_v" not in service.workbook.database.table("t").indexes
        service.close()
        recovery = recover_state(directory)
        assert "idx_v" not in recovery.workbook.database.table("t").indexes


# -- sanitizer ----------------------------------------------------------------


def test_sanitizer_verifies_zone_maps():
    """REPRO_SANITIZE=1 cross-checks every cached zone against decoded
    page contents; a correct run stays silent."""
    from repro.analysis.sanitizer import Sanitizer

    db = Database(page_capacity=16)
    db.catalog.sanitizer = Sanitizer()
    db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    table = db.table("t")
    table.sanitizer = db.catalog.sanitizer
    table.store.sanitizer = db.catalog.sanitizer
    for i in range(200):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, i * 3))
    assert len(db.execute("SELECT k FROM t WHERE v > 400").rows) > 0
    db.execute("UPDATE t SET v = -1 WHERE k = 7")
    assert db.execute("SELECT k FROM t WHERE v = -1").rows == [(7,)]
