"""Unit tests for the region registry / display contexts and the error
hierarchy."""

import pytest

from repro.core.address import CellAddress, RangeAddress
from repro.core.context import DisplayContext, RegionRegistry
from repro import errors


class _FakeRegion:
    def __init__(self, context):
        self.context = context


def make_region(registry, kind="dbtable", sheet="S", anchor="A1", extent="A1:B3",
                tables=("t",)):
    context = DisplayContext(
        region_id=registry.new_id(),
        kind=kind,
        sheet=sheet,
        anchor=CellAddress.parse(anchor),
        extent=RangeAddress.parse(extent),
        source_tables=set(tables),
    )
    region = _FakeRegion(context)
    registry.add(region)
    return region


class TestRegistry:
    def test_ids_monotonic(self):
        registry = RegionRegistry()
        assert registry.new_id() < registry.new_id()

    def test_region_at(self):
        registry = RegionRegistry()
        region = make_region(registry)
        assert registry.region_at("S", 1, 1) is region
        assert registry.region_at("S", 5, 5) is None
        assert registry.region_at("Other", 1, 1) is None

    def test_regions_of_table_case_insensitive(self):
        registry = RegionRegistry()
        region = make_region(registry, tables=("Items",))
        # context stores lowercase... here we stored 'Items' raw; lookup by
        # lowercase should match the stored value after normalisation.
        found = registry.regions_of_table("items")
        assert (region in found) == ("items" in region.context.source_tables)

    def test_overlap_rejected(self):
        registry = RegionRegistry()
        make_region(registry, extent="A1:C3")
        with pytest.raises(errors.RegionError):
            make_region(registry, anchor="B2", extent="B2:D4")

    def test_disjoint_regions_allowed(self):
        registry = RegionRegistry()
        make_region(registry, extent="A1:B2")
        make_region(registry, anchor="D1", extent="D1:E2")
        assert len(registry) == 2

    def test_same_extent_other_sheet_allowed(self):
        registry = RegionRegistry()
        make_region(registry, sheet="S1")
        make_region(registry, sheet="S2")
        assert len(registry) == 2

    def test_remove(self):
        registry = RegionRegistry()
        region = make_region(registry)
        registry.remove(region.context.region_id)
        assert registry.region_at("S", 0, 0) is None
        registry.remove(999)  # idempotent

    def test_regions_on_sheet(self):
        registry = RegionRegistry()
        make_region(registry, sheet="A")
        make_region(registry, sheet="B")
        assert len(registry.regions_on_sheet("A")) == 1


class TestDisplayContext:
    def test_covers(self):
        context = DisplayContext(
            1, "dbsql", "S", CellAddress.parse("B2"),
            RangeAddress.parse("B2:C4"),
        )
        assert context.covers("S", 1, 1)
        assert context.covers("S", 3, 2)
        assert not context.covers("S", 4, 1)
        assert not context.covers("T", 1, 1)

    def test_covers_without_extent(self):
        context = DisplayContext(1, "dbsql", "S", CellAddress.parse("A1"))
        assert not context.covers("S", 0, 0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.AddressError,
            errors.SqlSyntaxError,
            errors.PlanError,
            errors.ExecutionError,
            errors.CatalogError,
            errors.SchemaError,
            errors.ConstraintError,
            errors.TransactionError,
            errors.StorageError,
            errors.FormulaSyntaxError,
            errors.FormulaEvalError,
            errors.CircularDependencyError,
            errors.SheetError,
            errors.RegionError,
            errors.SyncError,
            errors.ImportExportError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, errors.DataSpreadError)

    def test_constraint_is_execution_error(self):
        assert issubclass(errors.ConstraintError, errors.ExecutionError)

    def test_circular_is_eval_error_with_code(self):
        error = errors.CircularDependencyError("loop")
        assert isinstance(error, errors.FormulaEvalError)
        assert error.code == "#CIRC!"

    def test_syntax_errors_carry_position(self):
        assert errors.SqlSyntaxError("x", 5).position == 5
        assert errors.FormulaSyntaxError("x").position == -1

    def test_address_error_is_value_error(self):
        assert issubclass(errors.AddressError, ValueError)

    def test_one_except_catches_everything(self):
        try:
            raise errors.SyncError("boom")
        except errors.DataSpreadError as caught:
            assert "boom" in str(caught)
