"""Unit tests for the formula lexer and parser."""

import pytest

from repro.core.address import CellAddress, RangeAddress
from repro.errors import FormulaSyntaxError
from repro.formula.lexer import tokenize_formula
from repro.formula.nodes import (
    Binary,
    Boolean,
    Call,
    CellRef,
    Number,
    RangeRef,
    Text,
    Unary,
)
from repro.formula.parser import parse_formula


class TestLexer:
    def test_cell_vs_ident(self):
        tokens = tokenize_formula("A1 + SUM(B2)")
        assert [t.kind for t in tokens[:-1]] == ["CELL", "OP", "IDENT", "OP", "CELL", "OP"]

    def test_absolute_cell_tokens(self):
        tokens = tokenize_formula("$A$1")
        assert tokens[0].kind == "CELL"
        assert tokens[0].text == "$A$1"

    def test_string_escapes(self):
        tokens = tokenize_formula('"say ""hi"""')
        assert tokens[0].text == 'say "hi"'

    def test_booleans(self):
        tokens = tokenize_formula("TRUE FALSE")
        assert [t.kind for t in tokens[:-1]] == ["BOOL", "BOOL"]

    def test_number_not_cell(self):
        tokens = tokenize_formula("1.5e2")
        assert tokens[0].kind == "NUMBER"

    def test_ident_with_trailing_digits_and_paren(self):
        # LOG10( would be a function name, not a cell reference
        tokens = tokenize_formula("LOG10(5)")
        assert tokens[0].kind == "IDENT"

    def test_unterminated_string(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize_formula('"oops')

    def test_bad_character(self):
        with pytest.raises(FormulaSyntaxError):
            tokenize_formula("A1 ~ B2")


class TestParser:
    def test_leading_equals_optional(self):
        assert parse_formula("=1+1") == parse_formula("1+1")

    def test_empty_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=")

    def test_number_literals(self):
        assert parse_formula("42") == Number(42)
        assert parse_formula("2.5") == Number(2.5)

    def test_text_and_bool(self):
        assert parse_formula('"hi"') == Text("hi")
        assert parse_formula("TRUE") == Boolean(True)

    def test_cell_ref(self):
        node = parse_formula("B3")
        assert isinstance(node, CellRef)
        assert node.address == CellAddress.parse("B3")

    def test_range_ref(self):
        node = parse_formula("A1:B10")
        assert isinstance(node, RangeRef)
        assert node.range == RangeAddress.parse("A1:B10")

    def test_sheet_qualified_cell(self):
        node = parse_formula("Sheet2!C4")
        assert node.address.sheet == "Sheet2"

    def test_sheet_qualified_range(self):
        node = parse_formula("Data!A1:A10")
        assert node.range.start.sheet == "Data"
        assert node.range.end.sheet == "Data"

    def test_precedence_mul_over_add(self):
        node = parse_formula("1+2*3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_exponent_right_associative(self):
        node = parse_formula("2^3^2")
        assert node.op == "^"
        assert node.right.op == "^"

    def test_concat_binds_looser_than_add(self):
        node = parse_formula('"a" & 1+2')
        assert node.op == "&"
        assert node.right.op == "+"

    def test_comparison_loosest(self):
        node = parse_formula("A1+1 > B1*2")
        assert node.op == ">"

    def test_unary_minus(self):
        node = parse_formula("-A1")
        assert isinstance(node, Unary)

    def test_function_call(self):
        node = parse_formula("SUM(A1:A3, B1, 5)")
        assert isinstance(node, Call)
        assert node.name == "SUM"
        assert len(node.args) == 3

    def test_function_name_case_normalised(self):
        assert parse_formula("sum(A1)").name == "SUM"

    def test_nested_calls(self):
        node = parse_formula("IF(A1>0, SUM(B1:B2), -1)")
        assert node.name == "IF"
        assert isinstance(node.args[1], Call)

    def test_empty_arg_list(self):
        assert parse_formula("PI()") == Call("PI", ())

    def test_parens(self):
        node = parse_formula("(1+2)*3")
        assert node.op == "*"

    def test_unknown_bare_name_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=banana")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=1+2 3")

    def test_unbalanced_parens(self):
        with pytest.raises(FormulaSyntaxError):
            parse_formula("=SUM(A1")


class TestToText:
    @pytest.mark.parametrize(
        "source",
        [
            "A1+B2",
            "SUM(A1:B10)",
            '"x"&"y"',
            "IF(A1>1,2,3)",
            "$A$1*2",
            "Sheet2!B2",
            "-A1",
            "1.5",
            "TRUE",
        ],
    )
    def test_roundtrip(self, source):
        node = parse_formula(source)
        assert parse_formula(node.to_text()) == node
