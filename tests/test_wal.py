"""Write-ahead log: records, checksums, torn tails, transactions, and
crash recovery through structural edits."""

from __future__ import annotations

import datetime
import json
import os

import pytest

from repro.core.workbook import Workbook
from repro.errors import WALError
from repro.server.service import WorkbookService, apply_op, recover_state
from repro.server.wal import (
    WriteAheadLog,
    committed_ops,
    read_wal,
)


def wal_path(tmp_path) -> str:
    return str(tmp_path / "wal.jsonl")


def op(n: int) -> dict:
    return {"type": "set_cell", "sheet": "Sheet1", "ref": f"A{n}", "raw": n}


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            for n in range(1, 6):
                record = wal.append(op(n))
                assert record.lsn == n
        records, intact_end, size = read_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert [r.op["ref"] for r in records] == ["A1", "A2", "A3", "A4", "A5"]
        assert intact_end == size
        # byte extents tile the file exactly
        assert records[0].offset == 0
        for previous, current in zip(records, records[1:]):
            assert previous.end_offset == current.offset
        assert records[-1].end_offset == size

    def test_reopen_continues_lsn(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(op(1))
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.last_lsn == 1
            assert wal.append(op(2)).lsn == 2
        records, _, _ = read_wal(path)
        assert [r.lsn for r in records] == [1, 2]

    def test_date_values_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        when = datetime.date(2026, 7, 28)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append({"type": "sql", "sql": "INSERT ...", "params": [when]})
        records, _, _ = read_wal(path)
        assert records[0].op["params"] == [when]

    def test_missing_file_is_empty(self, tmp_path):
        records, intact_end, size = read_wal(str(tmp_path / "nope.jsonl"))
        assert records == [] and intact_end == 0 and size == 0

    def test_batched_fsync_counts(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path, sync_every=4, fsync=False)
        for n in range(1, 9):
            wal.append(op(n))
        assert wal.stats.appends == 8
        assert wal.stats.syncs == 2  # every 4th append
        wal.append(op(9), sync=True)
        assert wal.stats.syncs == 3
        wal.close()


class TestTornTail:
    def build(self, path: str, n: int = 4) -> bytes:
        with WriteAheadLog(path, fsync=False) as wal:
            for k in range(1, n + 1):
                wal.append(op(k))
        with open(path, "rb") as handle:
            return handle.read()

    def test_partial_final_line_tolerated(self, tmp_path):
        path = wal_path(tmp_path)
        data = self.build(path)
        with open(path, "wb") as handle:
            handle.write(data[:-5])  # cut through the final record
        records, intact_end, size = read_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3]
        assert intact_end == records[-1].end_offset
        assert size > intact_end

    def test_garbled_final_line_tolerated(self, tmp_path):
        path = wal_path(tmp_path)
        data = self.build(path)
        # flip a byte inside the final record (newline intact)
        corrupted = bytearray(data)
        corrupted[-10] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(corrupted))
        records, _, _ = read_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3]

    def test_interior_corruption_raises(self, tmp_path):
        path = wal_path(tmp_path)
        self.build(path)
        records, _, _ = read_wal(path)
        first = records[0]
        with open(path, "r+b") as handle:
            handle.seek(first.offset + 10)
            handle.write(b"\xff")
        with pytest.raises(WALError):
            read_wal(path)

    def test_open_repairs_torn_tail(self, tmp_path):
        path = wal_path(tmp_path)
        data = self.build(path)
        with open(path, "wb") as handle:
            handle.write(data[:-5])
        wal = WriteAheadLog(path, fsync=False)
        assert wal.last_lsn == 3
        wal.append(op(99))  # reuses lsn 4 after the repair
        wal.close()
        records, intact_end, size = read_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3, 4]
        assert records[-1].op["raw"] == 99
        assert intact_end == size


class TestTransactions:
    def test_mark_truncate(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path, fsync=False)
        wal.append(op(1))
        mark = wal.mark()
        wal.append({"type": "txn_begin", "txn": 1})
        wal.append(op(2))
        removed = wal.truncate_to(mark)
        assert removed > 0
        assert wal.last_lsn == 1
        wal.append(op(3))  # lsn continues from the mark
        wal.close()
        records, _, _ = read_wal(path)
        assert [r.lsn for r in records] == [1, 2]
        assert records[-1].op["raw"] == 3

    def test_committed_ops_rules(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path, fsync=False)
        wal.append(op(1))                                # autocommit
        wal.append({"type": "txn_begin", "txn": 1})
        wal.append(op(2))
        wal.append({"type": "txn_commit", "txn": 1})     # committed bracket
        wal.append(op(3))                                # autocommit
        wal.append({"type": "txn_begin", "txn": 2})
        wal.append(op(4))                                # open bracket: dropped
        wal.close()
        ops = committed_ops(wal.records())
        assert [o["raw"] for o in ops] == [1, 2, 3]

    def test_open_repairs_dangling_bracket(self, tmp_path):
        """A crash after txn_begin but before the commit marker leaves a
        dead bracket: reopening must cut it so later appends are not
        swallowed by the open bracket at the next recovery."""
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path, fsync=False)
        wal.append(op(1))
        wal.append({"type": "txn_begin", "txn": 1})
        wal.append(op(2))
        wal.close()  # simulated crash before commit
        wal = WriteAheadLog(path, fsync=False)
        assert wal.last_lsn == 1  # the dead bracket was truncated
        wal.append(op(3))
        wal.close()
        ops = committed_ops(WriteAheadLog(path, fsync=False).records())
        assert [o["raw"] for o in ops] == [1, 3]

    def test_rollback_marker_discards(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog(path, fsync=False)
        wal.append({"type": "txn_begin", "txn": 1})
        wal.append(op(1))
        wal.append({"type": "txn_rollback", "txn": 1})
        wal.append(op(2))
        wal.close()
        ops = committed_ops(wal.records())
        assert [o["raw"] for o in ops] == [2]


class TestStructuralCrashRecovery:
    """A WAL torn at *any* byte boundary mid-structural-edit must recover
    to exactly the committed prefix — the key-space splice makes structural
    replay order-sensitive, so a half-applied edit would corrupt every
    address below it."""

    @staticmethod
    def sheet_state(workbook: Workbook):
        return {
            (row, col): (cell.value, cell.formula)
            for row, col, cell in workbook.sheet("Sheet1").store.items()
        }

    def build_history(self, directory: str) -> bytes:
        """A history interleaving cell edits, formulas, and structural ops."""
        service = WorkbookService(str(directory), fsync=False)
        session = service.connect("writer")
        sid = session.session_id
        for n in range(1, 6):
            service.set_cell(sid, "Sheet1", f"A{n}", n)
        service.set_cell(sid, "Sheet1", "C1", "=A1+A2")
        service.apply(sid, {"type": "insert_rows", "sheet": "Sheet1", "at": 2, "count": 2})
        service.set_cell(sid, "Sheet1", "A3", 33)
        service.apply(sid, {"type": "delete_rows", "sheet": "Sheet1", "at": 0, "count": 1})
        service.apply(sid, {"type": "insert_cols", "sheet": "Sheet1", "at": 0, "count": 1})
        service.set_cell(sid, "Sheet1", "B1", "=C2*10")
        service.apply(sid, {"type": "delete_cols", "sheet": "Sheet1", "at": 3, "count": 1})
        service.close()
        with open(os.path.join(str(directory), "wal.jsonl"), "rb") as handle:
            return handle.read()

    def test_truncation_at_arbitrary_byte_boundaries(self, tmp_path):
        data = self.build_history(tmp_path / "full")
        assert len(data) > 0
        for cut in range(0, len(data) + 1, 11):
            directory = tmp_path / f"cut{cut}"
            directory.mkdir()
            with open(directory / "wal.jsonl", "wb") as handle:
                handle.write(data[:cut])
            # Oracle: apply the committed prefix to a fresh workbook.
            records, _, _ = read_wal(str(directory / "wal.jsonl"))
            expected = Workbook()
            prefix = committed_ops(records)
            for operation in prefix:
                apply_op(expected, operation)
            expected.recalc_all()
            # Recovery must reproduce exactly that state.
            recovery = recover_state(str(directory))
            assert recovery.ops_replayed == len(prefix)
            assert self.sheet_state(recovery.workbook) == self.sheet_state(expected)
        # Sanity: the untruncated history recovers the full final state.
        full = recover_state(str(tmp_path / "full"))
        assert full.ops_replayed == 12
