"""Unit tests for the compute engine: dependency graph, scheduler, and the
visible-first / lazy evaluation modes (paper §2.2(d,e), §3)."""

import pytest

from repro.compute.graph import DependencyGraph
from repro.compute.scheduler import RecalcScheduler
from repro.core.address import CellAddress, RangeAddress
from repro import Workbook
from repro.window.viewport import Viewport


class TestDependencyGraph:
    def key(self, text, sheet="S"):
        address = CellAddress.parse(text)
        return (sheet, address.row, address.col)

    def test_direct_dependents(self):
        graph = DependencyGraph()
        graph.set_dependencies(self.key("B1"), [CellAddress.parse("A1")], [])
        assert graph.dependents_of(self.key("A1")) == {self.key("B1")}

    def test_range_subscription(self):
        graph = DependencyGraph()
        graph.set_dependencies(
            self.key("C1"), [], [RangeAddress.parse("A1:A100")]
        )
        assert self.key("C1") in graph.dependents_of(self.key("A50"))
        assert graph.dependents_of(self.key("B50")) == set()

    def test_range_subscription_across_tiles(self):
        graph = DependencyGraph()
        graph.set_dependencies(
            self.key("C1"), [], [RangeAddress.parse("A1:A1000")]
        )
        assert self.key("C1") in graph.dependents_of(self.key("A999"))

    def test_clear_dependencies(self):
        graph = DependencyGraph()
        graph.set_dependencies(self.key("B1"), [CellAddress.parse("A1")],
                               [RangeAddress.parse("C1:C9")])
        graph.clear_dependencies(self.key("B1"))
        assert graph.dependents_of(self.key("A1")) == set()
        assert graph.dependents_of(self.key("C5")) == set()

    def test_replace_dependencies(self):
        graph = DependencyGraph()
        graph.set_dependencies(self.key("B1"), [CellAddress.parse("A1")], [])
        graph.set_dependencies(self.key("B1"), [CellAddress.parse("A2")], [])
        assert graph.dependents_of(self.key("A1")) == set()
        assert graph.dependents_of(self.key("A2")) == {self.key("B1")}

    def test_transitive_closure(self):
        graph = DependencyGraph()
        graph.set_dependencies(self.key("B1"), [CellAddress.parse("A1")], [])
        graph.set_dependencies(self.key("C1"), [CellAddress.parse("B1")], [])
        graph.set_dependencies(self.key("D1"), [CellAddress.parse("C1")], [])
        closure = graph.all_dependents([self.key("A1")])
        assert closure == {self.key("B1"), self.key("C1"), self.key("D1")}

    def test_topo_order(self):
        graph = DependencyGraph()
        graph.set_dependencies(self.key("B1"), [CellAddress.parse("A1")], [])
        graph.set_dependencies(self.key("C1"), [CellAddress.parse("B1")], [])
        order = graph.topo_order({self.key("B1"), self.key("C1")})
        assert order.index(self.key("B1")) < order.index(self.key("C1"))

    def test_cross_sheet_edges(self):
        graph = DependencyGraph()
        graph.set_dependencies(
            ("Main", 0, 1), [CellAddress.parse("Data!A1")], []
        )
        assert ("Main", 0, 1) in graph.dependents_of(("Data", 0, 0))


class TestScheduler:
    def test_visible_first(self):
        scheduler = RecalcScheduler(lambda key: key[1] < 10)
        scheduler.mark_dirty(("S", 50, 0))
        scheduler.mark_dirty(("S", 5, 0))
        scheduler.mark_dirty(("S", 60, 0))
        scheduler.mark_dirty(("S", 6, 0))
        order = [scheduler.pop() for _ in range(4)]
        assert order[:2] == [("S", 5, 0), ("S", 6, 0)]

    def test_pop_visible_only(self):
        scheduler = RecalcScheduler(lambda key: key[1] < 10)
        scheduler.mark_dirty(("S", 50, 0))
        scheduler.mark_dirty(("S", 5, 0))
        assert scheduler.pop_visible() == ("S", 5, 0)
        assert scheduler.pop_visible() is None
        assert scheduler.pending == 1

    def test_viewport_move_repromotes(self):
        region = {"top": 0}
        scheduler = RecalcScheduler(lambda key: region["top"] <= key[1] < region["top"] + 10)
        scheduler.mark_dirty(("S", 50, 0))  # background at enqueue time
        scheduler.mark_dirty(("S", 5, 0))
        region["top"] = 50  # scroll: row 50 becomes visible, row 5 not
        assert scheduler.pop() == ("S", 50, 0)

    def test_duplicate_marks_ignored(self):
        scheduler = RecalcScheduler()
        scheduler.mark_dirty(("S", 1, 1))
        scheduler.mark_dirty(("S", 1, 1))
        assert scheduler.pending == 1

    def test_discard(self):
        scheduler = RecalcScheduler()
        scheduler.mark_dirty(("S", 1, 1))
        scheduler.discard(("S", 1, 1))
        assert scheduler.pop() is None

    def test_clear_resets_stats(self):
        # Regression: clear() emptied the heap/dirty set but left the
        # schedule counters standing, so stats bled across workbook resets.
        scheduler = RecalcScheduler(lambda key: key[1] < 10)
        scheduler.mark_dirty(("S", 1, 0))
        scheduler.mark_dirty(("S", 50, 0))
        assert scheduler.pop() is not None
        assert scheduler.pop() is not None
        assert scheduler.scheduled == 2
        assert scheduler.popped_visible == 1
        assert scheduler.popped_background == 1
        scheduler.mark_dirty(("S", 2, 0))
        scheduler.clear()
        assert scheduler.pending == 0
        assert scheduler.pop() is None
        assert scheduler.scheduled == 0
        assert scheduler.popped_visible == 0
        assert scheduler.popped_background == 0

    def test_reset_stats_keeps_pending_work(self):
        scheduler = RecalcScheduler()
        scheduler.mark_dirty(("S", 1, 1))
        scheduler.reset_stats()
        assert scheduler.scheduled == 0
        assert scheduler.pending == 1
        assert scheduler.pop() == ("S", 1, 1)


class TestEngineThroughWorkbook:
    def test_chain_recalc(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "A2", "=A1+1")
        wb.set("Sheet1", "A3", "=A2+1")
        wb.set("Sheet1", "A1", 10)
        assert wb.get("Sheet1", "A3") == 12

    def test_range_formula_recalc(self, wb):
        for row in range(1, 6):
            wb.set("Sheet1", f"A{row}", row)
        wb.set("Sheet1", "B1", "=SUM(A1:A5)")
        assert wb.get("Sheet1", "B1") == 15
        wb.set("Sheet1", "A3", 100)
        assert wb.get("Sheet1", "B1") == 112

    def test_error_renders_code(self, wb):
        wb.set("Sheet1", "A1", "=1/0")
        assert wb.get("Sheet1", "A1") == "#DIV/0!"

    def test_cycle_renders_circ(self, wb):
        wb.set("Sheet1", "A1", "=B1")
        wb.set("Sheet1", "B1", "=A1")
        assert wb.get("Sheet1", "A1") == "#CIRC!"
        assert wb.get("Sheet1", "B1") == "#CIRC!"

    def test_self_reference_cycle(self, wb):
        wb.set("Sheet1", "A1", "=A1+1")
        assert wb.get("Sheet1", "A1") == "#CIRC!"

    def test_formula_replaced_by_value_clears_dependency(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "B1", "=A1")
        wb.set("Sheet1", "B1", 99)
        wb.set("Sheet1", "A1", 5)
        assert wb.get("Sheet1", "B1") == 99

    def test_cross_sheet_formula(self, wb):
        wb.add_sheet("Data")
        wb.set("Data", "A1", 7)
        wb.set("Sheet1", "A1", "=Data!A1*2")
        assert wb.get("Sheet1", "A1") == 14
        wb.set("Data", "A1", 10)
        assert wb.get("Sheet1", "A1") == 20

    def test_lazy_mode_demand_evaluation(self):
        wb = Workbook(eager=False)
        wb.set("Sheet1", "A1", 3)
        wb.set("Sheet1", "A2", "=A1*3")
        # Nothing drained eagerly, but reading recomputes on demand.
        assert wb.compute.pending >= 1
        assert wb.get("Sheet1", "A2") == 9
        assert wb.compute.pending == 0

    def test_visible_first_then_background(self):
        wb = Workbook(eager=False)
        for row in range(1, 101):
            wb.set("Sheet1", f"A{row}", row)
            wb.set("Sheet1", f"B{row}", f"=A{row}*2")
        viewport = Viewport("Sheet1", top=0, left=0, n_rows=10, n_cols=5)
        wb.set_viewport(viewport)
        computed = wb.recalc_visible()
        assert computed == 10  # only the window
        assert wb.compute.pending == 90
        assert wb.sheet("Sheet1").value("B1") == 2
        # Background completes the rest in slices.
        total = 0
        while wb.compute.pending:
            total += wb.background_step(32)
        assert total == 90

    def test_stats_track_evaluations(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "A2", "=A1")
        before = wb.compute.stats.evaluations
        wb.set("Sheet1", "A1", 2)
        assert wb.compute.stats.evaluations > before
