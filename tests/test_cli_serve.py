"""CLI integration: the `serve` and `replay` commands."""

from __future__ import annotations

import os

import pytest

from repro.cli import DataSpreadShell, main, replay_report
from repro.server import WorkbookService
from repro.server.service import WAL_FILENAME


class TestServeCommand:
    def test_serve_edit_quit_reopen(self, tmp_path):
        directory = str(tmp_path / "book")
        shell = DataSpreadShell()
        banner = shell.handle_line(f"serve {directory}")
        assert "serving" in banner and "0 ops recovered" in banner
        assert shell.handle_line("A1 = 5") == "A1 = 5"
        assert shell.handle_line("A2 = =A1*3") == "A2 = 15"
        out = shell.handle_line("sql CREATE TABLE m (id INT PRIMARY KEY, t TEXT)")
        assert out.startswith("ok")
        out = shell.handle_line("sql INSERT INTO m VALUES (1,'x')")
        assert "1 rows affected" in out
        assert shell.handle_line("quit") == "bye"

        reopened = DataSpreadShell()
        banner = reopened.handle_line(f"serve {directory}")
        assert "4 ops recovered" in banner
        assert reopened.handle_line("show A1:A2") .count("15") == 1
        assert reopened.workbook.get("Sheet1", "A2") == 15
        reopened.handle_line("quit")

    def test_new_sheet_survives_recovery(self, tmp_path):
        """Regression: 'sheet' used to create sheets outside the WAL, so
        replaying edits on the new sheet bricked recovery."""
        directory = str(tmp_path / "book")
        shell = DataSpreadShell()
        shell.handle_line(f"serve {directory}")
        shell.handle_line("sheet Budget")
        assert shell.handle_line("A1 = 99") == "A1 = 99"
        shell.handle_line("quit")
        reopened = DataSpreadShell()
        banner = reopened.handle_line(f"serve {directory}")
        assert "2 ops recovered" in banner
        assert reopened.workbook.get("Budget", "A1") == 99
        reopened.handle_line("quit")

    def test_sheet_switch_moves_session_viewport(self, tmp_path):
        service = WorkbookService(str(tmp_path / "book"), fsync=False)
        shell = DataSpreadShell(service=service)
        shell.handle_line("sheet Budget")
        assert shell.session.viewport.sheet == "Budget"
        other = service.connect("other")
        service.set_cell(other.session_id, "Budget", "A1", 5)
        assert "cell Budget!A1 = 5" in shell.handle_line("deltas")
        shell.handle_line("quit")

    def test_serve_twice_is_an_error(self, tmp_path):
        shell = DataSpreadShell()
        shell.handle_line(f"serve {tmp_path / 'a'}")
        assert "already serving" in shell.handle_line(f"serve {tmp_path / 'b'}")
        shell.handle_line("quit")

    def test_deltas_feed_from_other_session(self, tmp_path):
        service = WorkbookService(str(tmp_path / "book"), fsync=False)
        shell = DataSpreadShell(service=service)
        other = service.connect("other")
        assert shell.handle_line("deltas") == "(no pending deltas)"
        service.set_cell(other.session_id, "Sheet1", "A1", 42)
        feed = shell.handle_line("deltas")
        assert "cell Sheet1!A1 = 42" in feed
        assert shell.handle_line("deltas") == "(no pending deltas)"
        shell.handle_line("quit")

    def test_stale_write_message(self, tmp_path):
        service = WorkbookService(str(tmp_path / "book"), fsync=False)
        shell = DataSpreadShell(service=service)
        other = service.connect("other")
        service.set_cell(other.session_id, "Sheet1", "A1", "theirs")
        out = shell.handle_line("A1 = mine")
        assert "stale write rejected" in out
        shell.handle_line("deltas")  # catch up
        assert shell.handle_line("A1 = mine") == "A1 = 'mine'"
        shell.handle_line("quit")

    def test_snapshot_and_stats_commands(self, tmp_path):
        shell = DataSpreadShell()
        assert "not serving" in shell.handle_line("snapshot")
        shell.handle_line(f"serve {tmp_path / 'book'}")
        shell.handle_line("A1 = 1")
        assert "snapshot written" in shell.handle_line("snapshot")
        assert "server" in shell.handle_line("stats")
        assert "error" in shell.handle_line("load nowhere.json")
        shell.handle_line("quit")


class TestReplayCommand:
    def build(self, tmp_path) -> str:
        directory = str(tmp_path / "book")
        service = WorkbookService(directory, fsync=False)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE m (id INT PRIMARY KEY, t TEXT)")
        service.execute(session.session_id, "INSERT INTO m VALUES (1,'x'),(2,'y')")
        service.set_cell(session.session_id, "Sheet1", "E1", "=2*21")
        service.close()
        return directory

    def test_replay_directory(self, tmp_path):
        directory = self.build(tmp_path)
        report = replay_report(directory)
        assert "3 committed ops replayed" in report
        assert "table m: 2 rows" in report
        assert "42" in report

    def test_replay_bare_wal_file(self, tmp_path):
        directory = self.build(tmp_path)
        report = replay_report(os.path.join(directory, WAL_FILENAME))
        assert "replayed" in report and "3 committed ops" in report
        assert "42" in report

    def test_replay_wal_next_to_snapshot_uses_directory(self, tmp_path):
        directory = self.build(tmp_path)
        service = WorkbookService(directory, fsync=False)
        service.compact()
        session = service.connect("alice")
        service.set_cell(session.session_id, "Sheet1", "F1", 9)
        service.close()
        report = replay_report(os.path.join(directory, WAL_FILENAME))
        assert "snapshot + 1 committed ops replayed" in report

    def test_main_replay_subcommand(self, tmp_path, capsys):
        directory = self.build(tmp_path)
        assert main(["replay", directory]) == 0
        out = capsys.readouterr().out
        assert "table m: 2 rows" in out

    def test_main_usage_errors(self, capsys):
        assert main(["replay"]) == 2
        assert main(["frobnicate"]) == 2

    def test_replay_missing_path_is_an_error(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "nope")]) == 1
        assert "no such WAL" in capsys.readouterr().out
        shell = DataSpreadShell()
        assert "error: no such WAL" in shell.handle_line(f"replay {tmp_path / 'nope'}")
