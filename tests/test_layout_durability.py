"""The tuned physical layout survives crashes and compaction.

Tentpole coverage for durable layouts: snapshot v2 carries the advisor
flag, the live grouping, the decayed access statistics and any in-flight
migration target; `layout_set`/`layout_step` WAL records make the
committed-suffix replay converge to the live layout; a server killed
mid-migration resumes and completes it after restart; and recovery
refuses a WAL that cannot contain the history its snapshot claims to
cover (truncated/recreated log = lost committed ops, not a clean boot).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.persist import workbook_from_dict, workbook_to_dict
from repro.errors import ServerError
from repro.server.service import (
    WAL_FILENAME,
    WorkbookService,
    recover_state,
)
from repro.server.snapshot import SnapshotStore
from repro.server.wal import WriteAheadLog, read_wal


def signature(grouping):
    return {frozenset(name.lower() for name in group) for group in grouping}


def make_service(tmp_path, name="svc", **kwargs) -> WorkbookService:
    kwargs.setdefault("fsync", False)
    kwargs.setdefault("compact_every", 0)
    return WorkbookService(str(tmp_path / name), **kwargs)


def build_wide_table(service, session, n_rows=800, name="t"):
    service.execute(
        session.session_id, f"CREATE TABLE {name} (a INT, b INT, c INT, d INT)"
    )
    # Distinct 8-byte ints: incompressible, so the maintenance loop's
    # encode-first pass stays out of these migration-focused scenarios
    # (encoding durability has its own coverage in test_vectorized.py).
    wide = 2**33
    for start in range(0, n_rows, 10):
        values = ",".join(
            f"({j * wide},{j * wide + 1},{j * wide + 2},{j * wide + 3})"
            for j in range(start, start + 10)
        )
        service.execute(session.session_id, f"INSERT INTO {name} VALUES {values}")
    return service.workbook.database.table(name)


def drive_split_migration(service, session, table, column="a", scans=60):
    """Scan-heavy workload until the advisor starts (and finishes) an
    online migration that splits ``column`` out as a singleton group."""
    service.execute(session.session_id, f"ALTER TABLE {table.name} SET LAYOUT AUTO")
    table.layout_advisor.min_ops = 8
    for _ in range(scans):
        list(table.store.scan_column(column))
    actions = []
    for _ in range(40):
        actions += [r["action"] for r in service.maintenance_tick(steps=1)]
        if actions and actions[-1] == "migrated":
            break
    assert "migration_started" in actions and "migrated" in actions
    assert [column] in table.schema.groups
    return actions


class TestSnapshotCarriesLayout:
    def test_auto_flag_survives_snapshot(self, tmp_path):
        """Regression: a snapshot taken after ALTER ... SET LAYOUT AUTO
        used to drop the flag — the recovered server came back with the
        advisor off."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (a INT, b INT)")
        service.execute(session.session_id, "ALTER TABLE t SET LAYOUT AUTO")
        service.compact()
        # Truncate the WAL entirely past the snapshot: the flag must come
        # from the snapshot alone, not from replaying the ALTER.
        service.close()
        reopened = make_service(tmp_path)
        assert reopened.workbook.database.table("t").auto_layout
        reopened.close()

    def test_grouping_and_stats_survive_snapshot(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        table = build_wide_table(service, session)
        drive_split_migration(service, session, table)
        tuned = table.schema.groups
        stats_before = table.store.access_stats.to_dict()
        service.compact()
        service.close()

        reopened = make_service(tmp_path)
        recovered = reopened.workbook.database.table("t")
        assert recovered.schema.groups == tuned
        assert recovered.auto_layout
        # The decayed workload window came back verbatim: the advisor
        # resumes from live statistics, not cold counters.
        assert recovered.store.access_stats.to_dict() == stats_before
        recovered.validate()
        reopened.close()

    def test_group_io_counters_survive_snapshot(self, tmp_path):
        """ROADMAP item: the per-group I/O surface (`pager.tag_stats`)
        used to reset to zero on every recovery."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        table = build_wide_table(service, session)
        service.workbook.database.checkpoint()
        for _ in range(10):
            list(table.store.scan_column("a"))
        io_before = table.store.group_io_snapshot()
        assert any(entry["writes"] or entry["allocations"] for entry in io_before)
        service.compact()
        service.close()

        reopened = make_service(tmp_path)
        recovered = reopened.workbook.database.table("t")
        assert recovered.store.group_io_snapshot() == io_before
        reopened.close()

    def test_snapshot_mid_migration_resumes_and_completes(self, tmp_path):
        """Acceptance: a server killed mid-migration resumes from the
        persisted target and completes after restart."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        table = build_wide_table(service, session)
        drive_split_migration(service, session, table)
        # Flip the workload point-read heavy so the advisor wants to merge
        # back, then stop after the migration has started but not finished.
        table.store.access_stats.reset()
        for rid in table.store.rids()[:400]:
            table.store.get(rid)
        [report] = service.maintenance_tick(steps=1)
        assert report["action"] == "migration_started"
        assert table.migration_active
        mid_groups = table.schema.groups
        target = table.layout_migration_target
        service.compact()
        service.close()  # "crash" with the migration half done

        reopened = make_service(tmp_path)
        recovered = reopened.workbook.database.table("t")
        assert recovered.schema.groups == mid_groups
        assert recovered.migration_active
        assert recovered.layout_migration_target == target
        # The serve loop's maintenance beat completes the migration.
        for _ in range(40):
            if not recovered.migration_active:
                break
            reopened.maintenance_tick(steps=1)
        assert not recovered.migration_active
        assert signature(recovered.schema.groups) == signature(target)
        recovered.validate()
        reopened.close()

    def test_snapshot_v1_still_loads(self, tmp_path):
        """A v1 snapshot (no layout fields) recovers with v2 defaults:
        grouping from `groups`, advisor off, cold stats, no migration."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(
            session.session_id, "CREATE TABLE t (a INT, b INT)"
        )
        service.execute(session.session_id, "INSERT INTO t VALUES (1,2)")
        payload = {
            "version": 1,
            "wal_lsn": service.wal.last_lsn,
            "wal_offset": service.wal.end_offset,
            "workbook": workbook_to_dict(service.workbook),
        }
        # Strip every v2 field down to the v1 shape.
        payload["workbook"]["version"] = 1
        for spec in payload["workbook"]["tables"]:
            for key in ("auto_layout", "access_stats", "migration_target"):
                spec.pop(key, None)
        service.wal.sync()
        path = os.path.join(str(tmp_path / "svc"), SnapshotStore.FILENAME)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        service.close()

        recovery = recover_state(str(tmp_path / "svc"))
        assert recovery.snapshot_used
        table = recovery.workbook.database.table("t")
        assert table.schema.groups == [["a", "b"]]
        assert not table.auto_layout
        assert not table.migration_active

    def test_persist_v1_payload_still_loads(self):
        payload = workbook_to_dict(
            workbook_from_dict({"version": 1, "tables": [], "sheets": []})
        )
        assert payload["version"] == 2


class TestWalLayoutOps:
    def test_alter_set_layout_logged_as_first_class_op(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (a INT, b INT, c INT)")
        service.execute(session.session_id, "ALTER TABLE t SET LAYOUT COLUMN")
        service.execute(session.session_id, "ALTER TABLE t SET LAYOUT AUTO")
        kinds = [r.op["type"] for r in service.wal.records()]
        assert kinds.count("layout_set") == 2
        modes = [
            r.op["mode"] for r in service.wal.records() if r.op["type"] == "layout_set"
        ]
        assert modes == ["column", "auto"]
        service.close()

        # No snapshot: pure WAL replay must reproduce the layout, not the
        # CREATE TABLE default grouping.
        reopened = make_service(tmp_path)
        table = reopened.workbook.database.table("t")
        assert table.schema.groups == [["a"], ["b"], ["c"]]
        assert table.auto_layout
        reopened.close()

    def test_advisor_migration_replays_without_snapshot(self, tmp_path):
        """The advisor's decision is driven by *unlogged* statistics
        (reads are never WAL-logged), so replay can only converge because
        the migration start and every step are logged as first-class
        records."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        table = build_wide_table(service, session)
        drive_split_migration(service, session, table)
        live = table.schema.groups
        kinds = [r.op["type"] for r in service.wal.records()]
        assert "layout_set" in kinds and "layout_step" in kinds
        service.close()

        recovery = recover_state(str(tmp_path / "svc"))
        recovered = recovery.workbook.database.table("t")
        assert recovered.schema.groups == live
        assert recovered.auto_layout
        recovered.validate()

    def test_set_layout_inside_transaction_stays_sql(self, tmp_path):
        """Inside a transaction the ALTER keeps riding the engine's undo
        log (and the txn bracket's all-or-nothing replay), so it must not
        be promoted to a layout_set record."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (a INT, b INT)")
        service.execute(session.session_id, "BEGIN")
        service.execute(session.session_id, "ALTER TABLE t SET LAYOUT COLUMN")
        kinds = [r.op["type"] for r in service.wal.records()]
        assert "layout_set" not in kinds
        service.execute(session.session_id, "ROLLBACK")
        assert service.workbook.database.table("t").schema.groups == [["a", "b"]]
        service.close()

    def test_client_submitted_layout_target_op(self, tmp_path):
        """layout_set mode=target is a first-class client op: it arms an
        online migration that maintenance then steps durably."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        build_wide_table(service, session, n_rows=100)
        service.apply(
            session.session_id,
            {
                "type": "layout_set",
                "table": "t",
                "mode": "target",
                "groups": [["a", "c"], ["b", "d"]],
            },
        )
        table = service.workbook.database.table("t")
        assert table.migration_active
        while table.migration_active:
            service.maintenance_tick(steps=1)
        assert signature(table.schema.groups) == signature([["a", "c"], ["b", "d"]])
        service.close()

        recovery = recover_state(str(tmp_path / "svc"))
        recovered = recovery.workbook.database.table("t")
        assert signature(recovered.schema.groups) == signature(
            [["a", "c"], ["b", "d"]]
        )
        recovered.validate()

    def test_completed_migration_not_reported_in_flight_after_replay(
        self, tmp_path
    ):
        """Regression: replayed layout_step ops restructure outside the
        armed LayoutMigration, so recovery of a migration that *finished*
        before the crash used to leave migration_active=True with the
        target equal to the live grouping — a phantom 'migrating ->'
        in replay reports and a spurious target in later snapshots."""
        service = make_service(tmp_path)
        session = service.connect("alice")
        table = build_wide_table(service, session)
        drive_split_migration(service, session, table)  # completes fully
        assert not table.migration_active
        service.close()

        recovery = recover_state(str(tmp_path / "svc"))
        recovered = recovery.workbook.database.table("t")
        assert recovered.schema.groups == table.schema.groups
        assert not recovered.migration_active
        assert recovered.layout_migration_target is None
        # ...and a snapshot taken right after recovery stays clean.
        reopened = make_service(tmp_path)
        reopened.compact()
        reopened.close()
        payload = SnapshotStore(str(tmp_path / "svc")).load()
        [spec] = payload["workbook"]["tables"]
        assert spec["migration_target"] is None

    def test_malformed_layout_ops_rejected_before_wal(self, tmp_path):
        service = make_service(tmp_path)
        session = service.connect("alice")
        service.execute(session.session_id, "CREATE TABLE t (a INT, b INT)")
        lsn = service.wal.last_lsn
        with pytest.raises(ServerError):
            service.apply(
                session.session_id,
                {"type": "layout_set", "table": "ghost", "mode": "auto"},
            )
        with pytest.raises(ServerError):
            service.apply(
                session.session_id,
                {"type": "layout_set", "table": "t", "mode": "sideways"},
            )
        with pytest.raises(ServerError):
            service.apply(
                session.session_id,
                {"type": "layout_step", "table": "t", "groups": []},
            )
        with pytest.raises(ServerError):
            service.apply(
                session.session_id,
                {"type": "layout_step", "table": "t", "groups": [[]]},
            )
        assert service.wal.last_lsn == lsn
        service.close()


class TestCrashBetweenMigrationSteps:
    """Acceptance: kill between migration step N and N+1 (at every byte
    boundary of the tail), restart — the layout is a consistent
    intermediate, and the migration resumes and completes."""

    def build(self, tmp_path):
        directory = str(tmp_path / "svc")
        service = WorkbookService(directory, fsync=False, compact_every=0)
        session = service.connect("alice")
        build_wide_table(service, session, n_rows=80)
        # Start from [[a,b],[c,d]] so the hop to [[a,c],[b,d]] needs two
        # splits and two merges: a genuinely multi-step migration.
        service.apply(
            session.session_id,
            {
                "type": "layout_set",
                "table": "t",
                "mode": "target",
                "groups": [["a", "b"], ["c", "d"]],
            },
        )
        table = service.workbook.database.table("t")
        rows = sorted(table.store.read_row(rid) for rid in table.store.rids())
        groupings_after_step = []  # live grouping right after each step
        previous = table.schema.groups
        while table.migration_active:
            service.maintenance_tick(steps=1)
            if table.schema.groups != previous:
                previous = table.schema.groups
                groupings_after_step.append(previous)
        assert table.schema.groups == [["a", "b"], ["c", "d"]]
        service.apply(
            session.session_id,
            {
                "type": "layout_set",
                "table": "t",
                "mode": "target",
                "groups": [["a", "c"], ["b", "d"]],
            },
        )
        while table.migration_active:
            service.maintenance_tick(steps=1)
            if table.schema.groups != previous:
                previous = table.schema.groups
                groupings_after_step.append(previous)
        assert len(groupings_after_step) >= 3  # one split + split/split/merge/merge
        service.close()
        with open(os.path.join(directory, WAL_FILENAME), "rb") as handle:
            data = handle.read()
        return directory, data, rows, groupings_after_step

    def recover_cut(self, tmp_path, data, cut, case):
        directory = str(tmp_path / f"case{case}")
        os.makedirs(directory)
        with open(os.path.join(directory, WAL_FILENAME), "wb") as handle:
            handle.write(data[:cut])
        return recover_state(directory), directory

    def test_crash_cuts_across_the_migration_tail(self, tmp_path):
        directory, data, rows, groupings = self.build(tmp_path)
        records, _, _ = read_wal(os.path.join(directory, WAL_FILENAME))
        step_records = [r for r in records if r.op["type"] == "layout_step"]
        target_records = [
            r
            for r in records
            if r.op["type"] == "layout_set" and r.op.get("mode") == "target"
        ]
        assert len(step_records) == len(groupings)
        first_step = step_records[0]
        # Every record boundary (and its neighbours, covering torn-record
        # cuts) across the migration tail, plus a stride over the interior
        # bytes — full decision coverage without a per-byte sweep.
        cuts = set()
        for record in records:
            if record.end_offset >= first_step.offset:
                cuts.update(
                    (
                        record.offset,
                        record.offset + 1,
                        record.end_offset - 1,
                        record.end_offset,
                    )
                )
        cuts.update(range(first_step.offset, len(data) + 1, 7))
        cuts.add(len(data))
        for case, cut in enumerate(
            sorted(c for c in cuts if first_step.offset <= c <= len(data))
        ):
            recovery, case_dir = self.recover_cut(tmp_path, data, cut, case)
            table = recovery.workbook.database.table("t")
            # 1. the layout is always a consistent intermediate
            table.validate()
            # 2. exactly the fully-logged steps are reflected
            applied = sum(1 for r in step_records if r.end_offset <= cut)
            expected = (
                groupings[applied - 1] if applied else [["a", "b", "c", "d"]]
            )
            assert table.schema.groups == expected, f"cut={cut}"
            # 3. rows never diverge
            recovered_rows = sorted(
                table.store.read_row(rid) for rid in table.store.rids()
            )
            assert recovered_rows == rows, f"cut={cut}"
            # 4. the migration resumes from the last durably-armed target
            # and completes under the recovered server's maintenance loop
            armed = [r for r in target_records if r.end_offset <= cut]
            final_signature = signature(armed[-1].op["groups"])
            reopened = WorkbookService(case_dir, fsync=False)
            recovered = reopened.workbook.database.table("t")
            for _ in range(40):
                if not recovered.migration_active:
                    break
                reopened.maintenance_tick(steps=1)
            assert not recovered.migration_active, f"cut={cut}"
            assert signature(recovered.schema.groups) == final_signature, (
                f"cut={cut}"
            )
            recovered.validate()
            reopened.close()


class TestSnapshotWalMismatch:
    """Satellite: a WAL shorter than (or unrelated to) the snapshot's
    covered prefix means committed operations are lost — recovery must
    fail loudly, not 'succeed' by silently replaying nothing."""

    def build(self, tmp_path):
        directory = str(tmp_path / "svc")
        service = WorkbookService(directory, fsync=False, compact_every=0)
        session = service.connect("alice")
        for n in range(1, 9):
            service.set_cell(session.session_id, "Sheet1", f"A{n}", n)
        service.compact()
        for n in range(9, 12):
            service.set_cell(session.session_id, "Sheet1", f"A{n}", n)
        service.close()
        return directory

    def test_wal_shorter_than_snapshot_coverage(self, tmp_path):
        directory = self.build(tmp_path)
        payload = SnapshotStore(directory).load()
        wal_path = os.path.join(directory, WAL_FILENAME)
        with open(wal_path, "rb") as handle:
            data = handle.read()
        cut = int(payload["wal_offset"]) // 2
        with open(wal_path, "wb") as handle:
            handle.write(data[:cut])
        with pytest.raises(ServerError, match="truncated or deleted"):
            recover_state(directory)
        with pytest.raises(ServerError):
            WorkbookService(directory, fsync=False)

    def test_deleted_wal_with_snapshot(self, tmp_path):
        directory = self.build(tmp_path)
        os.remove(os.path.join(directory, WAL_FILENAME))
        with pytest.raises(ServerError, match="truncated or deleted"):
            recover_state(directory)

    def test_recreated_wal_does_not_line_up(self, tmp_path):
        directory = self.build(tmp_path)
        wal_path = os.path.join(directory, WAL_FILENAME)
        snapshot_offset = int(SnapshotStore(directory).load()["wal_offset"])
        os.remove(wal_path)
        # A fresh log, restarted at LSN 1, padded past the snapshot offset
        # so only the boundary/LSN check can catch the mismatch.
        wal = WriteAheadLog(wal_path, fsync=False)
        n = 0
        while wal.end_offset <= snapshot_offset + 64:
            n += 1
            wal.append(
                {"type": "set_cell", "sheet": "Sheet1", "ref": "Z9", "raw": n}
            )
        wal.close()
        with pytest.raises(ServerError, match="does not match the snapshot"):
            recover_state(directory)

    def test_intact_directory_still_recovers(self, tmp_path):
        directory = self.build(tmp_path)
        recovery = recover_state(directory)
        assert recovery.snapshot_used
        for n in range(1, 12):
            assert recovery.workbook.get("Sheet1", f"A{n}") == n


# ---------------------------------------------------------------------------
# Property: random edits + migrations + crash/recover at arbitrary byte
# boundaries => recovered workbook ≡ live workbook at the corresponding
# point, and the recovered grouping ≡ the live grouping there.
# ---------------------------------------------------------------------------

ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("cell"), st.integers(1, 10), st.integers(0, 99)),
        st.tuples(st.just("insert"), st.integers(0, 400), st.none()),
        st.tuples(st.just("scan"), st.sampled_from(["a", "b", "c", "d"]), st.none()),
        st.tuples(st.just("point"), st.integers(1, 30), st.none()),
        st.tuples(
            st.just("layout"),
            st.sampled_from(["AUTO", "MANUAL", "ROW", "COLUMN"]),
            st.none(),
        ),
        st.tuples(st.just("rows"), st.sampled_from(["insert", "delete"]), st.integers(0, 6)),
        st.tuples(st.just("tick"), st.none(), st.none()),
        st.tuples(st.just("compact"), st.none(), st.none()),
    ),
    min_size=4,
    max_size=18,
)

PROBES = [f"A{n}" for n in range(1, 11)] + ["B2", "C3"]


def live_digest(workbook):
    table = workbook.database.table("t")
    return {
        "cells": {ref: workbook.get("Sheet1", ref) for ref in PROBES},
        "rows": sorted(table.store.read_row(rid) for rid in table.store.rids()),
        "groups": table.schema.groups,
        "auto": table.auto_layout,
        "target": table.layout_migration_target,
    }


@settings(max_examples=12, deadline=None)
@given(actions=ACTIONS, cut_seed=st.integers(0, 10**9))
def test_crash_recovery_matches_live_state(actions, cut_seed):
    with tempfile.TemporaryDirectory() as tmp:
        directory = os.path.join(tmp, "svc")
        service = WorkbookService(directory, fsync=False, compact_every=0)
        session = service.connect("prop")
        service.execute(
            session.session_id, "CREATE TABLE t (a INT, b INT, c INT, d INT)"
        )
        table = service.workbook.database.table("t")
        table.layout_advisor.min_ops = 6
        service.wal.sync()
        # Cuts before the CREATE TABLE record (or before the latest
        # snapshot's coverage) are out of scope for this property.
        snapshot_floor = service.wal.end_offset
        boundaries = {service.wal.end_offset: live_digest(service.workbook)}
        for kind, x, y in actions:
            if kind == "cell":
                service.set_cell(session.session_id, "Sheet1", f"A{x}", y)
            elif kind == "insert":
                service.execute(
                    session.session_id,
                    f"INSERT INTO t VALUES ({x},{x + 1},{x + 2},{x + 3})",
                )
            elif kind == "scan":
                for _ in range(8):
                    list(table.store.scan_column(x))  # unlogged, stats only
            elif kind == "point":
                rids = table.store.rids()
                for rid in rids[: min(x, len(rids))]:
                    table.store.get(rid)  # unlogged, stats only
            elif kind == "layout":
                service.execute(
                    session.session_id, f"ALTER TABLE t SET LAYOUT {x}"
                )
            elif kind == "rows":
                if x == "insert":
                    service.apply(
                        session.session_id,
                        {"type": "insert_rows", "sheet": "Sheet1", "at": y, "count": 1},
                    )
                else:
                    service.apply(
                        session.session_id,
                        {"type": "delete_rows", "sheet": "Sheet1", "at": y, "count": 1},
                    )
            elif kind == "tick":
                service.maintenance_tick(steps=1)
            else:  # compact
                service.compact()
                snapshot_floor = service.wal.end_offset
            service.wal.sync()
            boundaries[service.wal.end_offset] = live_digest(service.workbook)
        service.close()

        wal_path = os.path.join(directory, WAL_FILENAME)
        with open(wal_path, "rb") as handle:
            data = handle.read()
        cut = snapshot_floor + cut_seed % (len(data) - snapshot_floor + 1)
        case_dir = os.path.join(tmp, "case")
        os.makedirs(case_dir)
        with open(os.path.join(case_dir, WAL_FILENAME), "wb") as handle:
            handle.write(data[:cut])
        snapshot_path = os.path.join(directory, SnapshotStore.FILENAME)
        if os.path.exists(snapshot_path):
            shutil.copy(snapshot_path, os.path.join(case_dir, SnapshotStore.FILENAME))

        recovery = recover_state(case_dir)
        recovered = recovery.workbook
        recovered.database.table("t").validate()
        if cut in boundaries:
            # A cut at an operation boundary recovers the exact live state
            # the server had there — cells, rows, grouping, advisor flag
            # and in-flight migration target alike.
            assert live_digest(recovered) == boundaries[cut]
        # Any cut (boundary or torn record) leaves a consistent layout
        # whose migration, if armed, completes under maintenance.
        database = recovered.database
        for _ in range(40):
            if not database.table("t").migration_active:
                break
            database.maintenance_tick(steps=2)
        assert not database.table("t").migration_active
        database.table("t").validate()
