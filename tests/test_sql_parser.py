"""Unit tests for the SQL parser (AST shapes)."""

import pytest

from repro.engine import sql_ast as ast
from repro.engine.sql_parser import parse_expression, parse_sql, parse_statement
from repro.errors import SqlSyntaxError


class TestSelect:
    def test_minimal(self):
        stmt = parse_statement("SELECT 1")
        assert isinstance(stmt, ast.SelectStmt)
        assert stmt.source is None
        assert stmt.items[0].expression == ast.Literal(1)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)
        assert stmt.source == ast.TableRef("t")

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].expression == ast.Star(table="t")

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct
        assert not parse_statement("SELECT ALL a FROM t").distinct

    def test_where_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT a, count(*) FROM t WHERE a > 1 GROUP BY a "
            "HAVING count(*) > 2 ORDER BY a DESC LIMIT 10 OFFSET 5"
        )
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.group_by == (ast.ColumnRef("a"),)
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == ast.Literal(10)
        assert stmt.offset == ast.Literal(5)

    def test_join_on(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.id = b.id")
        join = stmt.source
        assert isinstance(join, ast.Join)
        assert join.kind == "inner"
        assert join.condition is not None

    def test_left_join_variants(self):
        for sql in (
            "SELECT * FROM a LEFT JOIN b ON a.x=b.x",
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x=b.x",
        ):
            assert parse_statement(sql).source.kind == "left"

    def test_natural_join(self):
        stmt = parse_statement("SELECT * FROM a NATURAL JOIN b")
        assert stmt.source.natural

    def test_using(self):
        stmt = parse_statement("SELECT * FROM a JOIN b USING (id, name)")
        assert stmt.source.using == ("id", "name")

    def test_cross_join_and_comma(self):
        assert parse_statement("SELECT * FROM a CROSS JOIN b").source.kind == "cross"
        assert parse_statement("SELECT * FROM a, b").source.kind == "cross"

    def test_chained_joins_left_assoc(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.x=b.x JOIN c ON b.y=c.y")
        outer = stmt.source
        assert isinstance(outer.left, ast.Join)
        assert outer.right == ast.TableRef("c")

    def test_subquery_source(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1 AS one) s")
        assert isinstance(stmt.source, ast.SubquerySource)
        assert stmt.source.alias == "s"

    def test_keyword_column_via_quotes(self):
        stmt = parse_statement('SELECT "year" FROM t')
        assert stmt.items[0].expression == ast.ColumnRef("year")


class TestDataSpreadConstructs:
    def test_rangevalue_bare(self):
        expr = parse_expression("RANGEVALUE(B1)")
        assert expr == ast.RangeValue("B1")

    def test_rangevalue_quoted(self):
        expr = parse_expression("RANGEVALUE('Sheet2!B1')")
        assert expr == ast.RangeValue("Sheet2!B1")

    def test_rangetable_in_from(self):
        stmt = parse_statement("SELECT * FROM RANGETABLE(A1:D100)")
        assert stmt.source == ast.RangeTable("A1:D100")

    def test_rangetable_alias(self):
        stmt = parse_statement("SELECT * FROM RANGETABLE(A1:B2) AS r")
        assert stmt.source.alias == "r"

    def test_rangetable_quoted_sheet(self):
        stmt = parse_statement("SELECT * FROM RANGETABLE('Grades!A1:B4') g")
        assert stmt.source.reference == "Grades!A1:B4"

    def test_rangetable_in_expression_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("RANGETABLE(A1:B2)")

    def test_rangetable_joins(self):
        stmt = parse_statement(
            "SELECT * FROM actors NATURAL JOIN RANGETABLE(A1:D100)"
        )
        assert isinstance(stmt.source.right, ast.RangeTable)

    def test_insert_at_position(self):
        stmt = parse_statement("INSERT INTO t VALUES (1) AT POSITION 5")
        assert stmt.position == ast.Literal(5)


class TestExpressions:
    def test_precedence_arith(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.BinaryOp(
            "+", ast.Literal(1), ast.BinaryOp("*", ast.Literal(2), ast.Literal(3))
        )

    def test_parens(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_in_subquery(self):
        expr = parse_expression("a IN (SELECT b FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_variants(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, ast.Case)
        assert expr.operand is None
        assert expr.default == ast.Literal("small")

    def test_case_simple(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'one' END")
        assert expr.operand == ast.ColumnRef("a")
        assert expr.default is None

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT max(x) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_function_distinct(self):
        expr = parse_expression("count(DISTINCT a)")
        assert expr.distinct

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert expr.args == (ast.Star(),)

    def test_parameters_numbered_in_order(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        conjunct = stmt.where
        assert conjunct.left.right == ast.Parameter(0)
        assert conjunct.right.right == ast.Parameter(1)

    def test_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("3.5") == ast.Literal(3.5)
        assert parse_expression("'s'") == ast.Literal("s")

    def test_concat_operator(self):
        assert parse_expression("a || b").op == "||"

    def test_unary_minus(self):
        assert parse_expression("-a") == ast.UnaryOp("-", ast.ColumnRef("a"))


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert len(stmt.rows) == 2
        assert stmt.columns == ()

    def test_insert_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert stmt.assignments[0][0] == "a"
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.DeleteStmt)

    def test_delete_all(self):
        assert parse_statement("DELETE FROM t").where is None


class TestDdl:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, "
            "score REAL DEFAULT 0)"
        )
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].default == ast.Literal(0)

    def test_create_table_constraint_pk(self):
        stmt = parse_statement("CREATE TABLE t (id INT, name TEXT, PRIMARY KEY (id))")
        assert stmt.columns[0].primary_key

    def test_create_if_not_exists(self):
        assert parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_create_as_select(self):
        stmt = parse_statement("CREATE TABLE t AS SELECT 1 AS one")
        assert stmt.as_select is not None

    def test_alter_add(self):
        stmt = parse_statement("ALTER TABLE t ADD COLUMN x INT DEFAULT 3")
        assert isinstance(stmt.action, ast.AlterAddColumn)
        assert stmt.action.into_group is None

    def test_alter_add_at_group(self):
        stmt = parse_statement("ALTER TABLE t ADD COLUMN x INT AT GROUP 2")
        assert stmt.action.into_group == 2

    def test_alter_drop(self):
        stmt = parse_statement("ALTER TABLE t DROP COLUMN x")
        assert stmt.action == ast.AlterDropColumn("x")

    def test_alter_rename(self):
        stmt = parse_statement("ALTER TABLE t RENAME COLUMN a TO b")
        assert stmt.action == ast.AlterRenameColumn("a", "b")

    def test_drop_table(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_sql("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_parse_statement_rejects_many(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT 1; SELECT 2")

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT * FORM t",
            "INSERT t VALUES (1)",
            "UPDATE SET a=1",
            "CREATE TABLE t",
            "SELECT * FROM t WHERE",
            "SELECT a, FROM t",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_statement(bad)

    def test_error_carries_position_context(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_statement("SELECT * FROM t WHERE a ==")
        assert "near" in str(info.value) or "end of input" in str(info.value)
