"""Differential tests: our engine vs sqlite3 on the shared dialect.

Catches semantic drift in joins, aggregation, NULL handling and ORDER BY
that unit tests with hand-computed expectations might miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sqlite_backend import SqliteComparator


SETUP = [
    "CREATE TABLE r (a INTEGER, b INTEGER, c TEXT)",
    "INSERT INTO r VALUES (1, 10, 'x'), (2, 20, 'y'), (3, NULL, 'x'), "
    "(4, 40, NULL), (5, 40, 'z'), (NULL, 7, 'x')",
    "CREATE TABLE s (a INTEGER, d TEXT)",
    "INSERT INTO s VALUES (1, 'one'), (2, 'two'), (3, 'three'), (9, 'nine'), (NULL, 'null')",
]


@pytest.fixture
def comparator():
    comp = SqliteComparator()
    comp.setup(SETUP)
    yield comp
    comp.close()


QUERIES = [
    "SELECT * FROM r",
    "SELECT a, b FROM r WHERE b > 15",
    "SELECT * FROM r WHERE b IS NULL",
    "SELECT * FROM r WHERE c = 'x' AND b < 15",
    "SELECT * FROM r WHERE a IN (1, 3, 5)",
    "SELECT * FROM r WHERE a NOT IN (1, 3, 5)",
    "SELECT * FROM r WHERE b BETWEEN 10 AND 40",
    "SELECT * FROM r WHERE c LIKE 'x%'",
    "SELECT a + b FROM r",
    "SELECT a * 2 + 1 FROM r WHERE a IS NOT NULL",
    "SELECT count(*) FROM r",
    "SELECT count(b) FROM r",
    "SELECT sum(b), min(b), max(b) FROM r",
    "SELECT c, count(*) FROM r GROUP BY c",
    "SELECT c, sum(b) FROM r GROUP BY c HAVING count(*) > 1",
    "SELECT count(DISTINCT b) FROM r",
    "SELECT DISTINCT c FROM r",
    "SELECT r.a, s.d FROM r JOIN s ON r.a = s.a",
    "SELECT r.a, s.d FROM r LEFT JOIN s ON r.a = s.a",
    "SELECT r.a, s.d FROM r, s WHERE r.a = s.a",
    "SELECT r.a FROM r CROSS JOIN s",
    "SELECT a FROM r WHERE a IN (SELECT a FROM s)",
    "SELECT a FROM r WHERE b = (SELECT max(b) FROM r)",
    "SELECT g, n FROM (SELECT c AS g, count(*) AS n FROM r GROUP BY c) t WHERE n >= 1",
    "SELECT CASE WHEN b >= 40 THEN 'hi' ELSE 'lo' END FROM r WHERE b IS NOT NULL",
    "SELECT abs(-a), length(c) FROM r WHERE a IS NOT NULL AND c IS NOT NULL",
    "SELECT coalesce(b, 0) FROM r",
    "SELECT upper(c) || '!' FROM r WHERE c IS NOT NULL",
]


@pytest.mark.parametrize("query", QUERIES)
def test_unordered_agreement(comparator, query):
    comparator.assert_match(query)


ORDERED_QUERIES = [
    "SELECT a FROM r WHERE a IS NOT NULL ORDER BY a",
    "SELECT a, b FROM r ORDER BY b DESC, a ASC",
    "SELECT a FROM r ORDER BY a LIMIT 3",
    "SELECT a FROM r ORDER BY a LIMIT 2 OFFSET 2",
    "SELECT c, count(*) AS n FROM r GROUP BY c ORDER BY n DESC, c ASC",
]


@pytest.mark.parametrize("query", ORDERED_QUERIES)
def test_ordered_agreement(comparator, query):
    ok, ours, theirs = comparator.ordered_match(query)
    assert ok, f"ours={ours} sqlite={theirs}"


class TestDmlAgreement:
    def test_update_then_query(self, comparator):
        comparator.setup(["UPDATE r SET b = b + 1 WHERE c = 'x'"])
        comparator.assert_match("SELECT a, b FROM r")

    def test_delete_then_query(self, comparator):
        comparator.setup(["DELETE FROM r WHERE b IS NULL"])
        comparator.assert_match("SELECT count(*) FROM r")

    def test_insert_select(self, comparator):
        comparator.setup(
            [
                "CREATE TABLE t2 (a INTEGER, b INTEGER)",
                "INSERT INTO t2 SELECT a, b FROM r WHERE a IS NOT NULL",
            ]
        )
        comparator.assert_match("SELECT * FROM t2")


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-5, 5)),
            st.one_of(st.none(), st.integers(0, 3)),
        ),
        min_size=0,
        max_size=25,
    ),
    threshold=st.integers(-5, 5),
)
def test_random_data_filter_and_group(rows, threshold):
    """Property: filtering and grouping agree with sqlite on random data."""
    comp = SqliteComparator()
    try:
        comp.setup(["CREATE TABLE q (x INTEGER, g INTEGER)"])
        for x, g in rows:
            x_sql = "NULL" if x is None else str(x)
            g_sql = "NULL" if g is None else str(g)
            comp.setup([f"INSERT INTO q VALUES ({x_sql}, {g_sql})"])
        comp.assert_match(f"SELECT x FROM q WHERE x > {threshold}")
        comp.assert_match("SELECT g, count(*), sum(x) FROM q GROUP BY g")
        comp.assert_match(f"SELECT count(*) FROM q WHERE x <> {threshold}")
    finally:
        comp.close()
