"""HTAP isolation: snapshot-isolated reads × background maintenance.

The PR-9 acceptance battery.  Storage level: a scan opened before a
write or layout migration streams exactly the pre-write rows; retired
copy-on-write pages are reclaimed once the last snapshot that could see
them is released.  Pager level: the two-thread counter hammer that
regression-tests the unlocked read-modify-write in
``DiskManager.add_bytes`` / ``tag_stats``.  Control level: the
:class:`MaintenanceWorker` lifecycle (wake / pause / resume / drain /
crash), ``Database(background_maintenance=True)`` convergence, and the
durable server's WAL handoff queue — including recovery equivalence
after a simulated crash mid-background-step.  The property test at the
bottom interleaves random DML, a live migration thread and mid-stream
snapshot scans against a single-threaded dict model.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.engine.hybridstore import suggested_tick_budget
from repro.engine.maintenance import MaintenanceWorker
from repro.engine.pager import BufferPool, DiskManager
from repro.engine.schema import TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy
from repro.engine.types import DBType
from repro.server.service import WorkbookService, recover_state


def schema4(group_size=2):
    return TableSchema.from_pairs(
        [
            ("a", DBType.INTEGER),
            ("b", DBType.TEXT),
            ("c", DBType.REAL),
            ("d", DBType.TEXT),
        ],
        group_size=group_size,
    )


def make_store(n_rows=0, page_capacity=8):
    store = GroupedTupleStore(
        schema4(), layout=LayoutPolicy.HYBRID, page_capacity=page_capacity
    )
    for i in range(n_rows):
        store.insert((i, f"t{i}", i * 0.5, f"u{i}"))
    return store


def rows_of(store, snapshot=None):
    names = store.schema.column_names
    return [values for _, values in store.scan_groups(names, snapshot=snapshot)]


def make_service(tmp_path, name="svc", **kwargs) -> WorkbookService:
    kwargs.setdefault("fsync", False)
    kwargs.setdefault("compact_every", 0)
    return WorkbookService(str(tmp_path / name), **kwargs)


def signature(grouping):
    return {frozenset(name.lower() for name in group) for group in grouping}


# -- storage: snapshot isolation ----------------------------------------------


class TestSnapshotIsolation:
    def test_scan_opened_before_write_sees_pre_write_rows(self):
        """The ISSUE's acceptance criterion, at store level: open the
        scan, then insert/update/delete underneath it — the scan streams
        exactly the rows that existed at open."""
        store = make_store(30)
        before = rows_of(store)
        names = store.schema.column_names
        scan = store.scan_groups(names)  # snapshot pinned here
        store.insert((999, "new", 9.9, "new"))
        store.update(0, (-1, "patched", -1.0, "patched"))
        store.delete(5)
        assert [values for _, values in scan] == before
        # A fresh scan sees the post-write world.
        after = rows_of(store)
        assert len(after) == 30  # +1 insert, -1 delete
        assert (-1, "patched", -1.0, "patched") in after
        store.validate()

    def test_scan_survives_concurrent_restructure(self):
        """A restructure swapping every chain mid-scan must not disturb
        an open iterator: it keeps streaming the pinned pre-step chains."""
        store = make_store(60)
        before = rows_of(store)
        names = store.schema.column_names
        scan = store.scan_groups(names)
        seen = [next(scan), next(scan)]  # partially consumed
        store.restructure([["a", "b", "c", "d"]])  # hybrid -> row
        store.restructure([["a"], ["b"], ["c"], ["d"]])  # row -> column
        seen += list(scan)
        assert [values for _, values in seen] == before
        assert rows_of(store) == before  # contents unchanged by migration
        store.validate()

    def test_scan_survives_concurrent_encoding(self):
        store = make_store(80)
        before = rows_of(store)
        scan = store.scan_groups(store.schema.column_names)
        for gi in range(store.n_groups):
            store.encode_group(gi)
        assert [values for _, values in scan] == before
        store.validate()

    def test_batches_survive_concurrent_migration(self):
        store = make_store(64)
        names = store.schema.column_names
        expected = [values for _, values in store.scan_groups(names)]
        batches = store.scan_group_batches(names, batch_size=16)
        first = next(batches)
        store.restructure([["a", "b", "c", "d"]])
        rest = list(batches)
        got = []
        for rids, cols in [first] + rest:
            got += list(zip(*cols))
        assert got == [tuple(v) for v in expected]

    def test_explicit_snapshot_context_manager(self):
        store = make_store(10)
        with store.snapshot() as snap:
            assert store.snapshot_stats()["active_snapshots"] == 1
            before = rows_of(store, snapshot=snap)
            store.insert((100, "x", 1.0, "y"))
            assert rows_of(store, snapshot=snap) == before
        assert store.snapshot_stats()["active_snapshots"] == 0

    def test_pages_reclaimed_after_last_snapshot_releases(self):
        """Copy-on-write retires superseded pages only while a snapshot
        could still read them; releasing the last snapshot frees them and
        the disk page count returns to the no-snapshot trajectory."""
        store = make_store(40)
        disk = store.pool.disk
        snap = store.snapshot()
        baseline_pages = disk.n_pages
        for rid in range(40):
            store.update(rid, (-rid, "w", 0.0, "w"))  # COW under the snapshot
        assert disk.n_pages > baseline_pages  # old images kept alive
        assert store.snapshot_stats()["retired_pages"] > 0
        snap.release()
        stats = store.snapshot_stats()
        assert stats["active_snapshots"] == 0
        assert stats["retired_pages"] == 0  # reclaimed eagerly on release
        store.validate()

    def test_no_snapshot_means_no_cow_overhead(self):
        """With zero open snapshots the write path must free superseded
        pages immediately — no retirement debt accrues."""
        store = make_store(40)
        for rid in range(40):
            store.update(rid, (rid, "w", 0.0, "w"))
        stats = store.snapshot_stats()
        assert stats["retired_pages"] == 0 and stats["retired_tags"] == 0

    def test_stacked_snapshots_release_in_any_order(self):
        store = make_store(20)
        s1 = store.snapshot()
        store.insert((100, "x", 1.0, "x"))
        s2 = store.snapshot()
        store.insert((101, "y", 2.0, "y"))
        assert len(rows_of(store, snapshot=s1)) == 20
        assert len(rows_of(store, snapshot=s2)) == 21
        s1.release()
        assert len(rows_of(store, snapshot=s2)) == 21  # s2 unaffected
        s2.release()
        s2.release()  # idempotent
        assert store.snapshot_stats()["retired_pages"] == 0
        store.validate()

    def test_table_scan_isolated_from_dml(self):
        """Table-level acceptance: presentation order and store chains
        are pinned in one critical section at operator open."""
        db = Database(auto_layout_interval=0)
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        for i in range(25):
            db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        table = db.table("t")
        before = table.rows()
        scan = table.scan()
        db.execute("INSERT INTO t VALUES (999, 'late')")
        db.execute("DELETE FROM t WHERE k = 3")
        assert [row for _, _, row in scan] == before
        assert len(table.rows()) == 25


# -- pager: the two-thread counter hammer (satellite 1) -----------------------


class TestPagerThreadSafety:
    def test_add_bytes_hammer_exact_totals(self):
        """Regression for the unlocked read-modify-write in
        ``DiskManager.add_bytes``: two threads hammering the same tag
        must lose no increments."""
        disk = DiskManager()
        n, per = 2, 20_000

        def hammer():
            for _ in range(per):
                disk.add_bytes("t", bytes_read=1, bytes_written=2)

        threads = [threading.Thread(target=hammer) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = disk.tag_stats("t")
        assert stats.bytes_read == n * per
        assert stats.bytes_written == 2 * n * per

    def test_tag_stats_read_during_hammer_is_consistent(self):
        """tag_stats hands back a snapshot copy; concurrent readers must
        never observe torn or backsliding counters."""
        disk = DiskManager()
        stop = threading.Event()
        bad = []

        def writer():
            while not stop.is_set():
                disk.add_bytes("t", bytes_read=1, bytes_written=1)

        def reader():
            last = 0
            while not stop.is_set():
                stats = disk.tag_stats("t")
                if stats.bytes_read != stats.bytes_written:
                    bad.append((stats.bytes_read, stats.bytes_written))
                if stats.bytes_read < last:
                    bad.append(("backslide", last, stats.bytes_read))
                last = stats.bytes_read
        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start(), r.start()
        time.sleep(0.2)
        stop.set()
        w.join(), r.join()
        assert not bad

    def test_pin_blocks_eviction_and_unpin_releases(self):
        pool = BufferPool(capacity=2, page_capacity=8)
        p1 = pool.new_page("t")
        pool.pin(p1.page_id)
        for _ in range(6):
            pool.new_page("t")  # churn far past capacity
        assert p1.page_id in pool._frames  # pinned page never evicted
        assert pool.pin_count(p1.page_id) == 1
        pool.unpin(p1.page_id)
        assert pool.pin_count(p1.page_id) == 0
        for _ in range(6):
            pool.new_page("t")
        assert len(pool._frames) <= 2 + 1  # eviction works again


# -- control: MaintenanceWorker lifecycle -------------------------------------


class TestMaintenanceWorker:
    def test_wake_runs_beat_until_quiescent(self):
        remaining = [3]
        done = threading.Event()

        def beat():
            if remaining[0] <= 0:
                done.set()
                return False
            remaining[0] -= 1
            return True

        worker = MaintenanceWorker(beat, backoff=0).start()
        worker.wake()
        assert done.wait(5.0)
        worker.stop(drain=False)
        assert remaining[0] == 0
        assert worker.beats >= 3

    def test_pause_blocks_until_beat_finishes_and_resume_continues(self):
        from repro.obs import EventLog

        events = EventLog()
        in_beat = threading.Event()
        release = threading.Event()
        ran_while_paused = []

        def beat():
            in_beat.set()
            release.wait(5.0)
            ran_while_paused.append(worker.paused)
            return False

        worker = MaintenanceWorker(beat, events=events).start()
        worker.wake()
        assert in_beat.wait(5.0)
        pauser_done = threading.Event()

        def pauser():
            worker.pause()
            pauser_done.set()

        t = threading.Thread(target=pauser)
        t.start()
        time.sleep(0.05)
        assert not pauser_done.is_set()  # pause() waits for in-flight beat
        release.set()
        t.join(5.0)
        assert pauser_done.is_set() and worker.paused
        # While paused, wakes do not beat.
        beats_before = worker.beats
        worker.wake()
        time.sleep(0.05)
        assert worker.beats == beats_before
        worker.resume()
        worker.stop(drain=False)
        kinds = [e.kind for e in events]
        assert "maintenance_pause" in kinds and "maintenance_resume" in kinds

    def test_drain_runs_on_callers_thread_and_records_event(self):
        from repro.obs import EventLog

        events = EventLog()
        remaining = [5]
        beat_threads = set()

        def beat():
            beat_threads.add(threading.current_thread())
            if remaining[0] <= 0:
                return False
            remaining[0] -= 1
            return True

        worker = MaintenanceWorker(beat, events=events)  # never started
        ran = worker.drain()
        assert ran == 5 and remaining[0] == 0
        assert beat_threads == {threading.current_thread()}
        [drain_event] = events.of_kind("maintenance_drain")
        assert drain_event.data["beats"] == 5

    def test_beat_errors_are_counted_not_fatal(self):
        from repro.obs import EventLog

        events = EventLog()
        calls = []

        def beat():
            calls.append(1)
            raise RuntimeError("boom")

        worker = MaintenanceWorker(beat, events=events).start()
        worker.wake()
        deadline = time.monotonic() + 5.0
        while not calls and time.monotonic() < deadline:
            time.sleep(0.005)
        worker.stop(drain=False)
        assert worker.errors >= 1
        assert "boom" in (worker.last_error or "")
        assert events.of_kind("maintenance_error")
        assert worker.running is False

    def test_worker_exits_when_owner_collected(self):
        import gc

        class Owner:
            def beat(self):
                return False

        owner = Owner()
        worker = MaintenanceWorker(owner.beat).start()
        assert worker.running
        del owner
        gc.collect()
        worker.wake()
        deadline = time.monotonic() + 5.0
        while worker.running and time.monotonic() < deadline:
            time.sleep(0.005)
        assert not worker.running  # thread ended itself; no stop() needed


# -- control: Database / service wiring ---------------------------------------


class TestBackgroundDatabase:
    def test_background_migration_converges(self):
        db = Database(auto_layout_interval=0, background_maintenance=True)
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        for i in range(40):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i}, {i})")
        table = db.table("t")
        before = table.rows()
        table.migrate_layout([["a"], ["b"], ["c"], ["d"]])
        worker = db.ensure_maintenance_worker()
        worker.wake()
        deadline = time.monotonic() + 10.0
        while table.migration_active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not table.migration_active
        assert signature(table.schema.groups) == signature(
            [["a"], ["b"], ["c"], ["d"]]
        )
        assert table.rows() == before
        table.validate()
        db.close()
        assert not worker.running

    def test_scan_open_during_background_migration_is_isolated(self):
        db = Database(auto_layout_interval=0, background_maintenance=True)
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ({i}, {i + 1}, {i + 2}, {i + 3})")
        table = db.table("t")
        before = table.rows()
        scan = table.scan()  # snapshot pinned now
        table.migrate_layout([["a", "b", "c", "d"]])
        db.ensure_maintenance_worker().wake()
        deadline = time.monotonic() + 10.0
        while table.migration_active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not table.migration_active
        assert [row for _, _, row in scan] == before
        db.close()

    def test_env_flag_defaults_background_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_BG_MAINT", "1")
        assert Database().background_maintenance
        monkeypatch.setenv("REPRO_BG_MAINT", "0")
        assert not Database().background_maintenance
        assert Database(background_maintenance=True).background_maintenance

    def test_auto_tick_cadence_wakes_worker_not_inline(self):
        db = Database(auto_layout_interval=2, background_maintenance=True)
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        for i in range(12):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i}, {i})")
        worker = db.maintenance_worker
        assert worker is not None and worker.running
        db.close()

    def test_suggested_tick_budget_floor_and_scale(self):
        assert suggested_tick_budget(0, 64) == 8
        assert suggested_tick_budget(10_000, 64) > 8
        small = suggested_tick_budget(10_000, 64)
        assert suggested_tick_budget(40_000, 64) > small


class TestBackgroundService:
    def _build(self, tmp_path, **kwargs):
        service = make_service(tmp_path, **kwargs)
        session = service.connect("alice")
        service.execute(
            session.session_id, "CREATE TABLE t (a INT, b INT, c INT, d INT)"
        )
        wide = 2**33
        for start in range(0, 200, 10):
            values = ",".join(
                f"({j * wide},{j * wide + 1},{j * wide + 2},{j * wide + 3})"
                for j in range(start, start + 10)
            )
            service.execute(session.session_id, f"INSERT INTO t VALUES {values}")
        return service, session

    def _wait_done(self, table, timeout=10.0):
        deadline = time.monotonic() + timeout
        while table.migration_active and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not table.migration_active

    @staticmethod
    def _arm(service, session, groups):
        service.apply(
            session.session_id,
            {"type": "layout_set", "table": "t", "mode": "target", "groups": groups},
        )

    def test_background_steps_reach_wal_via_queue_and_replay(self, tmp_path):
        service, session = self._build(tmp_path, background_maintenance=True)
        table = service.workbook.database.table("t")
        self._arm(service, session, [["a"], ["b"], ["c"], ["d"]])
        service.ensure_maintenance_worker().wake()
        self._wait_done(table)
        final_groups = signature(table.schema.groups)
        final_rows = table.rows()
        service.close()  # drains the worker and the layout-op queue
        kinds = [r.op["type"] for r in read_wal_records(tmp_path / "svc")]
        assert "layout_step" in kinds
        recovery = recover_state(str(tmp_path / "svc"))
        recovered = recovery.workbook.database.table("t")
        assert signature(recovered.schema.groups) == final_groups
        assert recovered.rows() == final_rows
        recovered.validate()

    def test_crash_during_background_step_recovers_equivalently(self, tmp_path):
        """Kill the worker without draining (the crash model): the WAL
        holds some prefix of the layout_step history; recovery replays
        that prefix and re-arms the rest — contents and (eventually)
        layout converge to the same place."""
        service, session = self._build(tmp_path, background_maintenance=True)
        table = service.workbook.database.table("t")
        expected_rows = table.rows()
        self._arm(service, session, [["a"], ["b"], ["c"], ["d"]])
        worker = service.ensure_maintenance_worker()
        worker.wake()
        time.sleep(0.02)  # let *some* steps land (any prefix is valid)
        service.close(drain=False)  # crash: no drain, queue abandoned
        recovery = recover_state(str(tmp_path / "svc"))
        recovered = recovery.workbook.database.table("t")
        assert recovered.rows() == expected_rows
        recovered.validate()
        # The layout_set record was durably applied before the crash, so
        # recovery re-arms the unfinished migration; finishing it lands
        # on the original target with the same contents.
        reopened = make_service(tmp_path)
        rtable = reopened.workbook.database.table("t")
        assert rtable.rows() == expected_rows
        for _ in range(200):
            if not rtable.migration_active:
                break
            reopened.maintenance_tick(steps=4)
        assert not rtable.migration_active
        assert signature(rtable.schema.groups) == signature(
            [["a"], ["b"], ["c"], ["d"]]
        )
        rtable.validate()
        reopened.close()

    def test_stats_summary_surfaces_maintenance(self, tmp_path):
        service, session = self._build(tmp_path, background_maintenance=True)
        table = service.workbook.database.table("t")
        table.migrate_layout([["a"], ["b"], ["c"], ["d"]])
        service.ensure_maintenance_worker().wake()
        self._wait_done(table)
        summary = service.stats_summary()
        maint = summary["maintenance"]
        assert maint["background"] is True
        assert maint["worker_beats"] >= 1
        assert maint["ticks"] >= 1
        assert maint["blocks"] >= 1
        service.close()

    def test_inline_mode_unchanged(self, tmp_path):
        # Pinned off explicitly so the assertion holds under the
        # REPRO_BG_MAINT=1 CI pass too.
        service, session = self._build(tmp_path, background_maintenance=False)
        assert service.background_maintenance is False
        assert service.maintenance_worker is None
        summary = service.stats_summary()
        assert summary["maintenance"]["background"] is False
        service.close()


def read_wal_records(directory):
    from repro.server.service import WAL_FILENAME
    from repro.server.wal import read_wal

    records, _, _ = read_wal(str(directory / WAL_FILENAME))
    return records


# -- property: random DML × migrations × snapshot scans ≡ dict model ----------


@st.composite
def workloads(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 10_000)),
                st.tuples(st.just("update"), st.integers(0, 60)),
                st.tuples(st.just("delete"), st.integers(0, 60)),
                st.tuples(st.just("scan"), st.just(0)),
            ),
            min_size=5,
            max_size=40,
        )
    )
    seed_rows = draw(st.integers(5, 30))
    return seed_rows, ops


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_property_dml_migration_scan_equivalence(workload):
    """Random DML on the main thread, a migration thread stepping the
    layout underneath, snapshot scans opened mid-stream: every scan must
    equal the dict model at its open point, and the final store state
    must equal the final model."""
    seed_rows, ops = workload
    store = make_store(seed_rows)
    model = {rid: (rid, f"t{rid}", rid * 0.5, f"u{rid}") for rid in range(seed_rows)}
    next_val = [10_000]
    stop = threading.Event()
    targets = [
        [["a", "b", "c", "d"]],
        [["a"], ["b"], ["c"], ["d"]],
        [["a", "b"], ["c", "d"]],
    ]

    def migrator():
        i = 0
        while not stop.is_set():
            store.restructure(targets[i % len(targets)])
            i += 1

    thread = threading.Thread(target=migrator)
    thread.start()
    try:
        open_scans = []
        for kind, arg in ops:
            with store.mutation_lock:
                # One critical section per op: mutate store and model
                # atomically so the model is exact (the migrator thread
                # only changes layout, never contents).
                if kind == "insert":
                    row = (arg, f"t{arg}", arg * 0.5, f"u{arg}")
                    rid = store.insert(row)
                    model[rid] = row
                elif kind == "update" and model:
                    rid = sorted(model)[arg % len(model)]
                    val = next_val[0]
                    next_val[0] += 1
                    row = (val, f"t{val}", val * 0.5, f"u{val}")
                    store.update(rid, row)
                    model[rid] = row
                elif kind == "delete" and model:
                    rid = sorted(model)[arg % len(model)]
                    store.delete(rid)
                    del model[rid]
                elif kind == "scan":
                    open_scans.append(
                        (store.scan_groups(store.schema.column_names), dict(model))
                    )
        for scan, model_at_open in open_scans:
            got = {rid: tuple(values) for rid, values in scan}
            assert got == model_at_open
    finally:
        stop.set()
        thread.join(10.0)
    final = {rid: tuple(values) for rid, values in
             store.scan_groups(store.schema.column_names)}
    assert final == model
    store.validate()
    stats = store.snapshot_stats()
    assert stats["active_snapshots"] == 0 and stats["retired_pages"] == 0
