"""Tests for schema inference and import/export (Feature 2, Fig 2b)."""

import pytest

from repro import Database, Workbook
from repro.core.table_io import (
    create_table_from_grid,
    export_table_csv,
    import_csv_table,
    infer_table_schema,
)
from repro.engine.types import DBType
from repro.errors import ImportExportError


class TestInference:
    def test_header_detected(self):
        inferred = infer_table_schema([["id", "name"], [1, "x"], [2, "y"]])
        assert inferred.has_header
        assert inferred.columns == ["id", "name"]
        assert inferred.dtypes == [DBType.INTEGER, DBType.TEXT]
        assert len(inferred.data_rows) == 2

    def test_no_header_all_text(self):
        inferred = infer_table_schema([["a", "b"], ["c", "d"], ["e", "f"]])
        assert not inferred.has_header
        assert inferred.columns == ["a", "b"]  # column letters
        assert len(inferred.data_rows) == 3

    def test_no_header_numbers(self):
        inferred = infer_table_schema([[1, 2], [3, 4]])
        assert not inferred.has_header
        assert inferred.dtypes == [DBType.INTEGER, DBType.INTEGER]

    def test_type_widening(self):
        inferred = infer_table_schema([["v"], [1], [2.5], [None]])
        assert inferred.dtypes == [DBType.REAL]

    def test_mixed_becomes_text(self):
        inferred = infer_table_schema([["v"], [1], ["x"]])
        assert inferred.dtypes == [DBType.TEXT]

    def test_all_null_column_defaults_to_text(self):
        inferred = infer_table_schema([["v"], [None], [None]])
        assert inferred.dtypes == [DBType.TEXT]

    def test_header_names_sanitised(self):
        inferred = infer_table_schema([["Student ID", "GPA (4.0)"], [1, 3.5]])
        assert inferred.columns == ["student_id", "gpa_4_0"]

    def test_duplicate_headers_disambiguated_or_fallback(self):
        inferred = infer_table_schema([["x", "x"], [1, 2]])
        # duplicate names -> not a valid header row; falls back to letters
        assert not inferred.has_header

    def test_ragged_rows_padded(self):
        inferred = infer_table_schema([["a", "b"], [1], [2, 3]])
        assert inferred.data_rows[0] == (1, None)

    def test_empty_rejected(self):
        with pytest.raises(ImportExportError):
            infer_table_schema([])

    def test_first_col_label_offset(self):
        inferred = infer_table_schema([[1, 2]], first_col_label=3)
        assert inferred.columns == ["d", "e"]


class TestCreateFromGrid:
    def test_create_and_query(self, db):
        table = create_table_from_grid(
            db, "people", [["id", "name"], [1, "ann"], [2, "bob"]],
            primary_key="id",
        )
        assert table.schema.primary_key == "id"
        assert db.execute("SELECT name FROM people WHERE id=2").scalar() == "bob"

    def test_bad_primary_key(self, db):
        with pytest.raises(ImportExportError):
            create_table_from_grid(db, "t", [["a"], [1]], primary_key="zz")

    def test_group_size_layout(self, db):
        table = create_table_from_grid(
            db, "wide", [["a", "b", "c", "d"], [1, 2, 3, 4]], group_size=2
        )
        assert table.schema.n_groups == 2


class TestCsv:
    def test_roundtrip(self, db, tmp_path):
        create_table_from_grid(
            db, "src", [["id", "name", "score"], [1, "ann", 9.5], [2, "bob", 8.0]],
            primary_key="id",
        )
        path = tmp_path / "out.csv"
        assert export_table_csv(db, "src", str(path)) == 2
        table = import_csv_table(db, str(path), "dst", primary_key="id")
        assert table.n_rows == 2
        assert db.execute("SELECT score FROM dst WHERE id=1").scalar() == 9.5

    def test_csv_type_coercion(self, db, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("id,flag,when\n1,TRUE,2021-01-02\n")
        table = import_csv_table(db, str(path), "t")
        row = table.rows()[0]
        assert row[1] is True
        assert str(row[2]) == "2021-01-02"

    def test_empty_csv_rejected(self, db, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ImportExportError):
            import_csv_table(db, str(path), "t")

    def test_export_nulls_as_empty(self, db, tmp_path):
        db.execute("CREATE TABLE n (a INT, b TEXT)")
        db.execute("INSERT INTO n VALUES (1, NULL)")
        path = tmp_path / "n.csv"
        export_table_csv(db, "n", str(path))
        assert path.read_text().splitlines()[1] == "1,"


class TestWorkbookExport:
    def test_create_table_from_range_full_cycle(self, wb):
        """Fig 2b: range -> table -> DBTABLE replacement, then live sync."""
        wb.sheet("Sheet1").set_grid(
            "B2", [["pid", "pname"], [1, "x"], [2, "y"]]
        )
        table = wb.create_table_from_range(
            "Sheet1", "B2:C4", "products", primary_key="pid"
        )
        assert table.n_rows == 2
        # The range is now a DBTABLE region anchored at B2.
        region = wb.regions.all()[0]
        assert region.context.kind == "dbtable"
        assert region.context.anchor.to_a1(include_sheet=False) == "B2"
        # Two-way: edit through the sheet reaches the table.
        wb.set("Sheet1", "C3", "X!")
        assert wb.execute("SELECT pname FROM products WHERE pid=1").scalar() == "X!"

    def test_create_from_range_with_formulas_uses_values(self, wb):
        wb.sheet("Sheet1").set_grid("A1", [["v"]])
        wb.set("Sheet1", "A2", 4)
        wb.set("Sheet1", "A3", "=A2*10")
        wb.create_table_from_range("Sheet1", "A1:A3", "calc")
        rows = wb.execute("SELECT v FROM calc").rows
        assert sorted(r[0] for r in rows) == [4, 40]
