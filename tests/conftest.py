"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro import Database, Workbook
from repro.workloads.datasets import (
    generate_grades_data,
    generate_movie_data,
    load_grades_database,
    load_movie_database,
)


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def wb() -> Workbook:
    return Workbook()


@pytest.fixture
def movie_db() -> Database:
    """Small Fig 2a database: 50 movies, 30 actors, 2 links per movie."""
    data = generate_movie_data(n_movies=50, n_actors=30, links_per_movie=2, seed=7)
    return load_movie_database(data)


@pytest.fixture
def grades_db() -> Database:
    """The §1 motivating scenario at paper scale (100 students)."""
    return load_grades_database(generate_grades_data(n_students=100, seed=13))


@pytest.fixture
def movie_wb(movie_db) -> Workbook:
    return Workbook(database=movie_db)
