"""Vectorized batch execution over compressed column fragments.

Coverage for the batched-executor tentpole: codec round-trips with exact
types, vectorized-vs-tuple path equivalence (rows, order, AccessStats
charges) under hypothesis-generated schemas and encodings, encodings
surviving snapshot + WAL crash recovery, DML riding the narrow batched
predicate scan (strictly fewer page reads than the full-row path, trace
counters for both WHERE shapes), and the bytes-decoded feedback surfaced
through per-group tag stats and the CLI ``layout-stats`` report.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import encoding
from repro.engine.database import Database
from repro.engine.schema import TableSchema
from repro.engine.store import DEFAULT_BATCH_SIZE, LayoutPolicy
from repro.engine.types import DBType
from repro.server.service import WorkbookService


# -- codecs ------------------------------------------------------------------


values_strategy = st.lists(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**40), 2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.sampled_from(["", "a", "b", "tag"]),
    ),
    max_size=60,
)


class TestCodecs:
    @given(values_strategy)
    @settings(max_examples=60, deadline=None)
    def test_chosen_encoding_round_trips_exactly(self, values):
        kind, size = encoding.choose_encoding(values)
        payload = encoding.encode_column(values, kind)
        decoded = encoding.decode_column(kind, payload)
        assert decoded == values
        # Exact types too: 1, True and 1.0 must not swap on the way back.
        assert [type(v) for v in decoded] == [type(v) for v in values]
        assert size <= encoding.plain_size(len(values))

    def test_low_cardinality_prefers_dict_or_rle(self):
        kind, size = encoding.choose_encoding(["x", "y"] * 50)
        assert kind in ("dict", "rle")
        assert size < encoding.plain_size(100)

    def test_small_ints_pack(self):
        kind, size = encoding.choose_encoding(list(range(100)))
        assert kind == "packed"
        assert size == 100  # one byte each

    def test_distinct_wide_ints_stay_plain(self):
        kind, size = encoding.choose_encoding(
            [i * 2**33 for i in range(100)]
        )
        assert kind in ("plain", "packed")
        assert size >= encoding.plain_size(100)


# -- vectorized vs tuple path equivalence ------------------------------------


COLUMN_TYPES = {
    "INT": st.one_of(st.none(), st.integers(-5, 5), st.integers(-(2**40), 2**40)),
    "TEXT": st.one_of(st.none(), st.sampled_from(["", "a", "b", "abc"])),
    "REAL": st.one_of(
        st.none(), st.floats(allow_nan=False, allow_infinity=False)
    ),
}

PREDICATES = [
    ("c0 = ?", 1),
    ("c0 < ?", 1),
    ("c0 >= ? AND c0 IS NOT NULL", 1),
    ("NOT (c0 > ?)", 1),
    ("c0 IS NULL", 0),
    ("c0 IN (?, ?)", 2),
    ("c0 < ? OR c0 IS NULL", 1),
]


@st.composite
def table_cases(draw):
    n_cols = draw(st.integers(min_value=1, max_value=4))
    types = [
        draw(st.sampled_from(sorted(COLUMN_TYPES))) for _ in range(n_cols)
    ]
    n_rows = draw(st.integers(min_value=0, max_value=40))
    rows = [
        tuple(draw(COLUMN_TYPES[types[c]]) for c in range(n_cols))
        for _ in range(n_rows)
    ]
    encode = draw(st.booleans())
    where, arity = draw(st.sampled_from(PREDICATES))
    params = [draw(COLUMN_TYPES[types[0]]) for _ in range(arity)]
    return types, rows, encode, where, params


def build_pair(types, rows, encode):
    """Two databases with identical contents; the second runs the
    retained tuple-at-a-time path."""
    pair = []
    for vectorized in (True, False):
        db = Database(vectorized=vectorized, auto_layout_interval=0)
        columns = ", ".join(f"c{i} {t}" for i, t in enumerate(types))
        db.execute(f"CREATE TABLE t ({columns})")
        table = db.table("t")
        for row in rows:
            table.insert(row, emit=False)
        if encode and rows:
            for group in range(table.store.n_groups):
                table.store.encode_group(group)
        table.store.access_stats.reset()
        pair.append(db)
    return pair


@given(table_cases())
@settings(max_examples=40, deadline=None)
def test_paths_agree_on_rows_order_and_stats(case):
    types, rows, encode, where, params = case
    vector_db, tuple_db = build_pair(types, rows, encode)
    probes = [
        ("SELECT * FROM t", []),
        ("SELECT c0 FROM t", []),
        (f"SELECT c0 FROM t WHERE {where}", params),
        ("SELECT COUNT(*) FROM t", []),
    ]
    for sql, sql_params in probes:
        expected = tuple_db.execute(sql, sql_params)
        actual = vector_db.execute(sql, sql_params)
        assert actual.rows == expected.rows, sql
        assert actual.columns == expected.columns
    # Both paths must charge the advisor's workload window identically —
    # the layout feedback loop cannot depend on the executor mode.
    assert (
        vector_db.table("t").store.access_stats.to_dict()
        == tuple_db.table("t").store.access_stats.to_dict()
    )


def test_row_fallback_predicates_agree():
    # LIKE does not batch-compile: the bitmap path must fall back to the
    # per-row closure for it and still agree with the tuple path.
    vector_db, tuple_db = build_pair(["TEXT", "INT"], [], encode=False)
    for db in (vector_db, tuple_db):
        for i in range(50):
            db.execute("INSERT INTO t VALUES (?, ?)", [f"tag{i % 4}", i])
    sql = "SELECT c1 FROM t WHERE c0 LIKE 'tag1%' AND c1 < 30"
    assert vector_db.execute(sql).rows == tuple_db.execute(sql).rows


def test_batches_respect_batch_size():
    db = Database(auto_layout_interval=0)
    db.execute("CREATE TABLE t (a INT, b INT)")
    table = db.table("t")
    for i in range(DEFAULT_BATCH_SIZE + 500):
        table.insert((i, i % 3), emit=False)
    batches = list(table.scan_column_batches(["a"], batch_size=256))
    assert all(len(rids) <= 256 for _, rids, _ in batches)
    assert sum(len(rids) for _, rids, _ in batches) == DEFAULT_BATCH_SIZE + 500
    # Presentation order is preserved across batch boundaries.
    flat = [value for _, _, cols in batches for value in cols[0]]
    assert flat == [row[0] for row in db.execute("SELECT a FROM t").rows]


# -- encodings under maintenance, snapshot and crash recovery ----------------


def drive_encoding(db, name="t"):
    table = db.table(name)
    db.execute(f"ALTER TABLE {name} SET LAYOUT AUTO")
    for _ in range(30):
        list(table.store.scan_column(table.schema.column_names[0]))
    report = table.layout_tick()
    return table, report


def test_encoding_tick_encodes_hot_compressible_group():
    db = Database(auto_layout_interval=0)
    db.execute("CREATE TABLE t (a INT, b TEXT)")
    table = db.table("t")
    for i in range(800):
        table.insert((i % 10, f"tag{i % 3}"), emit=False)
    table, report = drive_encoding(db)
    assert report.get("encoded_groups")
    assert table.store.encoded_group_count >= 1
    ratios = table.store.column_encoding_ratios()
    assert ratios and all(r > 1.05 for r in ratios.values())
    # The maintenance event log records the encode with its ratio.
    kinds = [event.kind for event in table.events.tail(20)]
    assert "encode_group" in kinds
    table.validate()


def test_encoding_failure_is_remembered_not_retried():
    db = Database(auto_layout_interval=0)
    db.execute("CREATE TABLE t (a INT)")
    table = db.table("t")
    for i in range(200):
        table.insert((i * 2**33,), emit=False)  # incompressible
    assert table.store.encode_group(0) == 0
    assert not table.store.group_encoded(0)
    assert table.store.encoding_tick() == []  # failed flag skips the group


def test_mutations_thaw_pages_and_reads_do_not():
    db = Database(auto_layout_interval=0)
    db.execute("CREATE TABLE t (a INT, b INT)")
    table = db.table("t")
    for i in range(300):
        table.insert((i % 5, i % 7), emit=False)
    store = table.store
    store.encode_group(0)
    assert store.group_encoded(0)
    # Point reads and scans leave the encoded chain alone.
    store.get(store.rids()[10])
    assert db.execute("SELECT a FROM t WHERE b = 2").rows
    assert store.group_encoded(0)
    # A mutation thaws (only) the page holding the row.
    db.execute("UPDATE t SET a = 99 WHERE b = 3 AND a = 1")
    assert db.execute("SELECT COUNT(*) FROM t WHERE a = 99").rows[0][0] > 0
    store.validate()


def test_encodings_survive_snapshot_and_wal_recovery(tmp_path):
    service = WorkbookService(str(tmp_path / "svc"), fsync=False, compact_every=0)
    session = service.connect("alice")
    service.execute(session.session_id, "CREATE TABLE t (a INT, b TEXT)")
    for start in range(0, 600, 10):
        values = ",".join(
            f"({j % 12}, 'tag{j % 3}')" for j in range(start, start + 10)
        )
        service.execute(session.session_id, f"INSERT INTO t VALUES {values}")
    table = service.workbook.database.table("t")
    table.store.encode_group(0)
    ratio = table.store.group_encoding_ratio(0)
    assert table.store.group_encoded(0)
    expected = service.execute(session.session_id, "SELECT a, b FROM t").result.rows
    # Snapshot with the chain encoded, then write more rows so recovery
    # must also replay a WAL suffix on top of the re-encoded pages.
    service.compact()
    service.execute(session.session_id, "INSERT INTO t VALUES (99, 'late')")
    service.close()

    reopened = WorkbookService(str(tmp_path / "svc"), fsync=False, compact_every=0)
    store = reopened.workbook.database.table("t").store
    assert store.group_encoded(0)
    assert store.group_encoding_ratio(0) == pytest.approx(ratio, rel=0.2)
    session2 = reopened.connect("alice")
    rows = reopened.execute(session2.session_id, "SELECT a, b FROM t").result.rows
    assert rows == expected + [(99, "late")]
    store.validate()
    reopened.close()


# -- DML on the narrow batched predicate scan --------------------------------


def build_dml_db(vectorized: bool) -> Database:
    db = Database(
        vectorized=vectorized,
        page_capacity=16,
        buffer_frames=8,
        auto_layout_interval=0,
    )
    schema = TableSchema.from_pairs(
        [(f"c{i}", DBType.INTEGER) for i in range(8)]
    )
    db.create_table("t", schema, layout=LayoutPolicy.COLUMN)
    table = db.table("t")
    for i in range(400):
        table.insert(tuple((i * 7 + j) % 1000 for j in range(8)), emit=False)
    db.checkpoint()
    db.catalog.pool.drop_cache()
    db.reset_io_stats()
    return db


def dml_page_reads(db: Database, sql: str) -> int:
    before = db.catalog.pool.stats.snapshot()
    db.execute(sql)
    return db.catalog.pool.stats.delta(before).reads


@pytest.mark.parametrize(
    "sql",
    [
        "UPDATE t SET c7 = -1 WHERE c0 = 7",
        "DELETE FROM t WHERE c0 = 7",
    ],
)
def test_dml_where_reads_fewer_pages_than_full_row_path(sql):
    narrow = dml_page_reads(build_dml_db(vectorized=True), sql)
    full = dml_page_reads(build_dml_db(vectorized=False), sql)
    assert narrow < full, f"{sql!r}: narrow={narrow} full={full}"
    # Same logical outcome either way.
    probe = "SELECT COUNT(*), SUM(c7) FROM t"
    fast, slow = build_dml_db(True), build_dml_db(False)
    fast.execute(sql)
    slow.execute(sql)
    assert fast.execute(probe).rows == slow.execute(probe).rows


def test_dml_where_scans_only_referenced_columns():
    db = build_dml_db(vectorized=True)
    _, trace = db.trace_statement("UPDATE t SET c7 = 0 WHERE c0 < 35")
    scan = _find_prefix(trace, "DmlScan")
    assert scan is not None
    # Zone maps may prune pages the predicate provably misses, so the
    # scan examines at most every row and at least the matches.
    assert 15 <= scan.counters["rows_scanned"] <= 400
    assert scan.counters["cols_read"] == 1
    assert scan.counters["batches"] >= 1
    assert scan.counters["rows_matched"] == 15
    assert (
        scan.counters["rows_per_batch"]
        == scan.counters["rows_scanned"] // scan.counters["batches"]
    )


def test_dml_without_where_short_circuits_predicate_path():
    for sql, remaining in [("UPDATE t SET c7 = 0", 400), ("DELETE FROM t", 0)]:
        db = build_dml_db(vectorized=True)
        result, trace = db.trace_statement(sql)
        # No predicate scan at all: every row is a target, so no DmlScan
        # span exists and the rowcount covers the whole table.
        assert _find_prefix(trace, "DmlScan") is None
        assert result.rowcount == 400
        assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] == remaining


def _find_prefix(span, prefix):
    if span.name.startswith(prefix):
        return span
    for child in span.children:
        hit = _find_prefix(child, prefix)
        if hit is not None:
            return hit
    return None


# -- bytes-decoded feedback --------------------------------------------------


def test_scan_bytes_feed_group_tag_stats_and_cli():
    db = Database(auto_layout_interval=0)
    db.execute("CREATE TABLE t (a INT, b TEXT)")
    table = db.table("t")
    for i in range(600):
        table.insert((i % 9, f"tag{i % 3}"), emit=False)
    store = table.store
    plain_before = store.bytes_decoded
    list(store.scan_column("a"))
    plain_cost = store.bytes_decoded - plain_before
    assert plain_cost == 600 * encoding.PLAIN_VALUE_BYTES

    store.encode_group(0)
    encoded_before = store.bytes_decoded
    list(store.scan_column("a"))
    encoded_cost = store.bytes_decoded - encoded_before
    assert 0 < encoded_cost < plain_cost
    # The same bytes land on the per-group pager tag the advisor reads.
    assert store.group_io_stats(0).bytes_read >= plain_cost + encoded_cost
    summary = store.group_summary()[0]
    assert summary["encoded"] and summary["ratio"] > 1.05
    assert summary["io"]["bytes_read"] >= plain_cost + encoded_cost

    from repro.cli import DataSpreadShell

    shell = DataSpreadShell()
    shell.workbook.database = db
    report = shell.handle_line("layout-stats t")
    assert "bytes decoded" in report
    assert "encoded" in report


def test_cost_model_prices_encoded_groups_cheaper():
    from repro.engine.hybridstore import estimate_workload_blocks, pages_for_group
    from repro.engine.store import AccessStats

    assert pages_for_group(100, 1, 16, ratio=4.0) < pages_for_group(100, 1, 16)
    stats = AccessStats()
    stats.column("a").scans = 10
    grouping = [["a"], ["b"]]
    plain = estimate_workload_blocks(grouping, stats, 1000, 16)
    encoded = estimate_workload_blocks(
        grouping, stats, 1000, 16, ratios={"a": 4.0}
    )
    assert encoded < plain
