"""Tests for the ASCII renderer and the interactive shell."""

import pytest

from repro import Workbook
from repro.cli import DataSpreadShell
from repro.core.render import render_range, render_window


class TestRenderer:
    def test_basic_grid(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "B2", "hello")
        text = render_window(wb, "Sheet1", n_rows=3, n_cols=3)
        lines = text.splitlines()
        assert "A" in lines[0] and "B" in lines[0] and "C" in lines[0]
        assert lines[2].startswith("1")
        assert "hello" in text

    def test_formulas_render_computed_values(self, wb):
        wb.set("Sheet1", "A1", 6)
        wb.set("Sheet1", "A2", "=A1*7")
        text = render_window(wb, "Sheet1", n_rows=2, n_cols=1)
        assert "42" in text

    def test_render_range(self, wb):
        wb.sheet("Sheet1").set_grid("C3", [[1, 2], [3, 4]])
        text = render_range(wb, "Sheet1", "C3:D4")
        lines = text.splitlines()
        assert lines[0].split() == ["C", "D"]
        assert lines[2].split() == ["3", "1", "2"]

    def test_long_values_clipped(self, wb):
        wb.set("Sheet1", "A1", "x" * 50)
        text = render_window(wb, "Sheet1", n_rows=1, n_cols=1)
        assert "…" in text

    def test_offset_window_row_labels(self, wb):
        wb.set("Sheet1", "A100", 5)
        text = render_window(wb, "Sheet1", top=99, n_rows=1, n_cols=1)
        assert text.splitlines()[-1].startswith("100")


class TestShell:
    @pytest.fixture
    def shell(self):
        return DataSpreadShell()

    def test_assign_and_read(self, shell):
        out = shell.handle_line("A1 = 42")
        assert "42" in out
        assert shell.workbook.get("Sheet1", "A1") == 42

    def test_assign_formula(self, shell):
        shell.handle_line("A1 = 6")
        out = shell.handle_line("A2 = =A1*7")
        assert "42" in out

    def test_sql_select_renders_table(self, shell):
        shell.handle_line("sql CREATE TABLE t (x INT)")
        shell.handle_line("sql INSERT INTO t VALUES (1), (2)")
        out = shell.handle_line("sql SELECT x FROM t ORDER BY x")
        assert "x" in out.splitlines()[0]
        assert out.splitlines()[2].strip() == "1"

    def test_sql_dml_reports_rowcount(self, shell):
        shell.handle_line("sql CREATE TABLE t (x INT)")
        out = shell.handle_line("sql INSERT INTO t VALUES (1), (2)")
        assert "2 rows affected" in out

    def test_show_window(self, shell):
        shell.handle_line("A1 = 9")
        out = shell.handle_line("show")
        assert "9" in out

    def test_show_explicit_range(self, shell):
        shell.handle_line("B2 = 7")
        out = shell.handle_line("show B2:B2")
        assert "7" in out

    def test_goto_scrolls(self, shell):
        shell.handle_line("goto A50")
        assert shell.top == 49

    def test_sheet_switch_creates(self, shell):
        out = shell.handle_line("sheet Data")
        assert "Data" in out
        assert "Data" in shell.workbook.sheet_names()

    def test_sheet_list(self, shell):
        out = shell.handle_line("sheet")
        assert "Sheet1" in out

    def test_tables_listing(self, shell):
        assert "(no tables)" in shell.handle_line("tables")
        shell.handle_line("sql CREATE TABLE t (x INT)")
        assert "t (0 rows)" in shell.handle_line("tables")

    def test_regions_listing(self, shell):
        shell.handle_line("sql CREATE TABLE t (x INT PRIMARY KEY)")
        shell.workbook.dbtable("Sheet1", "A1", "t")
        out = shell.handle_line("regions")
        assert "dbtable" in out

    def test_stats(self, shell):
        out = shell.handle_line("stats")
        assert "sheets" in out

    def test_errors_are_caught(self, shell):
        out = shell.handle_line("sql SELECT * FROM missing")
        assert out.startswith("error:")

    def test_quit(self, shell):
        assert shell.handle_line("quit") == "bye"
        assert not shell.running

    def test_unknown_command(self, shell):
        assert "unrecognised" in shell.handle_line("frobnicate")

    def test_help(self, shell):
        assert "DBSQL" in shell.handle_line("help") or "sql" in shell.handle_line("help")

    def test_save_and_load_via_shell(self, shell, tmp_path):
        shell.handle_line("A1 = 11")
        path = str(tmp_path / "wb.json")
        assert "saved" in shell.handle_line(f"save {path}")
        fresh = DataSpreadShell()
        assert "loaded" in fresh.handle_line(f"load {path}")
        assert fresh.workbook.get("Sheet1", "A1") == 11

    def test_full_demo_via_shell(self, shell):
        """Drive Feature 1+3 through the shell end to end."""
        shell.handle_line("sql CREATE TABLE m (id INT PRIMARY KEY, y INT)")
        shell.handle_line("sql INSERT INTO m VALUES (1, 1990), (2, 2005)")
        shell.handle_line("B1 = 2000")
        shell.workbook.dbsql(
            "Sheet1", "B3", "SELECT id FROM m WHERE y > RANGEVALUE(B1)"
        )
        assert shell.workbook.get("Sheet1", "B3") == 2
        shell.handle_line("B1 = 1980")
        assert shell.workbook.get("Sheet1", "B3") == 1
