"""PositionalIndex: presentation-order rid sequence — including the
pinned-down move() semantics (regression for the dead-code adjustment)."""

from repro.index.positional import PositionalIndex


def make(n: int = 5) -> PositionalIndex:
    return PositionalIndex(list(range(100, 100 + n)))


class TestMove:
    """``move(f, t)``: the rid ends up at position ``t`` of the resulting
    sequence (``t`` clamps to the end)."""

    def test_move_forward(self):
        index = make()  # [100, 101, 102, 103, 104]
        index.move(0, 2)
        assert index.to_list() == [101, 102, 100, 103, 104]
        assert index.rid_at(2) == 100

    def test_move_backward(self):
        index = make()
        index.move(3, 1)
        assert index.to_list() == [100, 103, 101, 102, 104]
        assert index.rid_at(1) == 103

    def test_move_to_end(self):
        index = make()
        index.move(0, 4)
        assert index.to_list() == [101, 102, 103, 104, 100]

    def test_move_past_end_clamps(self):
        index = make()
        index.move(1, 99)
        assert index.to_list() == [100, 102, 103, 104, 101]

    def test_move_to_same_position_is_identity(self):
        index = make()
        index.move(2, 2)
        assert index.to_list() == [100, 101, 102, 103, 104]

    def test_move_adjacent_forward(self):
        """The classic off-by-one trap the removed dead code gestured at:
        moving one slot forward must swap neighbours, not no-op."""
        index = make()
        index.move(1, 2)
        assert index.to_list() == [100, 102, 101, 103, 104]

    def test_move_keeps_tree_valid(self):
        index = make(50)
        for step in range(40):
            index.move(step % len(index), (step * 7) % len(index))
        index.validate()
        assert sorted(index.to_list()) == list(range(100, 150))


class TestBasics:
    def test_window_and_positions(self):
        index = make(10)
        assert index.window(3, 4) == [103, 104, 105, 106]
        index.insert_at(0, 999)
        assert index.rid_at(0) == 999
        assert index.position_of(999) == 0
        assert index.position_of(123456) is None
