"""Tests for DBTABLE regions: rendering, windowing, edit translation and
two-way sync (Feature 2 import + Feature 3 / Fig 2b, 2c)."""

import pytest

from repro import Workbook
from repro.errors import RegionError


@pytest.fixture
def wb_t(wb):
    wb.execute("CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT)")
    wb.execute(
        "INSERT INTO items VALUES (1,'apple',10),(2,'pear',20),(3,'fig',30)"
    )
    return wb


class TestRender:
    def test_headers_and_rows(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        assert wb_t.get("Sheet1", "A1") == "id"
        assert wb_t.get("Sheet1", "B2") == "apple"
        assert wb_t.get("Sheet1", "C4") == 30

    def test_without_headers(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items", include_headers=False)
        assert wb_t.get("Sheet1", "A1") == 1

    def test_extent(self, wb_t):
        region = wb_t.dbtable("Sheet1", "B2", "items")
        assert region.context.extent.to_a1(include_sheet=False) == "B2:D5"

    def test_anchor_formula(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        cell = wb_t.sheet("Sheet1").cell("A1")
        assert cell.formula == 'DBTABLE("items")'

    def test_set_formula_string(self, wb_t):
        wb_t.set("Sheet1", "A1", '=DBTABLE("items")')
        assert wb_t.get("Sheet1", "B2") == "apple"

    def test_empty_table_renders_header_only(self, wb_t):
        wb_t.execute("CREATE TABLE empty (x INT)")
        region = wb_t.dbtable("Sheet1", "F1", "empty")
        assert wb_t.get("Sheet1", "F1") == "x"
        assert region.context.extent.n_rows == 1

    def test_key_mapping(self, wb_t):
        region = wb_t.dbtable("Sheet1", "A1", "items")
        assert region.row_keys == [1, 2, 3]


class TestWindowing:
    @pytest.fixture
    def big(self, wb):
        wb.execute("CREATE TABLE big (id INT PRIMARY KEY, v INT)")
        with wb.batch():
            table = wb.database.table("big")
            for i in range(500):
                table.insert((i, i * 10))
        return wb

    def test_window_limits_rendered_rows(self, big):
        region = big.dbtable("Sheet1", "A1", "big", window_rows=20)
        assert region.context.extent.n_rows == 21  # header + 20
        assert big.get("Sheet1", "A2") == 0
        assert big.get("Sheet1", "A21") == 19

    def test_scroll(self, big):
        region = big.dbtable("Sheet1", "A1", "big", window_rows=20)
        region.scroll_to(100)
        assert big.get("Sheet1", "A2") == 100
        assert region.row_keys[0] == 100

    def test_scroll_uses_cache(self, big):
        region = big.dbtable("Sheet1", "A1", "big", window_rows=20)
        region.scroll_to(20)
        region.scroll_to(0)
        assert region.cache.stats.hits > 0

    def test_only_window_materialised(self, big):
        big.dbtable("Sheet1", "A1", "big", window_rows=10)
        # 500-row table, but the sheet holds ~ header + 10 rows * 2 cols.
        assert big.sheet("Sheet1").n_cells <= 2 * 11 + 2


class TestFrontEndEdits:
    def test_cell_edit_updates_database(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.set("Sheet1", "C2", 99)
        assert wb_t.execute("SELECT qty FROM items WHERE id=1").scalar() == 99

    def test_edit_uses_primary_key_not_position(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.set("Sheet1", "B3", "PEAR!")
        assert wb_t.execute("SELECT name FROM items WHERE id=2").scalar() == "PEAR!"

    def test_edit_refreshes_region_display(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.set("Sheet1", "C2", "77")
        assert wb_t.get("Sheet1", "C2") == 77  # coerced to the column type

    def test_append_row_below(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.set("Sheet1", "A5", 4)
        assert wb_t.execute("SELECT count(*) FROM items").scalar() == 4
        # Region grew to include the new row.
        assert wb_t.get("Sheet1", "A5") == 4

    def test_delete_row(self, wb_t):
        region = wb_t.dbtable("Sheet1", "A1", "items")
        region.delete_row(2)  # 0-based sheet row 2 == data row 1 == id 2
        assert wb_t.execute("SELECT count(*) FROM items").scalar() == 2
        assert wb_t.get("Sheet1", "B3") == "fig"

    def test_positional_insert_row(self, wb_t):
        region = wb_t.dbtable("Sheet1", "A1", "items")
        region.insert_row(2, [9, "mid", 0])
        rows = wb_t.execute("SELECT id FROM items").rows
        assert [r[0] for r in rows] == [1, 9, 2, 3]

    def test_delete_row_out_of_region(self, wb_t):
        region = wb_t.dbtable("Sheet1", "A1", "items")
        with pytest.raises(RegionError):
            region.delete_row(99)


class TestBackEndSync:
    def test_backend_insert_appears(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.execute("INSERT INTO items VALUES (4,'kiwi',40)")
        assert wb_t.get("Sheet1", "B5") == "kiwi"

    def test_backend_update_appears(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.execute("UPDATE items SET qty = 0 WHERE id = 3")
        assert wb_t.get("Sheet1", "C4") == 0

    def test_backend_delete_shrinks_region(self, wb_t):
        region = wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.execute("DELETE FROM items WHERE id = 1")
        assert region.context.extent.n_rows == 3
        assert wb_t.get("Sheet1", "B2") == "pear"
        assert wb_t.get("Sheet1", "B4") is None

    def test_backend_schema_change_appears(self, wb_t):
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.execute("ALTER TABLE items ADD COLUMN price REAL DEFAULT 1.5")
        assert wb_t.get("Sheet1", "D1") == "price"
        assert wb_t.get("Sheet1", "D2") == 1.5

    def test_fig_2c_scenario(self, wb_t):
        """Edit a DBTABLE cell; a DBSQL region on the same table refreshes
        immediately (the paper's Feature 3 demonstration)."""
        wb_t.dbtable("Sheet1", "A1", "items")
        wb_t.dbsql("Sheet1", "F1", "SELECT sum(qty) FROM items")
        assert wb_t.get("Sheet1", "F1") == 60
        wb_t.set("Sheet1", "C2", 100)  # front-end edit: qty of id 1 -> 100
        assert wb_t.get("Sheet1", "F1") == 150

    def test_no_pk_table_uses_position_mapping(self, wb):
        wb.execute("CREATE TABLE nopk (v TEXT)")
        wb.execute("INSERT INTO nopk VALUES ('a'),('b')")
        wb.dbtable("Sheet1", "A1", "nopk")
        wb.set("Sheet1", "A3", "B!")
        rows = wb.execute("SELECT v FROM nopk").rows
        assert rows == [("a",), ("B!",)]
