"""Tests for the sync manager (event routing, batching, convergence) and
structural sheet edits (row/column insert/delete with formula rewriting
and region re-anchoring)."""

import pytest

from repro import Workbook
from repro.errors import RegionError


class TestSyncManager:
    @pytest.fixture
    def synced(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        wb.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        return wb

    def test_events_counted_by_kind(self, synced):
        synced.execute("INSERT INTO t VALUES (3, 30)")
        synced.execute("UPDATE t SET v = 0 WHERE id = 1")
        synced.execute("DELETE FROM t WHERE id = 2")
        kinds = synced.sync.stats.events_by_kind
        assert kinds["insert"] >= 3  # includes fixture inserts
        assert kinds["update"] == 1
        assert kinds["delete"] == 1

    def test_event_log_capture(self, synced):
        synced.sync.keep_log = True
        synced.execute("INSERT INTO t VALUES (5, 50)")
        log = synced.sync.event_log()
        assert log[-1].kind == "insert"
        assert log[-1].row == (5, 50)

    def test_unrelated_table_does_not_refresh_region(self, synced):
        synced.dbtable("Sheet1", "A1", "t")
        region = synced.regions.all()[0]
        count = region.refresh_count
        synced.execute("CREATE TABLE other (x INT)")
        synced.execute("INSERT INTO other VALUES (1)")
        assert region.refresh_count == count

    def test_two_dbsql_regions_both_refresh(self, synced):
        synced.dbsql("Sheet1", "A1", "SELECT sum(v) FROM t")
        synced.dbsql("Sheet1", "C1", "SELECT count(*) FROM t")
        synced.execute("INSERT INTO t VALUES (9, 5)")
        assert synced.get("Sheet1", "A1") == 35
        assert synced.get("Sheet1", "C1") == 3

    def test_cascading_regions_converge(self, synced):
        """DBSQL spill feeding another DBSQL through RANGETABLE."""
        synced.dbsql("Sheet1", "A1", "SELECT v FROM t ORDER BY id")
        synced.dbsql(
            "Sheet1", "C1", "SELECT sum(a) FROM RANGETABLE(A1:A2)"
        )
        assert synced.get("Sheet1", "C1") == 30
        synced.execute("UPDATE t SET v = 15 WHERE id = 1")
        assert synced.get("Sheet1", "C1") == 35

    def test_rollback_restores_sheet_state(self, synced):
        """Transactional sync: rollback events re-render the region."""
        synced.dbtable("Sheet1", "A1", "t")
        synced.execute("BEGIN")
        synced.execute("UPDATE t SET v = 999 WHERE id = 1")
        assert synced.get("Sheet1", "B2") == 999
        synced.execute("ROLLBACK")
        assert synced.get("Sheet1", "B2") == 10

    def test_auto_sync_off_defers(self, synced):
        synced.auto_sync = False
        synced.dbtable("Sheet1", "A1", "t")
        synced.execute("INSERT INTO t VALUES (7, 70)")
        assert synced.get("Sheet1", "A4") is None  # not yet rendered
        synced.sync.flush()
        assert synced.get("Sheet1", "A4") == 7


class TestStructuralEdits:
    def test_insert_rows_shifts_values_and_formulas(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "A5", 2)
        wb.set("Sheet1", "B5", "=A5*10")
        wb.insert_rows("Sheet1", 2, 3)
        assert wb.get("Sheet1", "A1") == 1
        assert wb.get("Sheet1", "A8") == 2
        assert wb.get("Sheet1", "B8") == 20
        # The moved formula now references the moved cell.
        wb.set("Sheet1", "A8", 5)
        assert wb.get("Sheet1", "B8") == 50

    def test_delete_rows_removes_and_shifts(self, wb):
        wb.set("Sheet1", "A1", "keep")
        wb.set("Sheet1", "A3", "gone")
        wb.set("Sheet1", "A5", "moved")
        wb.delete_rows("Sheet1", 2, 2)
        assert wb.get("Sheet1", "A3") == "moved"

    def test_delete_referenced_row_makes_ref_error(self, wb):
        wb.set("Sheet1", "A2", 5)
        wb.set("Sheet1", "B1", "=A2*2")
        wb.delete_rows("Sheet1", 1, 1)
        assert wb.get("Sheet1", "B1") == "#REF!"

    def test_range_formula_shrinks(self, wb):
        for row in range(1, 6):
            wb.set("Sheet1", f"A{row}", row)
        wb.set("Sheet1", "C1", "=SUM(A1:A5)")
        wb.delete_rows("Sheet1", 1, 2)  # drops values 2 and 3
        assert wb.get("Sheet1", "C1") == 1 + 4 + 5

    def test_insert_cols(self, wb):
        wb.set("Sheet1", "B1", 7)
        wb.set("Sheet1", "C1", "=B1+1")
        wb.insert_cols("Sheet1", 1, 2)
        assert wb.get("Sheet1", "D1") == 7
        assert wb.get("Sheet1", "E1") == 8

    def test_cross_sheet_formula_adjusted(self, wb):
        wb.add_sheet("Data")
        wb.set("Data", "A5", 3)
        wb.set("Sheet1", "A1", "=Data!A5*2")
        wb.insert_rows("Data", 0, 2)
        assert wb.get("Sheet1", "A1") == 6
        wb.set("Data", "A7", 10)
        assert wb.get("Sheet1", "A1") == 20

    def test_region_below_insert_moves(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        wb.execute("INSERT INTO t VALUES (1)")
        wb.dbtable("Sheet1", "A5", "t")
        wb.insert_rows("Sheet1", 0, 3)
        region = wb.regions.all()[0]
        assert region.context.anchor.row == 7
        assert wb.get("Sheet1", "A8") == "id"
        # Region still functional after the move.
        wb.execute("INSERT INTO t VALUES (2)")
        assert wb.get("Sheet1", "A10") == 2

    def test_insert_through_region_rejected(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        wb.execute("INSERT INTO t VALUES (1),(2)")
        wb.dbtable("Sheet1", "A1", "t")
        with pytest.raises(RegionError):
            wb.insert_rows("Sheet1", 1, 1)

    def test_delete_through_region_rejected(self, wb):
        wb.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        wb.execute("INSERT INTO t VALUES (1)")
        wb.dbtable("Sheet1", "A3", "t")
        with pytest.raises(RegionError):
            wb.delete_rows("Sheet1", 3, 1)

    def test_formula_cells_keep_working_after_multiple_edits(self, wb):
        wb.set("Sheet1", "A1", 1)
        wb.set("Sheet1", "B1", "=A1+1")
        wb.insert_rows("Sheet1", 0, 1)
        wb.insert_cols("Sheet1", 0, 1)
        assert wb.get("Sheet1", "C2") == 2
        wb.set("Sheet1", "B2", 10)
        assert wb.get("Sheet1", "C2") == 11
