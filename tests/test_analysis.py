"""Static analyzer (repro.analysis) and runtime sanitizer tests.

Each checker gets a fire/quiet fixture pair: a minimal snippet that
trips the rule and a corrected twin that stays clean.  A self-check
asserts the real tree is clean modulo the committed baseline, so the
suite fails the moment someone introduces a new violation without
either fixing or baselining it.
"""

import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import (
    NULL_SANITIZER,
    Sanitizer,
    analyze_paths,
    load_baseline,
    partition,
    registered_checkers,
    write_baseline,
)
from repro.analysis.__main__ import main as analysis_main
from repro.engine.database import Database
from repro.engine.schema import TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy
from repro.engine.types import DBType
from repro.errors import DataSpreadError, SanitizerError
from repro.server.service import WorkbookService

REPO_ROOT = Path(__file__).resolve().parents[1]


def check(tmp_path, source, code, filename="fixture.py"):
    """Run one checker over one snippet; returns the diagnostics."""
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    return analyze_paths([str(path)], codes={code}, root=str(tmp_path))


# -- checker fixtures ---------------------------------------------------------


class TestRC001ReplayDeterminism:
    def test_wall_clock_in_recovery_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            import time

            def recover_state(records):
                return time.time()
            """,
            "RC001",
        )
        assert [d.code for d in diags] == ["RC001"]
        assert "time.time" in diags[0].message

    def test_pure_recovery_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            def recover_state(records):
                return len(records)
            """,
            "RC001",
        )

    def test_set_iteration_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            def apply_op(op):
                for kind in {"set_cell", "clear_cell"}:
                    handle(kind)
            """,
            "RC001",
        )
        assert diags and "set" in diags[0].message.lower()

    def test_list_iteration_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            def apply_op(op):
                for kind in ["set_cell", "clear_cell"]:
                    handle(kind)
            """,
            "RC001",
        )

    def test_unseeded_random_fires_seeded_is_quiet(self, tmp_path):
        fire = check(
            tmp_path,
            """
            import random

            def recover_state(records):
                return random.random()
            """,
            "RC001",
        )
        assert fire
        quiet = check(
            tmp_path,
            """
            import random

            def recover_state(records, seed):
                return random.Random(seed).random()
            """,
            "RC001",
            filename="seeded.py",
        )
        assert not quiet

    def test_only_reachable_code_is_checked(self, tmp_path):
        # Same nondeterminism, but not reachable from any replay entry
        # point — the checker must not flag it.
        assert not check(
            tmp_path,
            """
            import time

            def render_status():
                return time.time()
            """,
            "RC001",
        )


class TestRC002PagerDiscipline:
    SNIPPET = """
    class Store:
        def __init__(self, disk):
            self.disk = disk

        def load(self, page_id):
            return self.disk.read(page_id)
    """

    def test_direct_disk_read_fires(self, tmp_path):
        diags = check(tmp_path, self.SNIPPET, "RC002", filename="store.py")
        assert diags and diags[0].code == "RC002"
        assert "read" in diags[0].message

    def test_pager_module_is_exempt(self, tmp_path):
        assert not check(tmp_path, self.SNIPPET, "RC002", filename="pager.py")


class TestRC003OpRegistry:
    def test_missing_apply_arm_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            OP_TYPES = ("set_cell", "clear_cell")

            def validate_op(op):
                if op["type"] == "set_cell":
                    return True
                if op["type"] == "clear_cell":
                    return True
                return False

            def apply_op(workbook, op):
                if op["type"] == "set_cell":
                    workbook.set(op)
            """,
            "RC003",
        )
        assert diags
        assert any("clear_cell" in d.message for d in diags)

    def test_complete_registry_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            OP_TYPES = ("set_cell", "clear_cell")

            def validate_op(op):
                if op["type"] == "set_cell":
                    return True
                if op["type"] == "clear_cell":
                    return True
                return False

            def apply_op(workbook, op):
                if op["type"] == "set_cell":
                    workbook.set(op)
                elif op["type"] == "clear_cell":
                    workbook.clear(op)
            """,
            "RC003",
        )


class TestRC004CollectorDrift:
    def test_unknown_counter_attribute_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            class Counters:
                def __init__(self):
                    self.hits = 0

            class Collector:
                def __init__(self):
                    self.counters = Counters()

                def _collect_stats(self):
                    return {"misses": self.counters.misses}
            """,
            "RC004",
        )
        assert diags and "misses" in diags[0].message

    def test_known_attribute_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            class Counters:
                def __init__(self):
                    self.hits = 0

            class Collector:
                def __init__(self):
                    self.counters = Counters()

                def _collect_stats(self):
                    return {"hits": self.counters.hits}
            """,
            "RC004",
        )


class TestRC005ExceptionSwallowing:
    def test_silent_broad_except_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            def run(work):
                try:
                    work()
                except Exception:
                    pass
            """,
            "RC005",
        )
        assert diags and diags[0].code == "RC005"

    def test_recorded_or_reraised_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            def run(work, events):
                try:
                    work()
                except Exception as error:
                    events.record("work_error", error=str(error))

            def strict(work):
                try:
                    work()
                except Exception:
                    raise
            """,
            "RC005",
        )


class TestRC006FrozenGroupMutation:
    def test_unthawed_mutation_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            class Store:
                def _thaw_page(self, page_id):
                    pass

                def add(self, rid, row):
                    page = self.pool.get(self.chain[-1])
                    page.records.append((rid, row))
            """,
            "RC006",
        )
        assert diags and "thaw" in diags[0].message.lower()

    def test_thawed_mutation_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            class Store:
                def _thaw_page(self, page_id):
                    pass

                def add(self, rid, row):
                    self._thaw_page(self.chain[-1])
                    page = self.pool.get(self.chain[-1])
                    page.records.append((rid, row))
            """,
            "RC006",
        )


class TestRC007LockDiscipline:
    def test_unlocked_mutation_fires(self, tmp_path):
        diags = check(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._mutation_lock = threading.RLock()
                    self._chains = {}

                def restructure(self, groups):
                    self._chains["a"] = [1]
            """,
            "RC007",
        )
        assert diags and "lock" in diags[0].message.lower()
        assert "Store.restructure:_chains" in diags[0].symbol

    def test_locked_mutation_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._mutation_lock = threading.RLock()
                    self._chains = {}

                def restructure(self, groups):
                    with self._mutation_lock:
                        self._chains["a"] = [1]
            """,
            "RC007",
        )

    def test_docstring_contract_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._mutation_lock = threading.RLock()
                    self._chains = {}

                def _restructure_locked(self, groups):
                    \"\"\"Caller holds the mutation lock.\"\"\"
                    self._chains["a"] = [1]
            """,
            "RC007",
        )

    def test_lockless_class_is_exempt(self, tmp_path):
        # A class that never declares a lock has no discipline to break
        # (single-threaded helpers stay out of scope).
        assert not check(
            tmp_path,
            """
            class Builder:
                def __init__(self):
                    self._chains = {}

                def add(self):
                    self._chains["a"] = [1]
            """,
            "RC007",
        )


class TestRC008IndexMaintenance:
    FIXTURE = """
        class Table:
            def __init__(self):
                self.indexes = {{}}

            def _index_insert(self, rid, row):
                pass

            def insert(self, row):
                rid = self.store.insert(row)
                {maintain}

        def apply_op(workbook, op):
            workbook.insert(op)
        """

    def test_unmaintained_mutation_fires(self, tmp_path):
        diags = check(
            tmp_path, self.FIXTURE.format(maintain="return rid"), "RC008"
        )
        assert diags and "stale" in diags[0].message
        assert "Table.insert:store-mutation" in diags[0].symbol

    def test_maintained_mutation_is_quiet(self, tmp_path):
        assert not check(
            tmp_path,
            self.FIXTURE.format(maintain="self._index_insert(rid, row)"),
            "RC008",
        )

    def test_unreachable_method_is_exempt(self, tmp_path):
        # Not reachable from apply_op → replay can never run it.
        assert not check(
            tmp_path,
            """
            class Table:
                def __init__(self):
                    self.indexes = {}

                def _index_insert(self, rid, row):
                    pass

                def bulk_load(self, rows):
                    self.store.insert(rows)
            """,
            "RC008",
        )

    def test_indexless_class_is_exempt(self, tmp_path):
        assert not check(
            tmp_path,
            """
            class Loader:
                def load(self, row):
                    self.store.insert(row)

            def apply_op(workbook, op):
                workbook.load(op)
            """,
            "RC008",
        )


# -- framework ----------------------------------------------------------------


class TestFramework:
    def test_all_checkers_registered(self):
        codes = set(registered_checkers())
        assert codes == {
            "RC001",
            "RC002",
            "RC003",
            "RC004",
            "RC005",
            "RC006",
            "RC007",
            "RC008",
        }

    def test_repo_tree_is_clean_modulo_baseline(self):
        diags = analyze_paths([str(REPO_ROOT / "src")], root=str(REPO_ROOT))
        baseline = load_baseline(str(REPO_ROOT / "ANALYSIS_BASELINE.txt"))
        new, grandfathered, stale = partition(diags, baseline)
        assert not new, "un-baselined findings:\n" + "\n".join(
            d.render() for d in new
        )
        assert not stale, "stale baseline entries: %r" % (stale,)

    def test_syntax_error_is_skipped_not_fatal(self, tmp_path):
        # A file the interpreter already rejects is not the analyzer's
        # job; it must be skipped without aborting the whole run.
        (tmp_path / "broken.py").write_text("def nope(:\n")
        (tmp_path / "dirty.py").write_text(
            "import time\n\ndef recover_state(records):\n    return time.time()\n"
        )
        diags = analyze_paths([str(tmp_path)], root=str(tmp_path))
        assert [d.code for d in diags] == ["RC001"]

    def test_baseline_roundtrip_preserves_justification(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text(
            "import time\n\ndef recover_state(records):\n    return time.time()\n"
        )
        baseline_file = tmp_path / "BASELINE.txt"
        diags = analyze_paths([str(source)], root=str(tmp_path))
        write_baseline(str(baseline_file), diags, {})
        entries = load_baseline(str(baseline_file))
        assert len(entries) == 1
        key = next(iter(entries))
        # Hand-edit the justification; a regenerate must keep it.
        entries[key] = replace(entries[key], justification="known wall-clock use")
        write_baseline(str(baseline_file), diags, entries)
        reloaded = load_baseline(str(baseline_file))
        assert reloaded[key].justification == "known wall-clock use"
        new, grandfathered, stale = partition(diags, load_baseline(str(baseline_file)))
        assert not new and len(grandfathered) == 1 and not stale

    def test_cli_baseline_workflow(self, tmp_path, capsys):
        source = tmp_path / "mod.py"
        source.write_text(
            "import time\n\ndef recover_state(records):\n    return time.time()\n"
        )
        baseline_file = tmp_path / "BASELINE.txt"
        args = ["--baseline-file", str(baseline_file), str(source)]
        assert analysis_main(args) == 1  # un-baselined finding
        assert analysis_main(["--baseline"] + args) == 0  # grandfather it
        capsys.readouterr()
        assert analysis_main(args) == 0  # now clean modulo baseline
        # Fix the finding: the entry goes stale but stays non-fatal.
        source.write_text("def recover_state(records):\n    return len(records)\n")
        assert analysis_main(args) == 0
        assert "stale" in capsys.readouterr().err


# -- runtime sanitizer --------------------------------------------------------


def make_store(sanitize, n_rows=40):
    schema = TableSchema.from_pairs(
        [("a", DBType.INTEGER), ("b", DBType.INTEGER)]
    )
    store = GroupedTupleStore(schema, layout=LayoutPolicy.COLUMN, page_capacity=8)
    sanitizer = Sanitizer() if sanitize else NULL_SANITIZER
    store.sanitizer = sanitizer
    store.pool.sanitizer = sanitizer
    for i in range(n_rows):
        store.insert((i, i * 2))
    return store


class TestSanitizer:
    def test_off_by_default_and_null_object_is_shared(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        db = Database()
        assert db.sanitizer is NULL_SANITIZER
        assert not db.sanitizer.enabled

    def test_env_var_arms_every_database(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Database().sanitizer.enabled
        # An explicit argument always wins over the environment.
        assert not Database(sanitize=False).sanitizer.enabled
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not Database().sanitizer.enabled

    def test_database_arms_tables_and_pool(self):
        db = Database(sanitize=True)
        db.execute("CREATE TABLE t (a INT)")
        table = db.table("t")
        assert table.sanitizer is db.sanitizer
        assert table.store.sanitizer is db.sanitizer
        assert db.catalog.pool.sanitizer is db.sanitizer

    def test_frozen_group_mutation_raises(self):
        store = make_store(sanitize=True)
        assert store.encode_group(0) > 0
        page = store.pool.get(store._chains[0][0])
        # Simulate a buggy code path appending to an encoded page
        # without thawing it first.
        page.records.append((999, [999]))
        with pytest.raises(SanitizerError, match="thaw"):
            store.pool.get(store._chains[0][0])

    def test_frozen_group_mutation_silent_when_off(self):
        store = make_store(sanitize=False)
        assert store.encode_group(0) > 0
        page = store.pool.get(store._chains[0][0])
        page.records.append((999, [999]))
        store.pool.get(store._chains[0][0])  # tolerated silently

    def test_rid_lockstep_violation_raises(self):
        store = make_store(sanitize=True)
        page = store.pool.get(store._chains[1][0])
        page.records[0], page.records[1] = page.records[1], page.records[0]
        with pytest.raises(SanitizerError, match="lockstep"):
            list(store.scan_group_batches(["a", "b"], batch_size=8))

    def test_rid_lockstep_falls_back_when_off(self):
        store = make_store(sanitize=False)
        page = store.pool.get(store._chains[1][0])
        page.records[0], page.records[1] = page.records[1], page.records[0]
        rows = {}
        for rids, cols in store.scan_group_batches(["a", "b"], batch_size=8):
            for i, rid in enumerate(rids):
                rows[rid] = (cols[0][i], cols[1][i])
        # The per-rid fallback still produces correctly aligned rows.
        assert all(b == a * 2 for a, b in rows.values())

    def test_batch_shape_checks(self):
        sanitizer = Sanitizer()
        sanitizer.check_batch([1, 2, 3], [[10, 20, 30], [1, 2, 3]])
        with pytest.raises(SanitizerError, match="rid"):
            sanitizer.check_batch([1, 2, 2], [[10, 20, 30]])
        with pytest.raises(SanitizerError):
            sanitizer.check_batch([1, 2, 3], [[10, 20]])

    def test_wal_offset_drift_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        service = WorkbookService(str(tmp_path / "book"), fsync=False)
        try:
            session = service.connect("alice")
            service.execute(session.session_id, "CREATE TABLE t (a INT)")
            service.wal._offset += 7  # simulate lost-write bookkeeping drift
            with pytest.raises(SanitizerError, match="offset"):
                service.execute(session.session_id, "INSERT INTO t VALUES (1)")
        finally:
            service.close()

    def test_wal_offset_drift_silent_when_off(self, tmp_path):
        service = WorkbookService(str(tmp_path / "book"), fsync=False)
        try:
            session = service.connect("alice")
            service.execute(session.session_id, "CREATE TABLE t (a INT)")
            service.wal._offset = service.wal._offset  # untouched: clean run
            service.execute(session.session_id, "INSERT INTO t VALUES (1)")
        finally:
            service.close()

    def test_replay_lsn_gap_raises(self):
        sanitizer = Sanitizer()
        sanitizer.check_replay_lsns([1, 2, 3])
        with pytest.raises(SanitizerError, match="LSN"):
            sanitizer.check_replay_lsns([1, 3])

    def test_check_table_detects_row_count_drift(self):
        db = Database(sanitize=True)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        table = db.table("t")
        db.sanitizer.check_table(table)  # consistent: no raise
        table.store._n_rows += 1
        with pytest.raises(SanitizerError):
            db.sanitizer.check_table(table)

    def test_check_counters_accumulate(self):
        sanitizer = Sanitizer()
        before = sanitizer.checks
        sanitizer.check_batch([1], [[10]])
        sanitizer.check_replay_lsns([1])
        assert sanitizer.checks == before + 2
        assert sanitizer.failures == 0


class TestApplyErrorEvent:
    def test_failed_op_records_structured_event_and_truncates(self, tmp_path):
        service = WorkbookService(str(tmp_path / "book"), fsync=False)
        try:
            session = service.connect("alice")
            service.execute(
                session.session_id, "CREATE TABLE t (a INT PRIMARY KEY)"
            )
            service.execute(session.session_id, "INSERT INTO t VALUES (1)")
            lsn_before = service.wal.last_lsn
            with pytest.raises(DataSpreadError):
                service.execute(session.session_id, "INSERT INTO t VALUES (1)")
            # The failed op is gone from the log and left a trace instead.
            assert service.wal.last_lsn == lsn_before
            events = service.events.of_kind("apply_error")
            assert events
            assert events[-1].data["op"] == "sql"
            assert events[-1].data["error"]
        finally:
            service.close()
