"""Unit tests for relational types (repro.engine.types)."""

import datetime

import pytest

from repro.engine.types import (
    DBType,
    coerce_value,
    compare_values,
    infer_type,
    sql_repr,
    unify_types,
)
from repro.engine.types import infer_column_type
from repro.errors import ExecutionError


class TestParse:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", DBType.INTEGER),
            ("integer", DBType.INTEGER),
            ("BIGINT", DBType.INTEGER),
            ("REAL", DBType.REAL),
            ("FLOAT", DBType.REAL),
            ("double", DBType.REAL),
            ("TEXT", DBType.TEXT),
            ("VARCHAR(30)", DBType.TEXT),
            ("bool", DBType.BOOLEAN),
            ("DATE", DBType.DATE),
        ],
    )
    def test_aliases(self, name, expected):
        assert DBType.parse(name) is expected

    def test_unknown_type(self):
        with pytest.raises(ExecutionError):
            DBType.parse("BLOB9000")


class TestInference:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, DBType.NULL),
            (True, DBType.BOOLEAN),
            (3, DBType.INTEGER),
            (3.5, DBType.REAL),
            ("x", DBType.TEXT),
            (datetime.date(2020, 1, 1), DBType.DATE),
        ],
    )
    def test_infer(self, value, expected):
        assert infer_type(value) is expected

    @pytest.mark.parametrize(
        "first,second,expected",
        [
            (DBType.INTEGER, DBType.INTEGER, DBType.INTEGER),
            (DBType.INTEGER, DBType.REAL, DBType.REAL),
            (DBType.NULL, DBType.INTEGER, DBType.INTEGER),
            (DBType.BOOLEAN, DBType.INTEGER, DBType.INTEGER),
            (DBType.TEXT, DBType.INTEGER, DBType.TEXT),
            (DBType.DATE, DBType.INTEGER, DBType.TEXT),
            (DBType.DATE, DBType.DATE, DBType.DATE),
        ],
    )
    def test_unify(self, first, second, expected):
        assert unify_types(first, second) is expected
        assert unify_types(second, first) is expected

    def test_infer_column_type(self):
        assert infer_column_type([1, 2, None, 3]) is DBType.INTEGER
        assert infer_column_type([1, 2.5]) is DBType.REAL
        assert infer_column_type([1, "x"]) is DBType.TEXT
        assert infer_column_type([]) is DBType.NULL


class TestCoercion:
    def test_to_integer(self):
        assert coerce_value("42", DBType.INTEGER) == 42
        assert coerce_value(4.9, DBType.INTEGER) == 4
        assert coerce_value(True, DBType.INTEGER) == 1

    def test_to_real(self):
        assert coerce_value("2.5", DBType.REAL) == 2.5
        assert coerce_value(2, DBType.REAL) == 2.0

    def test_to_boolean(self):
        assert coerce_value("true", DBType.BOOLEAN) is True
        assert coerce_value("0", DBType.BOOLEAN) is False
        assert coerce_value(1, DBType.BOOLEAN) is True

    def test_to_text(self):
        assert coerce_value(5, DBType.TEXT) == "5"
        assert coerce_value(5.0, DBType.TEXT) == "5"
        assert coerce_value(True, DBType.TEXT) == "TRUE"

    def test_to_date(self):
        assert coerce_value("2021-02-03", DBType.DATE) == datetime.date(2021, 2, 3)

    def test_none_passthrough(self):
        assert coerce_value(None, DBType.INTEGER) is None

    def test_lenient_failure_returns_original(self):
        assert coerce_value("xyz", DBType.INTEGER) == "xyz"

    def test_strict_failure_raises(self):
        with pytest.raises(ExecutionError):
            coerce_value("xyz", DBType.INTEGER, strict=True)


class TestCompare:
    def test_numbers(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 2) == 0
        assert compare_values(3, 2) == 1
        assert compare_values(1, 1.0) == 0

    def test_null_is_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_cross_type_total_order(self):
        assert compare_values(99, "a") == -1  # numbers before text
        assert compare_values("a", 99) == 1

    def test_text(self):
        assert compare_values("a", "b") == -1
        assert compare_values("b", "b") == 0

    def test_booleans_compare_as_numbers(self):
        assert compare_values(True, 1) == 0
        assert compare_values(False, 1) == -1


class TestSqlRepr:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "NULL"),
            (True, "TRUE"),
            (5, "5"),
            (2.5, "2.5"),
            ("it's", "'it''s'"),
            (datetime.date(2020, 1, 2), "'2020-01-02'"),
        ],
    )
    def test_repr(self, value, expected):
        assert sql_repr(value) == expected
