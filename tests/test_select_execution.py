"""End-to-end SELECT execution tests (planner + executor + functions)."""

import pytest

from repro import Database
from repro.engine.executor import ProjectedScan
from repro.engine.planner import Planner
from repro.engine.sql_parser import parse_statement
from repro.errors import PlanError, SqlError


@pytest.fixture
def sample(db):
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp TEXT, val REAL)")
    db.execute(
        "INSERT INTO t VALUES (1,'a',10.0),(2,'a',20.0),(3,'b',30.0),"
        "(4,'b',NULL),(5,'c',50.0)"
    )
    return db


class TestProjection:
    def test_star(self, sample):
        result = sample.execute("SELECT * FROM t")
        assert result.columns == ["id", "grp", "val"]
        assert len(result.rows) == 5

    def test_expressions_and_aliases(self, sample):
        result = sample.execute("SELECT id * 2 AS double, upper(grp) FROM t WHERE id = 1")
        assert result.columns == ["double", "upper"]
        assert result.rows == [(2, "A")]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 2 + 3 * 4").scalar() == 14

    def test_qualified_star_in_join(self, sample):
        result = sample.execute(
            "SELECT a.* FROM t a JOIN t b ON a.id = b.id WHERE a.id = 1"
        )
        assert result.rows == [(1, "a", 10.0)]

    def test_column_case_insensitive(self, sample):
        assert sample.execute("SELECT ID FROM t WHERE id=1").scalar() == 1

    def test_unknown_column(self, sample):
        with pytest.raises(PlanError):
            sample.execute("SELECT nope FROM t")

    def test_ambiguous_column(self, sample):
        with pytest.raises(PlanError):
            sample.execute("SELECT id FROM t a JOIN t b ON a.id = b.id")


class TestFilters:
    def test_comparison(self, sample):
        assert len(sample.execute("SELECT * FROM t WHERE val >= 20").rows) == 3

    def test_null_never_matches(self, sample):
        assert len(sample.execute("SELECT * FROM t WHERE val <> 30").rows) == 3

    def test_is_null(self, sample):
        assert sample.execute("SELECT id FROM t WHERE val IS NULL").scalar() == 4
        assert len(sample.execute("SELECT id FROM t WHERE val IS NOT NULL").rows) == 4

    def test_in_list(self, sample):
        assert len(sample.execute("SELECT * FROM t WHERE id IN (1, 3, 9)").rows) == 2

    def test_between(self, sample):
        assert len(sample.execute("SELECT * FROM t WHERE id BETWEEN 2 AND 4").rows) == 3

    def test_like(self, sample):
        db = sample
        assert len(db.execute("SELECT * FROM t WHERE grp LIKE 'a'").rows) == 2
        assert len(db.execute("SELECT * FROM t WHERE grp LIKE '_'").rows) == 5

    def test_and_or(self, sample):
        rows = sample.execute(
            "SELECT id FROM t WHERE grp = 'a' OR (grp = 'b' AND val IS NULL)"
        ).rows
        assert sorted(r[0] for r in rows) == [1, 2, 4]

    def test_parameters(self, sample):
        result = sample.execute("SELECT id FROM t WHERE grp = ? AND val > ?", ("a", 15))
        assert result.rows == [(2,)]

    def test_case_expression(self, sample):
        result = sample.execute(
            "SELECT id, CASE WHEN val >= 30 THEN 'hi' WHEN val IS NULL THEN '?' "
            "ELSE 'lo' END FROM t ORDER BY id"
        )
        assert [r[1] for r in result.rows] == ["lo", "lo", "hi", "?", "hi"]


class TestJoins:
    @pytest.fixture
    def joined(self, db):
        db.execute("CREATE TABLE dept (did INT PRIMARY KEY, dname TEXT)")
        db.execute("INSERT INTO dept VALUES (1,'eng'),(2,'ops'),(3,'empty')")
        db.execute("CREATE TABLE emp (eid INT PRIMARY KEY, did INT, ename TEXT)")
        db.execute(
            "INSERT INTO emp VALUES (10,1,'ann'),(11,1,'bob'),(12,2,'cat'),(13,NULL,'dan')"
        )
        return db

    def test_inner_join(self, joined):
        rows = joined.execute(
            "SELECT ename, dname FROM emp JOIN dept ON emp.did = dept.did ORDER BY ename"
        ).rows
        assert rows == [("ann", "eng"), ("bob", "eng"), ("cat", "ops")]

    def test_left_join_preserves_unmatched(self, joined):
        rows = joined.execute(
            "SELECT ename, dname FROM emp LEFT JOIN dept ON emp.did = dept.did "
            "ORDER BY ename"
        ).rows
        assert ("dan", None) in rows
        assert len(rows) == 4

    def test_implicit_join_syntax(self, joined):
        rows = joined.execute(
            "SELECT ename FROM emp e, dept d WHERE e.did = d.did AND d.dname = 'ops'"
        ).rows
        assert rows == [("cat",)]

    def test_natural_join_collapses_common_column(self, joined):
        result = joined.execute("SELECT * FROM emp NATURAL JOIN dept")
        assert result.columns.count("did") == 1
        assert len(result.rows) == 3

    def test_using(self, joined):
        rows = joined.execute(
            "SELECT ename, dname FROM emp JOIN dept USING (did) ORDER BY ename"
        ).rows
        assert len(rows) == 3

    def test_three_way_join(self, joined):
        joined.execute("CREATE TABLE loc (did INT, city TEXT)")
        joined.execute("INSERT INTO loc VALUES (1,'NYC'),(2,'SFO')")
        rows = joined.execute(
            "SELECT ename, city FROM emp JOIN dept ON emp.did=dept.did "
            "JOIN loc ON dept.did=loc.did ORDER BY ename"
        ).rows
        assert rows == [("ann", "NYC"), ("bob", "NYC"), ("cat", "SFO")]

    def test_cross_join_cardinality(self, joined):
        assert len(joined.execute("SELECT * FROM emp CROSS JOIN dept").rows) == 12

    def test_non_equi_join_nested_loop(self, joined):
        rows = joined.execute(
            "SELECT e.eid, d.did FROM emp e JOIN dept d ON e.did < d.did"
        ).rows
        assert all(left is not None for left, _ in rows)

    def test_null_keys_never_join(self, joined):
        rows = joined.execute(
            "SELECT ename FROM emp JOIN dept ON emp.did = dept.did WHERE ename='dan'"
        ).rows
        assert rows == []

    def test_self_join(self, joined):
        rows = joined.execute(
            "SELECT a.ename, b.ename FROM emp a JOIN emp b "
            "ON a.did = b.did AND a.eid < b.eid"
        ).rows
        assert rows == [("ann", "bob")]


class TestAggregation:
    def test_scalar_aggregates(self, sample):
        result = sample.execute(
            "SELECT count(*), count(val), sum(val), avg(val), min(val), max(val) FROM t"
        )
        assert result.rows == [(5, 4, 110.0, 27.5, 10.0, 50.0)]

    def test_empty_table_aggregates(self, db):
        db.execute("CREATE TABLE e (x INT)")
        assert db.execute("SELECT count(*), sum(x) FROM e").rows == [(0, None)]

    def test_group_by(self, sample):
        rows = sample.execute(
            "SELECT grp, count(*), sum(val) FROM t GROUP BY grp ORDER BY grp"
        ).rows
        assert rows == [("a", 2, 30.0), ("b", 2, 30.0), ("c", 1, 50.0)]

    def test_having(self, sample):
        rows = sample.execute(
            "SELECT grp FROM t GROUP BY grp HAVING count(*) > 1 ORDER BY grp"
        ).rows
        assert rows == [("a",), ("b",)]

    def test_count_distinct(self, sample):
        sample.execute("INSERT INTO t VALUES (6, 'a', 10.0)")
        assert sample.execute("SELECT count(DISTINCT val) FROM t WHERE grp='a'").scalar() == 2

    def test_group_concat(self, sample):
        value = sample.execute(
            "SELECT group_concat(grp) FROM t WHERE val IS NOT NULL AND grp <> 'c'"
        ).scalar()
        assert value == "a,a,b"

    def test_aggregate_in_expression(self, sample):
        value = sample.execute("SELECT max(val) - min(val) FROM t").scalar()
        assert value == 40.0

    def test_having_without_group_rejected(self, sample):
        with pytest.raises(PlanError):
            sample.execute("SELECT id FROM t HAVING id > 1")

    def test_star_with_aggregate_rejected(self, sample):
        with pytest.raises(PlanError):
            sample.execute("SELECT *, count(*) FROM t")

    def test_scalar_min_two_args_is_not_aggregate(self, sample):
        assert sample.execute("SELECT min(3, 1)").scalar() == 1


class TestOrderLimit:
    def test_order_asc_desc(self, sample):
        rows = sample.execute("SELECT id FROM t ORDER BY grp ASC, id DESC").rows
        assert [r[0] for r in rows] == [2, 1, 4, 3, 5]

    def test_order_by_ordinal(self, sample):
        rows = sample.execute("SELECT id, val FROM t ORDER BY 2 DESC LIMIT 1").rows
        assert rows[0][0] == 5

    def test_order_by_alias(self, sample):
        rows = sample.execute("SELECT val * 2 AS dv FROM t ORDER BY dv LIMIT 2").rows
        assert rows[0] == (None,)  # NULLs first ascending

    def test_order_by_unselected_expression(self, sample):
        rows = sample.execute("SELECT id FROM t ORDER BY val DESC LIMIT 2").rows
        assert [r[0] for r in rows] == [5, 3]

    def test_nulls_first_asc_last_desc(self, sample):
        asc = sample.execute("SELECT id FROM t ORDER BY val").rows
        desc = sample.execute("SELECT id FROM t ORDER BY val DESC").rows
        assert asc[0][0] == 4
        assert desc[-1][0] == 4

    def test_limit_offset(self, sample):
        rows = sample.execute("SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 1").rows
        assert [r[0] for r in rows] == [2, 3]

    def test_limit_zero(self, sample):
        assert sample.execute("SELECT id FROM t LIMIT 0").rows == []

    def test_distinct(self, sample):
        rows = sample.execute("SELECT DISTINCT grp FROM t ORDER BY grp").rows
        assert rows == [("a",), ("b",), ("c",)]

    def test_ordinal_out_of_range(self, sample):
        with pytest.raises(PlanError):
            sample.execute("SELECT id FROM t ORDER BY 9")


class TestSubqueries:
    def test_in_subquery(self, sample):
        sample.execute("CREATE TABLE picks (id INT)")
        sample.execute("INSERT INTO picks VALUES (1),(3)")
        rows = sample.execute(
            "SELECT id FROM t WHERE id IN (SELECT id FROM picks) ORDER BY id"
        ).rows
        assert rows == [(1,), (3,)]

    def test_not_in_subquery(self, sample):
        sample.execute("CREATE TABLE picks (id INT)")
        sample.execute("INSERT INTO picks VALUES (1),(2),(3),(4)")
        rows = sample.execute(
            "SELECT id FROM t WHERE id NOT IN (SELECT id FROM picks)"
        ).rows
        assert rows == [(5,)]

    def test_scalar_subquery(self, sample):
        rows = sample.execute(
            "SELECT id FROM t WHERE val = (SELECT max(val) FROM t)"
        ).rows
        assert rows == [(5,)]

    def test_from_subquery(self, sample):
        rows = sample.execute(
            "SELECT g, n FROM (SELECT grp AS g, count(*) AS n FROM t GROUP BY grp) s "
            "WHERE n > 1 ORDER BY g"
        ).rows
        assert rows == [("a", 2), ("b", 2)]


def _scans(db, sql):
    """Plan a statement and return its ProjectedScan leaves (post-run)."""
    planner = Planner(db.catalog)
    planned = planner.plan_select(parse_statement(sql))
    rows = planned.execute()

    def walk(node):
        found = [node] if isinstance(node, ProjectedScan) else []
        for child in node.children():
            found.extend(walk(child))
        return found

    return rows, walk(planned.plan)


class TestColumnSetWork:
    """``cols_read`` accounting: the logical width each query actually
    pulled off the page chains."""

    def test_narrow_select_reads_two_columns(self, sample):
        rows, scans = _scans(sample, "SELECT grp FROM t WHERE val > 15")
        assert sorted(r[0] for r in rows) == ["a", "b", "c"]
        assert [s.cols_read for s in scans] == [2]
        assert scans[0].column_names == ["grp", "val"]

    def test_star_reads_full_width(self, sample):
        _, scans = _scans(sample, "SELECT * FROM t")
        assert [s.cols_read for s in scans] == [3]

    def test_count_star_reads_zero_columns(self, sample):
        rows, scans = _scans(sample, "SELECT count(*) FROM t")
        assert rows == [(5,)]
        assert [s.cols_read for s in scans] == [0]

    def test_join_reads_keys_plus_outputs(self, sample):
        rows, scans = _scans(
            sample,
            "SELECT a.grp FROM t a JOIN t b ON a.id = b.id WHERE b.val > 40",
        )
        assert rows == [("c",)]
        widths = {s.binding: s.cols_read for s in scans}
        assert widths == {"a": 2, "b": 2}  # a: grp+id, b: id+val

    def test_narrow_results_match_full_scan(self, sample):
        narrow = sample.execute("SELECT val FROM t WHERE grp = 'b' ORDER BY id")
        sample.projection_pushdown = False
        full = sample.execute("SELECT val FROM t WHERE grp = 'b' ORDER BY id")
        assert narrow.rows == full.rows == [(30.0,), (None,)]

    def test_narrow_scan_correct_over_column_layout(self, db):
        db.execute("CREATE TABLE w (a INT, b INT, c INT, d INT)")
        for i in range(30):
            db.execute(f"INSERT INTO w VALUES ({i}, {i * 2}, {i * 3}, {i * 4})")
        db.execute("ALTER TABLE w SET LAYOUT COLUMN")
        rows = db.execute("SELECT b, d FROM w WHERE c >= 60 ORDER BY a").rows
        assert rows == [(2 * i, 4 * i) for i in range(20, 30)]

    def test_sql_scans_charge_co_access_stats(self, db):
        db = Database(auto_layout_interval=0)
        db.execute("CREATE TABLE s (a INT, b INT, c INT)")
        db.execute("INSERT INTO s VALUES (1, 2, 3)")
        db.execute("SELECT a FROM s WHERE b > 0")
        stats = db.table("s").store.access_stats
        # The real query path charged the column set it scanned together.
        assert stats.group_scans.get(("a", "b")) == 1
        assert stats.columns["a"].scans == 1
        assert stats.columns["b"].scans == 1
        assert "c" not in stats.columns


class TestScalarFunctions:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("abs(-4)", 4),
            ("round(2.567, 1)", 2.6),
            ("floor(2.7)", 2),
            ("ceil(2.1)", 3),
            ("length('hello')", 5),
            ("upper('aBc')", "ABC"),
            ("lower('aBc')", "abc"),
            ("trim('  x  ')", "x"),
            ("substr('hello', 2, 3)", "ell"),
            ("substr('hello', -3)", "llo"),
            ("replace('aaa', 'a', 'b')", "bbb"),
            ("instr('hello', 'll')", 3),
            ("coalesce(NULL, NULL, 7)", 7),
            ("nullif(3, 3)", None),
            ("ifnull(NULL, 'x')", "x"),
            ("cast('42' AS_IGNORED, 'INT')" if False else "cast('42', 'INT')", 42),
            ("typeof(1)", "integer"),
            ("sign(-9)", -1),
            ("mod(7, 3)", 1),
            ("power(2, 10)", 1024),
            ("concat('a', NULL, 'b')", "ab"),
        ],
    )
    def test_functions(self, db, expression, expected):
        assert db.execute(f"SELECT {expression}").scalar() == expected

    def test_unknown_function(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT frobnicate(1)")

    def test_division_by_zero_is_null(self, db):
        assert db.execute("SELECT 1 / 0").scalar() is None
        assert db.execute("SELECT 1 % 0").scalar() is None

    def test_integer_division_stays_exact(self, db):
        assert db.execute("SELECT 7 / 2").scalar() == 3.5
        assert db.execute("SELECT 8 / 2").scalar() == 4

    def test_concat_operator_null(self, db):
        assert db.execute("SELECT 'a' || NULL").scalar() is None
