"""Unit tests for A1 addressing (repro.core.address)."""

import pytest

from repro.core.address import (
    CellAddress,
    RangeAddress,
    column_index,
    column_label,
    parse_reference,
)
from repro.errors import AddressError


class TestColumnLabels:
    @pytest.mark.parametrize(
        "index,label",
        [(0, "A"), (1, "B"), (25, "Z"), (26, "AA"), (27, "AB"), (51, "AZ"),
         (52, "BA"), (701, "ZZ"), (702, "AAA"), (16383, "XFD")],
    )
    def test_label_roundtrip(self, index, label):
        assert column_label(index) == label
        assert column_index(label) == index

    def test_label_case_insensitive(self):
        assert column_index("ab") == column_index("AB")

    def test_negative_index_rejected(self):
        with pytest.raises(AddressError):
            column_label(-1)

    @pytest.mark.parametrize("bad", ["", "A1", "1", "A B"])
    def test_bad_labels_rejected(self, bad):
        with pytest.raises(AddressError):
            column_index(bad)

    def test_roundtrip_range(self):
        for index in range(0, 1000, 7):
            assert column_index(column_label(index)) == index


class TestCellAddress:
    def test_parse_simple(self):
        address = CellAddress.parse("B3")
        assert (address.row, address.col) == (2, 1)
        assert not address.row_absolute and not address.col_absolute

    def test_parse_absolute(self):
        address = CellAddress.parse("$C$7")
        assert (address.row, address.col) == (6, 2)
        assert address.row_absolute and address.col_absolute

    def test_parse_mixed_absolute(self):
        address = CellAddress.parse("C$7")
        assert not address.col_absolute and address.row_absolute
        address = CellAddress.parse("$C7")
        assert address.col_absolute and not address.row_absolute

    def test_parse_sheet_qualified(self):
        address = CellAddress.parse("Sheet2!A1")
        assert address.sheet == "Sheet2"
        assert (address.row, address.col) == (0, 0)

    def test_parse_quoted_sheet(self):
        address = CellAddress.parse("'My Sheet'!A1")
        assert address.sheet == "My Sheet"

    @pytest.mark.parametrize("bad", ["", "A", "1", "A0", "!A1", "A1:B2x", "$$A1"])
    def test_parse_invalid(self, bad):
        with pytest.raises(AddressError):
            CellAddress.parse(bad)

    def test_to_a1_roundtrip(self):
        for text in ["A1", "$B$2", "Sheet2!C3", "'Odd Name'!D$4", "ZZ100"]:
            assert CellAddress.parse(text).to_a1() == text

    def test_offset_relative(self):
        assert CellAddress.parse("B2").offset(2, 3).to_a1() == "E4"

    def test_offset_respects_absolute(self):
        shifted = CellAddress.parse("$B$2").offset(5, 5)
        assert shifted.to_a1() == "$B$2"
        shifted = CellAddress.parse("B$2").offset(5, 5)
        assert shifted.to_a1() == "G$2"

    def test_offset_off_sheet_raises(self):
        with pytest.raises(AddressError):
            CellAddress.parse("A1").offset(-1, 0)

    def test_translate_ignores_absolute(self):
        assert CellAddress.parse("$B$2").translate(1, 1).to_a1() == "$C$3"

    def test_ordering_row_major(self):
        cells = [CellAddress.parse(t) for t in ["B1", "A2", "A1", "B2"]]
        assert [c.to_a1() for c in sorted(cells)] == ["A1", "B1", "A2", "B2"]

    def test_negative_row_rejected(self):
        with pytest.raises(AddressError):
            CellAddress(-1, 0)


class TestRangeAddress:
    def test_parse_range(self):
        rng = RangeAddress.parse("A1:D100")
        assert rng.n_rows == 100
        assert rng.n_cols == 4
        assert rng.size == 400

    def test_parse_single_cell_as_range(self):
        rng = RangeAddress.parse("B3")
        assert rng.is_single_cell()
        assert rng.to_a1() == "B3"

    def test_normalisation(self):
        rng = RangeAddress.parse("D10:A1")
        assert rng.to_a1() == "A1:D10"

    def test_sheet_propagates_to_end(self):
        rng = RangeAddress.parse("S!A1:B2")
        assert rng.sheet == "S"
        assert rng.end.sheet == "S"

    def test_contains(self):
        rng = RangeAddress.parse("B2:D4")
        assert rng.contains(CellAddress.parse("C3"))
        assert rng.contains(CellAddress.parse("B2"))
        assert rng.contains(CellAddress.parse("D4"))
        assert not rng.contains(CellAddress.parse("A1"))
        assert not rng.contains(CellAddress.parse("E4"))

    def test_contains_respects_sheet(self):
        rng = RangeAddress.parse("S!B2:D4")
        assert not rng.contains(CellAddress.parse("T!C3"))
        assert rng.contains(CellAddress.parse("S!C3"))

    def test_intersects_and_intersection(self):
        a = RangeAddress.parse("A1:C3")
        b = RangeAddress.parse("B2:D4")
        assert a.intersects(b)
        assert a.intersection(b).to_a1() == "B2:C3"

    def test_disjoint(self):
        a = RangeAddress.parse("A1:B2")
        b = RangeAddress.parse("C3:D4")
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_union_bounding_box(self):
        a = RangeAddress.parse("A1:B2")
        b = RangeAddress.parse("D4:E5")
        assert a.union_bounding_box(b).to_a1() == "A1:E5"

    def test_cells_row_major(self):
        rng = RangeAddress.parse("A1:B2")
        assert [c.to_a1() for c in rng.cells()] == ["A1", "B1", "A2", "B2"]

    def test_rows_and_columns_iterators(self):
        rng = RangeAddress.parse("A1:C2")
        assert [r.to_a1() for r in rng.rows()] == ["A1:C1", "A2:C2"]
        assert [c.to_a1() for c in rng.columns()] == ["A1:A2", "B1:B2", "C1:C2"]

    def test_cell_at_offsets(self):
        rng = RangeAddress.parse("B2:D4")
        assert rng.cell_at(0, 0).to_a1() == "B2"
        assert rng.cell_at(2, 2).to_a1() == "D4"
        with pytest.raises(AddressError):
            rng.cell_at(3, 0)

    def test_from_dimensions(self):
        rng = RangeAddress.from_dimensions(2, 1, 3, 2)
        assert rng.to_a1() == "B3:C5"
        with pytest.raises(AddressError):
            RangeAddress.from_dimensions(0, 0, 0, 1)

    def test_expand_and_translate(self):
        rng = RangeAddress.parse("B2:C3")
        assert rng.expand(1, 1).to_a1() == "B2:D4"
        assert rng.translate(1, 1).to_a1() == "C3:D4"

    def test_cross_sheet_endpoints_rejected(self):
        with pytest.raises(AddressError):
            RangeAddress(CellAddress.parse("A!A1"), CellAddress.parse("B!B2"))


def test_parse_reference_dispatch():
    assert isinstance(parse_reference("A1"), CellAddress)
    assert isinstance(parse_reference("A1:B2"), RangeAddress)
