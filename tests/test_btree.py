"""Unit + property tests for the B+-tree key index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree
from repro.errors import StorageError


class TestUnique:
    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(5, "five")
        tree.insert(1, "one")
        assert tree.get(5) == "five"
        assert tree.get(1) == "one"
        assert tree.get(99) is None
        assert tree.get(99, "default") == "default"

    def test_contains(self):
        tree = BPlusTree()
        tree.insert(1, None)  # None value still counts as present
        assert 1 in tree
        assert 2 not in tree

    def test_duplicate_rejected(self):
        tree = BPlusTree()
        tree.insert(1, "x")
        with pytest.raises(StorageError):
            tree.insert(1, "y")

    def test_null_key_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree().insert(None, "x")

    def test_delete(self):
        tree = BPlusTree()
        tree.insert(1, "x")
        assert tree.delete(1)
        assert not tree.delete(1)
        assert len(tree) == 0

    def test_many_inserts_split_correctly(self):
        tree = BPlusTree()
        for key in range(1000):
            tree.insert((key * 7919) % 1000 if False else key, key)
        assert len(tree) == 1000
        assert list(tree.keys()) == list(range(1000))
        tree.validate()

    def test_shuffled_inserts(self):
        import random

        keys = list(range(500))
        random.Random(3).shuffle(keys)
        tree = BPlusTree()
        for key in keys:
            tree.insert(key, key * 2)
        assert [v for _, v in tree.items()] == [k * 2 for k in range(500)]
        tree.validate()

    def test_string_keys(self):
        tree = BPlusTree()
        for word in ["pear", "apple", "fig", "date"]:
            tree.insert(word, word.upper())
        assert list(tree.keys()) == ["apple", "date", "fig", "pear"]


class TestRangeScan:
    def make(self):
        tree = BPlusTree()
        for key in range(0, 100, 2):  # evens
            tree.insert(key, key)
        return tree

    def test_closed_range(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_open_ends(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(10, 20, include_low=False, include_high=False)] == [12, 14, 16, 18]

    def test_unbounded_low(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(None, 6)] == [0, 2, 4, 6]

    def test_unbounded_high(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(94, None)] == [94, 96, 98]

    def test_missing_bound_keys(self):
        tree = self.make()
        assert [k for k, _ in tree.range_scan(11, 15)] == [12, 14]


class TestNonUnique:
    def test_duplicates_accumulate(self):
        tree = BPlusTree(unique=False)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.get("k") == [1, 2]
        assert len(tree) == 2

    def test_delete_specific_value(self):
        tree = BPlusTree(unique=False)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.delete("k", 1)
        assert tree.get("k") == [2]
        assert len(tree) == 1

    def test_delete_whole_key(self):
        tree = BPlusTree(unique=False)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.delete("k")
        assert tree.get("k") is None
        assert len(tree) == 0

    def test_delete_missing_value(self):
        tree = BPlusTree(unique=False)
        tree.insert("k", 1)
        assert not tree.delete("k", 99)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 200)), max_size=150))
def test_matches_dict_model(operations):
    """Property: unique tree ≡ dict under random insert/delete."""
    tree = BPlusTree()
    model = {}
    for is_insert, key in operations:
        if is_insert:
            if key in model:
                with pytest.raises(StorageError):
                    tree.insert(key, key)
            else:
                tree.insert(key, key)
                model[key] = key
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert list(tree.items()) == sorted(model.items())
    tree.validate()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 500), unique=True, min_size=1, max_size=120),
    st.integers(0, 500),
    st.integers(0, 500),
)
def test_range_scan_matches_filter(keys, low, high):
    low, high = min(low, high), max(low, high)
    tree = BPlusTree()
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range_scan(low, high)] == expected
