"""DML and DDL execution tests, including the DataSpread positional insert
and cheap schema changes."""

import pytest

from repro import Database
from repro.engine.store import LayoutPolicy
from repro.errors import CatalogError, ConstraintError, ExecutionError, SchemaError


@pytest.fixture
def people(db):
    db.execute("CREATE TABLE people (pid INT PRIMARY KEY, name TEXT, age INT)")
    db.execute("INSERT INTO people VALUES (1,'ann',30),(2,'bob',40),(3,'cat',50)")
    return db


class TestInsert:
    def test_rowcount(self, people):
        result = people.execute("INSERT INTO people VALUES (4,'dan',60),(5,'eve',70)")
        assert result.rowcount == 2
        assert people.table("people").n_rows == 5

    def test_column_subset_fills_nulls(self, people):
        people.execute("INSERT INTO people (pid, name) VALUES (9, 'zoe')")
        assert people.execute("SELECT age FROM people WHERE pid=9").scalar() is None

    def test_insert_select(self, people):
        people.execute("CREATE TABLE copy (pid INT, name TEXT, age INT)")
        people.execute("INSERT INTO copy SELECT * FROM people WHERE age >= 40")
        assert people.table("copy").n_rows == 2

    def test_insert_at_position(self, people):
        people.execute("INSERT INTO people VALUES (7,'mid',35) AT POSITION 1")
        rows = people.execute("SELECT pid FROM people").rows
        assert [r[0] for r in rows] == [1, 7, 2, 3]

    def test_insert_at_position_zero(self, people):
        people.execute("INSERT INTO people VALUES (8,'first',1) AT POSITION 0")
        assert people.execute("SELECT pid FROM people LIMIT 1").scalar() == 8

    def test_duplicate_pk_rejected(self, people):
        with pytest.raises(ConstraintError):
            people.execute("INSERT INTO people VALUES (1,'dup',0)")

    def test_null_pk_rejected(self, people):
        with pytest.raises(ConstraintError):
            people.execute("INSERT INTO people VALUES (NULL,'x',0)")

    def test_wrong_arity(self, people):
        with pytest.raises(ExecutionError):
            people.execute("INSERT INTO people (pid) VALUES (10, 'extra')")

    def test_type_coercion_on_insert(self, people):
        people.execute("INSERT INTO people VALUES (11, 'kim', '44')")
        value = people.execute("SELECT age FROM people WHERE pid=11").scalar()
        assert value == 44 and isinstance(value, int)

    def test_default_applies(self, db):
        db.execute("CREATE TABLE d (id INT, status TEXT DEFAULT 'new')")
        db.execute("INSERT INTO d (id) VALUES (1)")
        assert db.execute("SELECT status FROM d").scalar() == "new"


class TestUpdate:
    def test_update_where(self, people):
        result = people.execute("UPDATE people SET age = age + 1 WHERE age >= 40")
        assert result.rowcount == 2
        assert people.execute("SELECT age FROM people WHERE pid=3").scalar() == 51

    def test_update_all(self, people):
        assert people.execute("UPDATE people SET age = 0").rowcount == 3

    def test_update_sees_pre_update_values(self, people):
        # Swap-ish: both assignments read the original row.
        people.execute("UPDATE people SET age = pid, pid = pid + 100 WHERE pid = 1")
        row = people.execute("SELECT pid, age FROM people WHERE pid = 101").rows[0]
        assert row == (101, 1)

    def test_update_pk_uniqueness_enforced(self, people):
        with pytest.raises(ConstraintError):
            people.execute("UPDATE people SET pid = 2 WHERE pid = 1")

    def test_update_with_parameter(self, people):
        people.execute("UPDATE people SET name = ? WHERE pid = ?", ("ANN", 1))
        assert people.execute("SELECT name FROM people WHERE pid=1").scalar() == "ANN"


class TestDelete:
    def test_delete_where(self, people):
        assert people.execute("DELETE FROM people WHERE age > 35").rowcount == 2
        assert people.table("people").n_rows == 1

    def test_delete_all(self, people):
        people.execute("DELETE FROM people")
        assert people.table("people").n_rows == 0

    def test_delete_preserves_position_order(self, people):
        people.execute("DELETE FROM people WHERE pid = 2")
        rows = people.execute("SELECT pid FROM people").rows
        assert [r[0] for r in rows] == [1, 3]


class TestCreateDrop:
    def test_create_as_select_infers_types(self, people):
        people.execute("CREATE TABLE stats AS SELECT name, age * 2 AS dbl FROM people")
        table = people.table("stats")
        assert table.n_rows == 3
        assert table.schema.column("dbl").dtype.value == "INTEGER"

    def test_create_duplicate_rejected(self, people):
        with pytest.raises(CatalogError):
            people.execute("CREATE TABLE people (x INT)")

    def test_if_not_exists(self, people):
        people.execute("CREATE TABLE IF NOT EXISTS people (x INT)")
        assert people.table("people").schema.has_column("pid")

    def test_drop(self, people):
        people.execute("DROP TABLE people")
        assert not people.has_table("people")

    def test_drop_missing(self, people):
        with pytest.raises(CatalogError):
            people.execute("DROP TABLE nope")
        people.execute("DROP TABLE IF EXISTS nope")


class TestAlter:
    def test_add_column_visible_and_defaulted(self, people):
        people.execute("ALTER TABLE people ADD COLUMN email TEXT DEFAULT 'n/a'")
        result = people.execute("SELECT email FROM people WHERE pid=1")
        assert result.scalar() == "n/a"

    def test_add_column_rowcount_reports_rewrites(self, db):
        db.execute("CREATE TABLE w (a INT)")
        for i in range(300):
            db.execute("INSERT INTO w VALUES (?)", (i,))
        # Hybrid layout: new column lands in a fresh group -> zero rewrites.
        assert db.execute("ALTER TABLE w ADD COLUMN b INT").rowcount == 0

    def test_add_column_row_layout_rewrites_everything(self):
        db = Database(default_layout=LayoutPolicy.ROW)
        db.execute("CREATE TABLE w (a INT)")
        for i in range(300):
            db.execute("INSERT INTO w VALUES (?)", (i,))
        assert db.execute("ALTER TABLE w ADD COLUMN b INT").rowcount > 0

    def test_drop_column(self, people):
        people.execute("ALTER TABLE people DROP COLUMN age")
        assert people.table("people").column_names == ["pid", "name"]

    def test_drop_pk_rejected(self, people):
        with pytest.raises(SchemaError):
            people.execute("ALTER TABLE people DROP COLUMN pid")

    def test_rename_column(self, people):
        people.execute("ALTER TABLE people RENAME COLUMN name TO full_name")
        assert people.execute("SELECT full_name FROM people WHERE pid=1").scalar() == "ann"

    def test_add_at_group(self, db):
        db.execute("CREATE TABLE g (a INT, b INT)")
        db.execute("INSERT INTO g VALUES (1, 2)")
        db.execute("ALTER TABLE g ADD COLUMN c INT AT GROUP 0")
        schema = db.table("g").schema
        assert schema.group_of("c") == 0


class TestTransactions:
    def test_commit_keeps_changes(self, people):
        people.execute("BEGIN")
        people.execute("INSERT INTO people VALUES (10,'tmp',1)")
        people.execute("COMMIT")
        assert people.table("people").n_rows == 4

    def test_rollback_undoes_insert(self, people):
        people.execute("BEGIN")
        people.execute("INSERT INTO people VALUES (10,'tmp',1)")
        people.execute("ROLLBACK")
        assert people.table("people").n_rows == 3

    def test_rollback_undoes_update(self, people):
        people.execute("BEGIN")
        people.execute("UPDATE people SET age = 0")
        people.execute("ROLLBACK")
        assert people.execute("SELECT age FROM people WHERE pid=1").scalar() == 30

    def test_rollback_undoes_delete_with_position(self, people):
        people.execute("BEGIN")
        people.execute("DELETE FROM people WHERE pid = 2")
        people.execute("ROLLBACK")
        rows = people.execute("SELECT pid FROM people").rows
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_rollback_undoes_schema_change(self, people):
        """The paper's §2.2 challenge: DDL participates in transactions."""
        people.execute("BEGIN")
        people.execute("ALTER TABLE people ADD COLUMN extra INT DEFAULT 1")
        people.execute("UPDATE people SET extra = 5 WHERE pid = 1")
        people.execute("ROLLBACK")
        assert people.table("people").column_names == ["pid", "name", "age"]

    def test_rollback_restores_dropped_column_values(self, people):
        people.execute("BEGIN")
        people.execute("ALTER TABLE people DROP COLUMN age")
        people.execute("ROLLBACK")
        assert people.execute("SELECT age FROM people WHERE pid=3").scalar() == 50

    def test_rollback_undoes_drop_table(self, people):
        people.execute("BEGIN")
        people.execute("DROP TABLE people")
        people.execute("ROLLBACK")
        assert people.table("people").n_rows == 3

    def test_rollback_undoes_create_table(self, people):
        people.execute("BEGIN")
        people.execute("CREATE TABLE temp (x INT)")
        people.execute("ROLLBACK")
        assert not people.has_table("temp")

    def test_mixed_dml_ddl_transaction(self, people):
        people.execute("BEGIN")
        people.execute("ALTER TABLE people ADD COLUMN score REAL DEFAULT 0")
        people.execute("UPDATE people SET score = age * 1.5")
        people.execute("DELETE FROM people WHERE pid = 3")
        people.execute("ROLLBACK")
        assert people.table("people").n_rows == 3
        assert people.table("people").column_names == ["pid", "name", "age"]

    def test_nested_begin_rejected(self, people):
        from repro.errors import TransactionError

        people.execute("BEGIN")
        with pytest.raises(TransactionError):
            people.execute("BEGIN")
        people.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, people):
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            people.execute("COMMIT")

    def test_table_validates_after_rollback(self, people):
        people.execute("BEGIN")
        people.execute("INSERT INTO people VALUES (10,'x',1)")
        people.execute("UPDATE people SET age = 99 WHERE pid = 1")
        people.execute("DELETE FROM people WHERE pid = 2")
        people.execute("ROLLBACK")
        people.table("people").validate()
