"""Workload-adaptive layouts: advisor, online migrator, and the wiring
(Table tick, Database maintenance, ALTER ... SET LAYOUT, CLI commands)."""

import pytest

from repro.engine.database import Database
from repro.engine.hybridstore import (
    estimate_workload_blocks,
    pages_for_group,
    restructure_blocks,
)
from repro.engine.layout import LayoutAdvisor, LayoutMigration, plan_groupings
from repro.engine.pager import BufferPool
from repro.engine.schema import Column, TableSchema
from repro.engine.store import AccessStats, GroupedTupleStore, LayoutPolicy
from repro.engine.table import Table
from repro.engine.types import DBType
from repro.errors import SchemaError


def make_store(n_cols=4, n_rows=100, layout=LayoutPolicy.ROW, page_capacity=16):
    schema = TableSchema.from_pairs(
        [(f"c{i}", DBType.INTEGER) for i in range(n_cols)]
    )
    store = GroupedTupleStore(schema, layout=layout, page_capacity=page_capacity)
    for i in range(n_rows):
        store.insert(tuple(range(i, i + n_cols)))
    return store


class TestCostModel:
    def test_pages_for_group_packs_by_width(self):
        assert pages_for_group(100, 1, 16) == 7  # 16 records/page
        assert pages_for_group(100, 4, 16) == 25  # 4 records/page
        assert pages_for_group(0, 4, 16) == 0
        # Width beyond the page budget still stores one record per page.
        assert pages_for_group(10, 99, 16) == 10

    def test_scan_cost_prefers_narrow_groups(self):
        stats = AccessStats()
        stats.column("a").scans = 10
        row = [["a", "b", "c", "d"]]
        hybrid = [["a"], ["b", "c", "d"]]
        assert estimate_workload_blocks(hybrid, stats, 100, 16) < (
            estimate_workload_blocks(row, stats, 100, 16)
        )

    def test_point_cost_prefers_wide_groups(self):
        stats = AccessStats(inserts=50, point_reads=50)
        row = [["a", "b", "c", "d"]]
        column = [["a"], ["b"], ["c"], ["d"]]
        assert estimate_workload_blocks(row, stats, 100, 16) < (
            estimate_workload_blocks(column, stats, 100, 16)
        )

    def test_single_column_update_is_layout_independent(self):
        stats = AccessStats()
        stats.column("a").updates = 25
        row = estimate_workload_blocks([["a", "b"]], stats, 100, 16)
        col = estimate_workload_blocks([["a"], ["b"]], stats, 100, 16)
        assert row == col == 25

    def test_restructure_blocks_free_for_reused_groups(self):
        current = [["a"], ["b", "c"]]
        assert restructure_blocks(current, current, 100, 16) == 0
        # Rebuilding just one group charges only that group's sources.
        target = [["a"], ["c", "b"]]  # reordered members -> rebuild
        assert restructure_blocks(current, target, 100, 16) > 0

    def test_split_charges_each_source_chain_once(self):
        """Regression: the old model charged a full source-chain read per
        *member column*, so splitting one 4-wide group into two pairs
        billed four reads of the same chain instead of two — the advisor
        overestimated split costs and under-migrated."""
        source = pages_for_group(100, 4, 16)
        pair = pages_for_group(100, 2, 16)
        cost = restructure_blocks(
            [["a", "b", "c", "d"]], [["a", "b"], ["c", "d"]], 100, 16
        )
        # Each target-group build reads the shared source chain ONCE.
        assert cost == 2 * (source + pair)
        # Full shred to singletons: still one source read per build.
        single = pages_for_group(100, 1, 16)
        shred = restructure_blocks(
            [["a", "b", "c", "d"]],
            [["a"], ["b"], ["c"], ["d"]],
            100,
            16,
        )
        assert shred == 4 * (source + single)

    def test_merge_charges_each_distinct_chain_once(self):
        single = pages_for_group(100, 1, 16)
        merged = pages_for_group(100, 2, 16)
        cost = restructure_blocks([["a"], ["b"]], [["a", "b"]], 100, 16)
        # Two distinct source chains: both read, plus the fresh chain.
        assert cost == 2 * single + merged

    def test_mixed_sources_deduped_per_target_build(self):
        # Target [a, b, c] draws a and b from one chain, c from another:
        # exactly two source reads, never three.
        wide = pages_for_group(100, 3, 16)
        cost = restructure_blocks(
            [["a", "b"], ["c"], ["d"]],
            [["a", "b", "c"], ["d"]],
            100,
            16,
        )
        assert cost == (
            pages_for_group(100, 2, 16) + pages_for_group(100, 1, 16) + wide
        )


class TestAccessStats:
    def test_operations_are_attributed(self):
        store = make_store(n_rows=10)
        rid = store.rids()[0]
        store.get(rid)
        list(store.scan())
        list(store.scan_column("c1"))
        store.update_column(rid, "c1", 99)
        store.update(rid, (1, 2, 3, 4))
        store.delete(store.rids()[-1])
        stats = store.access_stats
        assert stats.inserts == 10
        assert stats.point_reads == 1
        assert stats.full_scans == 1
        assert stats.full_updates == 1
        assert stats.deletes == 1
        assert stats.columns["c1"].scans == 1
        assert stats.columns["c1"].updates == 1

    def test_scan_is_not_charged_as_point_reads(self):
        store = make_store(n_rows=50)
        list(store.scan())
        assert store.access_stats.point_reads == 0

    def test_schema_changes_move_column_stats(self):
        store = make_store(n_rows=5)
        list(store.scan_column("c0"))
        store.rename_column("c0", "z")
        assert store.access_stats.columns["z"].scans == 1
        assert "c0" not in store.access_stats.columns
        store.drop_column("z")
        assert "z" not in store.access_stats.columns
        assert store.access_stats.schema_changes == 2

    def test_failed_operations_do_not_pollute_stats(self):
        # Regression: a failed update/scan/drop on an unknown column used
        # to record phantom column entries and counters.
        store = make_store(n_rows=5)
        before = store.access_stats.to_dict()
        with pytest.raises(SchemaError):
            store.update_column(store.rids()[0], "nosuch", 1)
        with pytest.raises(SchemaError):
            list(store.scan_column("nosuch"))
        with pytest.raises(SchemaError):
            store.drop_column("nosuch")
        assert store.access_stats.to_dict() == before
        assert "nosuch" not in store.access_stats.columns

    def test_decay_and_reset(self):
        stats = AccessStats(inserts=8, point_reads=3)
        stats.column("a").scans = 5
        stats.decay(0.5)
        assert stats.inserts == 4 and stats.point_reads == 1
        assert stats.columns["a"].scans == 2
        stats.reset()
        assert stats.total_ops == 0


class TestAdvisor:
    def test_scan_heavy_splits_hot_column(self):
        store = make_store(layout=LayoutPolicy.ROW)
        for _ in range(50):
            list(store.scan_column("c2"))
        recommendation = LayoutAdvisor(min_ops=8).advise(store)
        assert recommendation is not None and recommendation.worthwhile
        assert ["c2"] in recommendation.target_groups

    def test_point_heavy_merges_to_row(self):
        store = make_store(layout=LayoutPolicy.COLUMN)
        for rid in store.rids():
            store.get(rid)
            store.get(rid)
        recommendation = LayoutAdvisor(min_ops=8).advise(store)
        assert recommendation is not None
        assert len(recommendation.target_groups) == 1  # one wide group

    def test_min_ops_gate(self):
        store = make_store()
        store.access_stats.reset()
        list(store.scan_column("c0"))
        assert LayoutAdvisor(min_ops=1000).advise(store) is None

    def test_no_recommendation_when_current_is_best(self):
        store = make_store(layout=LayoutPolicy.ROW)
        store.access_stats.reset()
        for rid in store.rids()[:40]:
            store.get(rid)
        assert LayoutAdvisor(min_ops=8).advise(store) is None

    def test_threshold_blocks_marginal_migrations(self):
        store = make_store(layout=LayoutPolicy.ROW)
        store.access_stats.reset()
        for _ in range(2):
            list(store.scan_column("c0"))
        recommendation = LayoutAdvisor(min_ops=1, threshold=1e9).advise(store)
        if recommendation is not None:
            assert not recommendation.worthwhile


class TestMigration:
    def test_plan_reaches_target(self):
        plan = plan_groupings([["a", "b"], ["c", "d"]], [["a", "c"], ["b", "d"]])
        assert plan  # needs splits and merges
        final = {frozenset(group) for group in ({"a", "c"}, {"b", "d"})}
        assert {frozenset(g) for g in plan[-1]} == final

    def test_mid_migration_reads_and_writes_work(self):
        store = make_store(n_cols=4, n_rows=60, layout=LayoutPolicy.ROW)
        migration = LayoutMigration(store, [["c0", "c2"], ["c1", "c3"]])
        step = 0
        while not migration.done:
            migration.step()
            store.validate()
            # Mid-migration: every operation keeps working.
            rid = store.insert((step, step + 1, step + 2, step + 3))
            assert store.read_row(rid) == (step, step + 1, step + 2, step + 3)
            store.update_column(rid, "c1", -step)
            assert dict(store.scan_column("c1"))[rid] == -step
            store.delete(rid)
            step += 1
        assert {frozenset(g) for g in store.schema.groups} == {
            frozenset({"c0", "c2"}),
            frozenset({"c1", "c3"}),
        }
        assert [store.read_row(r) for r in store.rids()] == [
            tuple(range(i, i + 4)) for i in range(60)
        ]

    def test_restructure_reuses_unchanged_chains(self):
        store = make_store(layout=LayoutPolicy.COLUMN)
        pages_before = {
            tuple(group): list(store._chains[index])
            for index, group in enumerate(store.schema.groups)
        }
        written = store.restructure([["c0"], ["c1"], ["c2", "c3"]])
        # c0 and c1 chains are untouched (same page ids), only the merged
        # group was built.
        assert store._chains[0] == pages_before[("c0",)]
        assert store._chains[1] == pages_before[("c1",)]
        assert written == store.pages_in_group(2)

    def test_restructure_rejects_bad_cover(self):
        store = make_store()
        with pytest.raises(SchemaError):
            store.restructure([["c0", "c1"]])

    def test_migration_tolerates_racing_ddl(self):
        store = make_store(n_cols=3, n_rows=20, layout=LayoutPolicy.ROW)
        migration = LayoutMigration(store, [["c0"], ["c1", "c2"]])
        migration.step()
        # Racing DDL: add a column and drop one named in the target.
        store.add_column(Column("extra", DBType.INTEGER, default=7))
        store.drop_column("c1")
        migration.run_to_completion()
        store.validate()
        names = {frozenset(group) for group in store.schema.groups}
        assert frozenset({"c0"}) in names
        assert all(
            "c1" not in group for group in store.schema.groups for _ in [0]
        )
        # New column survived with its default.
        assert set(dict(store.scan_column("extra")).values()) == {7}


class TestTableTick:
    def make_table(self):
        schema = TableSchema.from_pairs(
            [(f"c{i}", DBType.INTEGER) for i in range(4)]
        )
        table = Table("t", schema, layout=LayoutPolicy.ROW, page_capacity=16)
        # Incompressible values (distinct 8-byte ints): page encodings
        # stay out of the picture, so these tests exercise the migration
        # machinery rather than the encode-first maintenance path.
        for i in range(100):
            table.insert(
                tuple(i * 2**33 + j for j in range(4)), emit=False
            )
        return table

    def test_tick_lifecycle(self):
        table = self.make_table()
        table.set_auto_layout(True)
        table.layout_advisor.min_ops = 8
        for _ in range(40):
            list(table.store.scan_column("c3"))
        report = table.layout_tick()
        assert report["action"] == "migration_started"
        assert table.migration_active
        while table.migration_active:
            report = table.layout_tick(steps=1)
        assert report["action"] == "migrated"
        assert ["c3"] in table.schema.groups
        table.validate()

    def test_tick_idle_without_auto(self):
        table = self.make_table()
        for _ in range(40):
            list(table.store.scan_column("c3"))
        assert table.layout_tick()["action"] == "idle"
        assert not table.migration_active

    def test_migrate_layout_offline(self):
        table = self.make_table()
        migration = table.migrate_layout([["c0", "c1"], ["c2", "c3"]], online=False)
        assert migration.steps_taken >= 1
        assert not table.migration_active
        table.validate()

    def test_offline_migration_supersedes_in_flight_one(self):
        # Regression: an explicit offline migration must cancel any
        # in-flight online migration — otherwise the next tick would pull
        # the layout back toward the abandoned target.
        table = self.make_table()
        table.migrate_layout([["c0"], ["c1", "c2", "c3"]], online=True)
        assert table.migration_active
        table.migrate_layout([["c0", "c1", "c2", "c3"]], online=False)
        assert not table.migration_active
        for _ in range(8):
            table.layout_tick()
        assert table.schema.groups == [["c0", "c1", "c2", "c3"]]
        table.validate()


class TestSqlAndDatabase:
    def test_set_layout_row_and_column(self):
        db = Database(auto_layout_interval=0)
        db.execute("CREATE TABLE t (a INT, b INT, c INT)")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i})")
        db.execute("ALTER TABLE t SET LAYOUT COLUMN")
        assert db.table("t").schema.groups == [["a"], ["b"], ["c"]]
        db.execute("ALTER TABLE t SET LAYOUT ROW")
        assert db.table("t").schema.groups == [["a", "b", "c"]]
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 20
        db.table("t").validate()

    def test_set_layout_auto_and_manual(self):
        db = Database(auto_layout_interval=0)
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        assert db.table("t").auto_layout
        db.execute("ALTER TABLE t SET LAYOUT MANUAL")
        assert not db.table("t").auto_layout

    def test_set_layout_rolls_back(self):
        db = Database(auto_layout_interval=0)
        db.execute("CREATE TABLE t (a INT, b INT)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        before = db.table("t").schema.groups
        db.execute("BEGIN")
        db.execute("ALTER TABLE t SET LAYOUT COLUMN")
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        db.execute("ROLLBACK")
        table = db.table("t")
        assert table.schema.groups == before
        assert not table.auto_layout
        table.validate()

    def test_set_layout_parse_errors(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            db.execute("ALTER TABLE t SET LAYOUT sideways")

    def test_auto_maintenance_migrates_through_statements(self):
        # Inline mode pinned: this test asserts the *synchronous* cadence
        # (tick runs inside execute), which REPRO_BG_MAINT=1 would defer
        # to the worker thread.  Background timing has its own coverage
        # in test_htap_isolation.py.
        db = Database(
            page_capacity=16, auto_layout_interval=10, background_maintenance=False
        )
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        table = db.table("t")
        for i in range(200):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i}, {i})")
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        table.layout_advisor.min_ops = 8
        for _ in range(60):
            list(table.store.scan_column("a"))
            db.execute("SELECT 1")
        assert ["a"] in table.schema.groups
        actions = [r["action"] for r in db.maintenance_reports]
        assert "migration_started" in actions and "migrated" in actions
        table.validate()

    def test_no_tick_inside_transaction(self):
        db = Database(page_capacity=16, auto_layout_interval=5)
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        table = db.table("t")
        for i in range(100):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i}, {i})")
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        table.layout_advisor.min_ops = 1
        for _ in range(30):
            list(table.store.scan_column("a"))
        db.execute("BEGIN")
        for _ in range(20):
            db.execute("SELECT 1")
        # No migration may start mid-transaction.
        assert not table.migration_active
        assert table.schema.groups == [["a", "b", "c", "d"]]
        db.execute("COMMIT")

    def test_buffer_frames_bound_the_pool(self):
        db = Database(buffer_frames=2)
        assert db.catalog.pool.capacity == 2

    def test_static_layout_suspends_auto(self):
        # Regression: SET LAYOUT ROW on an AUTO table used to leave the
        # advisor loop on, which would migrate the explicit layout away
        # at the next tick using the same accumulated stats.
        db = Database(page_capacity=16, auto_layout_interval=5)
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        table = db.table("t")
        for i in range(150):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i}, {i})")
        db.execute("ALTER TABLE t SET LAYOUT AUTO")
        table.layout_advisor.min_ops = 1
        for _ in range(50):
            list(table.store.scan_column("a"))
        db.execute("ALTER TABLE t SET LAYOUT ROW")
        assert not table.auto_layout
        for _ in range(30):
            db.execute("SELECT 1")
        assert table.schema.groups == [["a", "b", "c", "d"]]
        table.validate()

    def test_recreated_table_starts_with_clean_group_io(self):
        # Regression: (table_name, gid) tags let a re-created table of the
        # same name inherit the dropped table's per-group I/O counters.
        db = Database(auto_layout_interval=0)
        db.execute("CREATE TABLE t (a INT, b INT)")
        for i in range(50):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.checkpoint()
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (x INT, y INT)")
        summary = db.table("t").store.group_summary()
        assert all(
            info["io"]["reads"] == 0 and info["io"]["writes"] == 0 for info in summary
        )


class TestCli:
    def make_shell(self):
        from repro.cli import DataSpreadShell

        shell = DataSpreadShell()
        shell.handle_line("sql CREATE TABLE t (a INT, b INT)")
        shell.handle_line("sql INSERT INTO t VALUES (1, 2)")
        return shell

    def test_layout_stats(self):
        shell = self.make_shell()
        output = shell.handle_line("layout-stats t")
        assert "table t: 1 rows" in output
        assert "group 0" in output
        assert "1 inserts" in output

    def test_layout_stats_all_tables(self):
        shell = self.make_shell()
        shell.handle_line("sql CREATE TABLE u (x INT)")
        output = shell.handle_line("layout-stats")
        assert "table t:" in output and "table u:" in output

    def test_layout_advise(self):
        shell = self.make_shell()
        output = shell.handle_line("layout-advise t")
        assert "table t:" in output
        assert "keep current" in output  # barely any workload yet
        # A scan-heavy workload flips the advice to a split.
        table = shell.workbook.database.table("t")
        table.layout_advisor.min_ops = 4
        for i in range(300):
            shell.handle_line(f"sql INSERT INTO t VALUES ({i + 10}, {i})")
        for _ in range(300):
            list(table.store.scan_column("a"))
        output = shell.handle_line("layout-advise t")
        assert "recommended" in output
        assert "['a']" in output

    def test_unknown_table_is_reported(self):
        shell = self.make_shell()
        assert "error" in shell.handle_line("layout-stats nope").lower()

    def test_layout_stats_shows_co_access_pairs(self):
        shell = self.make_shell()
        shell.handle_line("sql CREATE TABLE wide (a INT, b INT, c INT)")
        shell.handle_line("sql INSERT INTO wide VALUES (1, 2, 3)")
        # Narrow SQL scans drive the co-access counters the CLI surfaces.
        for _ in range(3):
            shell.handle_line("sql SELECT a FROM wide WHERE b > 0")
        output = shell.handle_line("layout-stats wide")
        assert "co-scan a+b: 3 joint scans" in output


class TestCoAccessStats:
    def test_scan_groups_records_the_set_once(self):
        store = make_store(n_rows=20)
        list(store.scan_groups(["c1", "c3"]))
        list(store.scan_groups(["c3", "c1"]))  # order-insensitive key
        stats = store.access_stats
        assert stats.group_scans == {("c1", "c3"): 2}
        assert stats.columns["c1"].scans == 2
        assert stats.columns["c3"].scans == 2

    def test_scan_column_records_singleton_set(self):
        store = make_store(n_rows=10)
        list(store.scan_column("c0"))
        assert store.access_stats.group_scans == {("c0",): 1}

    def test_scan_groups_values_are_rid_aligned(self):
        store = make_store(n_cols=4, n_rows=30, layout=LayoutPolicy.COLUMN)
        rows = dict(store.scan_groups(["c3", "c0"]))
        for rid in store.rids():
            full = store.read_row(rid)
            assert rows[rid] == (full[3], full[0])

    def test_scan_groups_touches_only_covering_chains(self):
        pool = BufferPool(capacity=2, page_capacity=8)
        schema = TableSchema.from_pairs(
            [(f"c{i}", DBType.INTEGER) for i in range(4)]
        )
        store = GroupedTupleStore(
            schema, pool=pool, layout=LayoutPolicy.COLUMN, page_capacity=8
        )
        for i in range(64):
            store.insert((i, i, i, i))
        store.checkpoint()
        pool.drop_cache()
        before = pool.stats.snapshot()
        idle_before = [store.group_io_stats(g).reads for g in range(4)]
        list(store.scan_groups(["c0", "c2"]))
        delta = pool.stats.delta(before)
        assert delta.reads == store.pages_in_group(0) + store.pages_in_group(2)
        # The untouched chains were not read after the cache drop.
        assert store.group_io_stats(1).reads == idle_before[1]
        assert store.group_io_stats(3).reads == idle_before[3]

    def test_full_width_scan_charges_full_scan(self):
        # SELECT * is a table scan, not a co-access signal: the advisor's
        # hot-column ranking must not be skewed by full-width scans.
        store = make_store(n_rows=10)
        list(store.scan_groups([f"c{i}" for i in range(4)]))
        stats = store.access_stats
        assert stats.full_scans == 1
        assert stats.group_scans == {}
        assert all(column.scans == 0 for column in stats.columns.values())

    def test_scan_groups_streams_lazily(self):
        # An early-exiting consumer (LIMIT) must only read the page
        # prefix it consumed, not materialise the whole chain.
        pool = BufferPool(page_capacity=8)
        schema = TableSchema.from_pairs(
            [(f"c{i}", DBType.INTEGER) for i in range(4)]
        )
        store = GroupedTupleStore(
            schema, pool=pool, layout=LayoutPolicy.COLUMN, page_capacity=8
        )
        for i in range(64):
            store.insert((i, i, i, i))
        store.checkpoint()
        pool.drop_cache()
        before = pool.stats.snapshot()
        iterator = store.scan_groups(["c0", "c2"])
        next(iterator)
        next(iterator)
        # Two rows touched the first page of each covering chain only.
        assert pool.stats.delta(before).reads == 2

    def test_decay_prunes_dead_sets(self):
        stats = AccessStats()
        stats.record_scan(["a", "b"])
        stats.decay(0.5)
        assert stats.group_scans == {}

    def test_rename_and_drop_rewrite_set_keys(self):
        store = make_store(n_cols=3, n_rows=10)
        list(store.scan_groups(["c0", "c1"]))
        store.rename_column("c0", "z")
        assert store.access_stats.group_scans == {("c1", "z"): 1}
        store.drop_column("z")
        assert store.access_stats.group_scans == {("c1",): 1}

    def test_serialization_roundtrip(self):
        stats = AccessStats()
        stats.record_scan(["a", "b"])
        stats.record_scan(["a", "b"])
        stats.record_scan(["c"])
        clone = AccessStats.from_dict(stats.to_dict())
        assert clone.group_scans == stats.group_scans
        assert clone.columns["a"].scans == 2

    def test_co_access_pairs_ranked(self):
        stats = AccessStats()
        for _ in range(3):
            stats.record_scan(["a", "b"])
        stats.record_scan(["a", "b", "c"])
        pairs = stats.co_access_pairs()
        assert pairs[0] == (("a", "b"), 4)
        assert (("a", "c"), 1) in pairs and (("b", "c"), 1) in pairs


class TestCoAccessCostModel:
    def test_joint_scan_charges_each_covering_chain_once(self):
        stats = AccessStats()
        for _ in range(10):
            stats.record_scan(["a", "b"])
        together = [["a", "b"], ["c", "d"]]
        apart = [["a"], ["b"], ["c", "d"]]
        joint = estimate_workload_blocks(together, stats, 100, 16)
        split = estimate_workload_blocks(apart, stats, 100, 16)
        # One 2-wide chain vs two 1-wide chains: the same pages for the
        # scans themselves (13 vs 2*7 with ceil) — co-location must not
        # multiply the scan bill.
        assert joint == 10 * pages_for_group(100, 2, 16)
        assert split == 10 * 2 * pages_for_group(100, 1, 16)

    def test_residual_scans_still_charged(self):
        # Directly-written counters (no co-access sets) keep the old
        # per-column pricing.
        stats = AccessStats()
        stats.column("a").scans = 10
        grouping = [["a"], ["b"]]
        assert estimate_workload_blocks(grouping, stats, 100, 16) == (
            10 * pages_for_group(100, 1, 16)
        )

    def test_no_double_charge_when_sets_cover_counters(self):
        recorded = AccessStats()
        for _ in range(5):
            recorded.record_scan(["a", "b"])
        grouping = [["a", "b"], ["c"]]
        cost = estimate_workload_blocks(grouping, recorded, 100, 16)
        assert cost == 5 * pages_for_group(100, 2, 16)


class TestCoAccessAdvisor:
    def drive(self, store, requests=40, point_reads=300):
        store.access_stats.reset()
        for _ in range(requests):
            list(store.scan_groups(["c0", "c1"]))
            list(store.scan_groups(["c0", "c1", "c2"]))
        for rid in store.rids()[:point_reads]:
            store.get(rid)

    def test_clusters_beat_singletons_on_mixed_workload(self):
        store = make_store(n_cols=12, n_rows=400, page_capacity=32)
        self.drive(store)
        singleton = LayoutAdvisor(min_ops=8, co_access=False).advise(store)
        clustered = LayoutAdvisor(min_ops=8, co_access=True).advise(store)
        assert singleton is not None and clustered is not None
        assert clustered.target_cost < singleton.target_cost
        # The winning grouping co-locates the jointly scanned columns.
        assert any(
            {"c0", "c1"} <= {name.lower() for name in group}
            for group in clustered.target_groups
        )

    def test_candidates_include_cluster_groupings(self):
        store = make_store(n_cols=6, n_rows=50)
        self.drive(store, requests=10, point_reads=20)
        advisor = LayoutAdvisor(co_access=True)
        signatures = [
            {frozenset(n.lower() for n in g) for g in grouping}
            for grouping in advisor.candidates(store)
        ]
        assert any(frozenset({"c0", "c1"}) in sig for sig in signatures)

    def test_co_access_off_matches_old_family(self):
        store = make_store(n_cols=4, n_rows=50)
        self.drive(store, requests=5, point_reads=10)
        advisor = LayoutAdvisor(co_access=False)
        for grouping in advisor.candidates(store):
            singletons = [group for group in grouping if len(group) == 1]
            assert len(grouping) - len(singletons) <= 1  # k hot + one cold


class TestBudgetedTick:
    #: A split-then-merge re-partition: four bounded restructure steps
    #: (two splits, two merges), so a budget has something to spread.
    START = [["c0", "c1"], ["c2", "c3"], ["c4", "c5"]]
    TARGET = [["c0", "c2"], ["c1", "c3"], ["c4", "c5"]]

    def make_table(self, n_cols=6, n_rows=200):
        schema = TableSchema.from_pairs(
            [(f"c{i}", DBType.INTEGER) for i in range(n_cols)]
        )
        table = Table("t", schema, layout=LayoutPolicy.HYBRID, page_capacity=16)
        table.store.restructure(self.START)
        for i in range(n_rows):
            table.insert(tuple(range(i, i + n_cols)), emit=False)
        return table

    def test_budget_spreads_migration_over_beats(self):
        unbudgeted = self.make_table()
        unbudgeted.migrate_layout(self.TARGET, online=True)
        free_report = unbudgeted.layout_tick(steps=100)
        assert free_report["action"] == "migrated"
        assert free_report["steps_taken"] > 1

        budgeted = self.make_table()
        budgeted.migrate_layout(self.TARGET, online=True)
        report = budgeted.layout_tick(steps=100, max_blocks=1)
        # The budget held the beat to a single restructure step even
        # though 100 were allowed.
        assert report["action"] == "migrating"
        assert report["steps_taken"] == 1
        beats = 1
        while budgeted.migration_active:
            budgeted.layout_tick(steps=100, max_blocks=1)
            beats += 1
            assert beats < 100, "budgeted migration did not converge"
        assert beats > 1
        assert budgeted.schema.groups == unbudgeted.schema.groups
        budgeted.validate()

    def test_budget_never_stalls_a_migration(self):
        table = self.make_table()
        table.migrate_layout(self.TARGET, online=True)
        # A budget smaller than any single step still makes progress
        # (first step per beat always runs).
        for _ in range(50):
            if not table.migration_active:
                break
            report = table.layout_tick(steps=4, max_blocks=0)
            assert report["blocks_this_tick"] >= 0
        assert not table.migration_active

    def test_default_budget_preserves_behaviour(self):
        capped = self.make_table()
        capped.migrate_layout(self.TARGET, online=True)
        report = capped.layout_tick(steps=100)
        assert report["action"] == "migrated"
        assert "blocks_this_tick" in report

    def test_database_tick_forwards_budget(self):
        db = Database(page_capacity=16, auto_layout_interval=0)
        db.execute("CREATE TABLE t (a INT, b INT, c INT, d INT)")
        table = db.table("t")
        table.store.restructure([["a", "b"], ["c", "d"]])
        for i in range(150):
            db.execute(f"INSERT INTO t VALUES ({i}, {i}, {i}, {i})")
        table.migrate_layout([["a", "c"], ["b", "d"]], online=True)
        reports = db.maintenance_tick(steps=100, max_blocks=1)
        assert reports and reports[0]["action"] == "migrating"
        assert reports[0]["steps_taken"] == 1


class TestPerGroupIo:
    def test_group_io_attribution(self):
        pool = BufferPool(capacity=2, page_capacity=8)
        schema = TableSchema.from_pairs(
            [("a", DBType.INTEGER), ("b", DBType.INTEGER)]
        )
        store = GroupedTupleStore(
            schema, pool=pool, layout=LayoutPolicy.COLUMN, page_capacity=8
        )
        for i in range(64):
            store.insert((i, i))
        store.checkpoint()
        pool.drop_cache()
        list(store.scan_column("a"))
        a_reads = store.group_io_stats(0).reads
        summary = store.group_summary()
        assert a_reads >= store.pages_in_group(0)
        assert summary[0]["io"]["reads"] == a_reads
        # Group b was not scanned after the cache drop.
        assert summary[1]["io"]["reads"] < a_reads

    def test_dead_group_tags_are_reclaimed(self):
        # Regression: every migration mints fresh group ids; dead groups'
        # tag counters must be dropped or they pile up forever.
        store = make_store(n_cols=3, n_rows=30, layout=LayoutPolicy.ROW)
        store.checkpoint()
        for target in ([["c0"], ["c1"], ["c2"]], [["c0", "c1", "c2"]]) * 3:
            store.restructure(target)
            store.checkpoint()
        disk = store.pool.disk
        live_tags = {store._tag(i) for i in range(store.n_groups)}
        stale = [t for t in disk._tag_stats if t not in live_tags]
        assert stale == []
