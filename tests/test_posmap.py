"""Positional mapping: the key-space splice behind O(log n) structural
edits (PositionalMapper) and its integration into the CellStore."""

import pytest

from repro.core.cell import Cell
from repro.index.posmap import LOGICAL_MAX, PositionalMapper
from repro.interface_storage import CellStore


class TestPositionalMapper:
    def test_identity_until_spliced(self):
        mapper = PositionalMapper()
        assert mapper.pristine
        assert mapper.physical_of(0) == 0
        assert mapper.physical_of(12345) == 12345
        assert mapper.position_of(77) == 77

    def test_insert_shifts_logical_not_physical(self):
        mapper = PositionalMapper()
        mapper.insert(3, 2)
        assert not mapper.pristine
        assert mapper.physical_of(2) == 2       # above: untouched
        assert mapper.physical_of(5) == 3       # below: same physical key
        assert mapper.physical_of(100) == 98
        # The fresh rows got keys outside the identity space.
        assert mapper.physical_of(3) >= LOGICAL_MAX
        assert mapper.physical_of(4) >= LOGICAL_MAX
        mapper.validate()

    def test_delete_frees_keys_and_reports_intervals(self):
        mapper = PositionalMapper()
        dropped = mapper.delete(2, 3)
        assert dropped == [(2, 4)]
        assert mapper.physical_of(2) == 5       # shifted up
        assert mapper.position_of(3) is None    # freed key
        assert mapper.position_of(5) == 2
        mapper.validate()

    def test_reverse_lookup_roundtrip_through_edits(self):
        mapper = PositionalMapper()
        for step in range(50):
            if step % 3 == 2:
                mapper.delete(step % 7, 1 + step % 2)
            else:
                mapper.insert(step % 11, 1 + step % 3)
        mapper.validate()
        for pos in range(0, 300, 7):
            assert mapper.position_of(mapper.physical_of(pos)) == pos

    def test_intervals_cover_range_in_order(self):
        mapper = PositionalMapper()
        mapper.insert(5, 2)
        spans = mapper.intervals(0, 9)
        # Contiguous logical coverage of [0, 9] in order.
        assert spans[0][2] == 0
        covered = sum(hi - lo + 1 for lo, hi, _ in spans)
        assert covered == 10
        logical_starts = [s[2] for s in spans]
        assert logical_starts == sorted(logical_starts)

    def test_out_of_universe_rejected(self):
        mapper = PositionalMapper()
        with pytest.raises(IndexError):
            mapper.physical_of(-1)
        with pytest.raises(IndexError):
            mapper.physical_of(LOGICAL_MAX)

    def test_splice_counts(self):
        mapper = PositionalMapper()
        mapper.insert(0, 1)
        mapper.delete(0, 1)
        assert mapper.counts.splices == 2


class TestCellStoreStructural:
    @pytest.mark.parametrize("index_kind", ["grid", "quadtree"])
    def test_insert_moves_zero_cells(self, index_kind):
        store = CellStore(tile_rows=8, tile_cols=4, index_kind=index_kind)
        for row in range(100):
            store.set(row, 0, row)
        store.stats.reset()
        store.insert_rows(50, 5)
        assert store.stats.cells_moved == 0
        assert store.stats.cells_dropped == 0
        assert store.get(49, 0) == 49
        assert store.get(55, 0) == 50
        assert store.get(104, 0) == 99

    def test_delete_drops_only_removed_slice(self):
        store = CellStore()
        for row in range(100):
            store.set(row, 0, row)
        store.stats.reset()
        dropped = store.delete_rows(10, 3)
        assert dropped == 3
        assert store.stats.cells_dropped == 3
        assert store.stats.cells_moved == 0
        assert store.get(10, 0) == 13
        assert len(store) == 97

    def test_column_splice(self):
        store = CellStore()
        store.set(0, 10, "x")
        store.insert_cols(0, 4)
        assert store.get(0, 14) == "x"
        store.delete_cols(0, 4)
        assert store.get(0, 10) == "x"
        assert store.stats.cells_moved == 0

    @pytest.mark.parametrize("index_kind", ["grid", "quadtree"])
    def test_used_bounds_agrees_with_brute_force(self, index_kind):
        store = CellStore(tile_rows=8, tile_cols=4, index_kind=index_kind)
        coords = [(3, 17), (40, 2), (9, 9), (77, 30), (5, 0)]
        for row, col in coords:
            store.set(row, col, "v")
        store.insert_rows(6, 3)
        store.delete_cols(1, 2)
        store.delete_rows(0, 1)
        brute = {(row, col) for row, col, _ in store.items()}
        rows = [r for r, _ in brute]
        cols = [c for _, c in brute]
        assert store.used_bounds() == (min(rows), min(cols), max(rows), max(cols))

    def test_used_bounds_empty_after_purge(self):
        store = CellStore()
        store.set(5, 5, "x")
        store.delete_rows(5, 1)
        assert len(store) == 0
        assert store.used_bounds() is None

    def test_range_query_after_splice_is_row_major(self):
        store = CellStore()
        for row in range(6):
            for col in range(3):
                store.set(row, col, (row, col))
        store.insert_rows(2, 2)
        hits = list(store.get_range(0, 0, 10, 10))
        assert [coord for coord in hits] == sorted(hits)
        assert {payload for _, _, payload in hits} == {
            (row, col) for row in range(6) for col in range(3)
        }

    def test_get_range_blocks_scanned_stays_local(self):
        """The E8 property survives the mapper: a viewport-sized range on a
        spliced sheet still touches only nearby blocks."""
        store = CellStore(tile_rows=8, tile_cols=4)
        for row in range(400):
            store.set(row, 0, row)
        store.insert_rows(100, 1)
        store.stats.reset()
        list(store.get_range(0, 0, 7, 3))
        assert store.stats.blocks_scanned <= 2
