"""White-box planner tests: plan shapes, pushdown, join algorithm choice,
and operator-level row accounting."""

import pytest

from repro import Database
from repro.engine.executor import (
    ExecContext,
    FilterNode,
    HashJoin,
    NestedLoopJoin,
    PlanNode,
    SeqScan,
    ValuesScan,
)
from repro.engine.planner import Planner
from repro.engine.sql_parser import parse_statement


@pytest.fixture
def db_two_tables(db):
    db.execute("CREATE TABLE a (x INT, y INT)")
    db.execute("CREATE TABLE b (x INT, z INT)")
    for i in range(20):
        db.execute(f"INSERT INTO a VALUES ({i}, {i * 2})")
        db.execute(f"INSERT INTO b VALUES ({i}, {i * 3})")
    return db


def plan_of(db, sql) -> PlanNode:
    planner = Planner(db.catalog)
    return planner.plan_select(parse_statement(sql)).plan


def find_nodes(node, kind):
    found = []
    if isinstance(node, kind):
        found.append(node)
    for child in node.children():
        found.extend(find_nodes(child, kind))
    return found


class TestJoinSelection:
    def test_equi_join_uses_hash_join(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a JOIN b ON a.x = b.x")
        assert find_nodes(plan, HashJoin)
        assert not find_nodes(plan, NestedLoopJoin)

    def test_non_equi_join_uses_nested_loop(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a JOIN b ON a.x < b.x")
        assert find_nodes(plan, NestedLoopJoin)
        assert not find_nodes(plan, HashJoin)

    def test_implicit_join_predicate_becomes_hash_key(self, db_two_tables):
        plan = plan_of(
            db_two_tables, "SELECT * FROM a, b WHERE a.x = b.x AND a.y > 5"
        )
        assert find_nodes(plan, HashJoin)

    def test_mixed_condition_residual(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a JOIN b ON a.x = b.x AND a.y < b.z",
        )
        joins = find_nodes(plan, HashJoin)
        assert joins and joins[0].residual is not None

    def test_natural_join_projects_common_column_once(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a NATURAL JOIN b")
        names = [name for _, name in plan.columns]
        assert names.count("x") == 1


class TestPushdown:
    def test_single_table_conjunct_pushed_below_join(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 5 AND b.z > 5",
        )
        joins = find_nodes(plan, HashJoin)
        assert joins
        join = joins[0]
        # Both join inputs should be filters over scans, not bare scans.
        assert isinstance(join.left, FilterNode)
        assert isinstance(join.right, FilterNode)

    def test_pushdown_not_into_right_of_left_join(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a LEFT JOIN b ON a.x = b.x WHERE b.z > 5",
        )
        joins = find_nodes(plan, HashJoin)
        assert joins
        # The b.z predicate must sit ABOVE the join (filtering after null
        # extension), not below its right input.
        assert isinstance(joins[0].right, SeqScan)
        assert find_nodes(plan, FilterNode)

    def test_pushdown_reduces_join_input_rows(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y >= 30",
        )
        list(plan.run(ExecContext()))
        joins = find_nodes(plan, HashJoin)
        scans = find_nodes(plan, SeqScan)
        filters = find_nodes(plan, FilterNode)
        # The a-side filter emitted only the matching 5 rows into the join.
        a_filter = [f for f in filters if f.rows_out == 5]
        assert a_filter


class TestAccounting:
    def test_rows_out_counters(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a WHERE y > 10")
        rows = list(plan.run(ExecContext()))
        assert plan.rows_out == len(rows)
        scans = find_nodes(plan, SeqScan)
        assert scans[0].rows_out == 20

    def test_explain_tree(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT x FROM a WHERE y > 3 ORDER BY x LIMIT 2")
        text = plan.explain()
        assert "SeqScan" in text
        assert "Sort" in text
        assert "Limit" in text

    def test_total_rows_processed(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a JOIN b ON a.x = b.x")
        list(plan.run(ExecContext()))
        assert plan.total_rows_processed() >= 60  # 20 + 20 inputs + 20 out


class TestValuesScanAndDual:
    def test_select_without_from_uses_dual(self, db):
        plan = plan_of(db, "SELECT 1, 2")
        scans = find_nodes(plan, ValuesScan)
        assert scans and scans[0].name == "dual"

    def test_limit_with_parameters(self, db_two_tables):
        planner = Planner(db_two_tables.catalog)
        planned = planner.plan_select(
            parse_statement("SELECT x FROM a ORDER BY x LIMIT ? OFFSET ?")
        )
        rows = planned.execute((3, 2))
        assert [r[0] for r in rows] == [2, 3, 4]
