"""White-box planner tests: plan shapes, projection/predicate pushdown,
join algorithm choice, and operator-level row accounting."""

import pytest

from repro import Database
from repro.engine.executor import (
    ExecContext,
    FilterNode,
    HashJoin,
    NestedLoopJoin,
    PlanNode,
    ProjectedScan,
    ValuesScan,
)
from repro.engine.planner import Planner
from repro.engine.sql_parser import parse_statement


@pytest.fixture
def db_two_tables(db):
    db.execute("CREATE TABLE a (x INT, y INT)")
    db.execute("CREATE TABLE b (x INT, z INT)")
    for i in range(20):
        db.execute(f"INSERT INTO a VALUES ({i}, {i * 2})")
        db.execute(f"INSERT INTO b VALUES ({i}, {i * 3})")
    return db


def plan_of(db, sql) -> PlanNode:
    planner = Planner(db.catalog)
    return planner.plan_select(parse_statement(sql)).plan


def find_nodes(node, kind):
    found = []
    if isinstance(node, kind):
        found.append(node)
    for child in node.children():
        found.extend(find_nodes(child, kind))
    return found


def scan_of(plan, binding):
    scans = [s for s in find_nodes(plan, ProjectedScan) if s.binding == binding]
    assert len(scans) == 1, f"expected one scan of {binding!r}"
    return scans[0]


class TestJoinSelection:
    def test_equi_join_uses_hash_join(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a JOIN b ON a.x = b.x")
        assert find_nodes(plan, HashJoin)
        assert not find_nodes(plan, NestedLoopJoin)

    def test_non_equi_join_uses_nested_loop(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a JOIN b ON a.x < b.x")
        assert find_nodes(plan, NestedLoopJoin)
        assert not find_nodes(plan, HashJoin)

    def test_implicit_join_predicate_becomes_hash_key(self, db_two_tables):
        plan = plan_of(
            db_two_tables, "SELECT * FROM a, b WHERE a.x = b.x AND a.y > 5"
        )
        assert find_nodes(plan, HashJoin)

    def test_mixed_condition_residual(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a JOIN b ON a.x = b.x AND a.y < b.z",
        )
        joins = find_nodes(plan, HashJoin)
        assert joins and joins[0].residual is not None

    def test_natural_join_projects_common_column_once(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a NATURAL JOIN b")
        names = [name for _, name in plan.columns]
        assert names.count("x") == 1


class TestPushdown:
    def test_single_table_conjunct_absorbed_into_scan(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 5 AND b.z > 5",
        )
        joins = find_nodes(plan, HashJoin)
        assert joins
        join = joins[0]
        # Both join inputs are scans carrying their pushed predicate —
        # no FilterNode materialises full rows above them.
        assert isinstance(join.left, ProjectedScan) and join.left.predicates
        assert isinstance(join.right, ProjectedScan) and join.right.predicates
        assert not find_nodes(plan, FilterNode)

    def test_pushdown_not_into_right_of_left_join(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a LEFT JOIN b ON a.x = b.x WHERE b.z > 5",
        )
        joins = find_nodes(plan, HashJoin)
        assert joins
        # The b.z predicate must sit ABOVE the join (filtering after null
        # extension), not inside its right input.
        assert isinstance(joins[0].right, ProjectedScan)
        assert not joins[0].right.predicates
        assert find_nodes(plan, FilterNode)

    def test_pushdown_reduces_join_input_rows(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y >= 30",
        )
        list(plan.run(ExecContext()))
        a_scan = scan_of(plan, "a")
        # The a-side scan examined all 20 rows but emitted only the 5
        # matches into the join.
        assert a_scan.rows_scanned == 20
        assert a_scan.rows_out == 5


class TestColumnSets:
    """The planner's required-column-set extraction: what a
    ProjectedScan is asked to read off the page chains."""

    def test_select_list_plus_where(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT x FROM a WHERE y > 3")
        scan = scan_of(plan, "a")
        assert scan.column_names == ["x", "y"]
        assert scan.cols_read == 2

    def test_star_reads_every_column(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a")
        assert scan_of(plan, "a").column_names == ["x", "y"]

    def test_single_column_projection_is_minimal(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT y FROM a")
        scan = scan_of(plan, "a")
        assert scan.column_names == ["y"]
        assert scan.cols_read == 1

    def test_count_star_reads_no_columns(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT count(*) FROM a")
        scan = scan_of(plan, "a")
        assert scan.column_names == []
        assert scan.cols_read == 0
        planner = Planner(db_two_tables.catalog)
        planned = planner.plan_select(parse_statement("SELECT count(*) FROM a"))
        assert planned.execute() == [(20,)]

    def test_aliases_and_expressions(self, db_two_tables):
        plan = plan_of(
            db_two_tables, "SELECT x * 2 AS dx FROM a ORDER BY dx"
        )
        assert scan_of(plan, "a").column_names == ["x"]

    def test_order_by_unselected_column_is_included(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT x FROM a ORDER BY y")
        assert scan_of(plan, "a").column_names == ["x", "y"]

    def test_join_keys_are_included(self, db_two_tables):
        plan = plan_of(
            db_two_tables, "SELECT a.y FROM a JOIN b ON a.x = b.x"
        )
        assert scan_of(plan, "a").column_names == ["x", "y"]
        assert scan_of(plan, "b").column_names == ["x"]

    def test_qualified_star_widens_only_its_binding(self, db_two_tables):
        plan = plan_of(
            db_two_tables, "SELECT a.* FROM a JOIN b ON a.x = b.x"
        )
        assert scan_of(plan, "a").column_names == ["x", "y"]
        assert scan_of(plan, "b").column_names == ["x"]

    def test_unqualified_ref_charges_all_owners(self, db_two_tables):
        # `x` exists in both tables; the superset keeps the ambiguity
        # error intact while staying correct for resolvable names.
        plan = plan_of(
            db_two_tables, "SELECT a.y, z FROM a JOIN b ON a.x = b.x"
        )
        assert "z" in scan_of(plan, "b").column_names

    def test_natural_join_keeps_tables_full_width(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT a.y FROM a NATURAL JOIN b")
        assert scan_of(plan, "a").column_names == ["x", "y"]
        assert scan_of(plan, "b").column_names == ["x", "z"]

    def test_group_by_and_having_columns_included(self, db_two_tables):
        plan = plan_of(
            db_two_tables,
            "SELECT count(*) FROM a GROUP BY y HAVING max(x) > 1",
        )
        assert scan_of(plan, "a").column_names == ["x", "y"]

    def test_pushdown_disabled_scans_full_width(self, db_two_tables):
        planner = Planner(db_two_tables.catalog, projection_pushdown=False)
        plan = planner.plan_select(parse_statement("SELECT x FROM a WHERE y > 3")).plan
        assert scan_of(plan, "a").column_names == ["x", "y"]
        # Predicates still absorb into the (full-width) scan.
        assert scan_of(plan, "a").predicates


class TestAccounting:
    def test_rows_out_counters(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a WHERE y > 10")
        rows = list(plan.run(ExecContext()))
        assert plan.rows_out == len(rows)
        scan = scan_of(plan, "a")
        assert scan.rows_scanned == 20
        assert scan.rows_out == len(rows)

    def test_explain_tree(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT x FROM a WHERE y > 3 ORDER BY x LIMIT 2")
        text = plan.explain()
        assert "ProjectedScan" in text
        assert "cols=[x, y]" in text
        assert "Sort" in text
        assert "Limit" in text

    def test_total_rows_processed(self, db_two_tables):
        plan = plan_of(db_two_tables, "SELECT * FROM a JOIN b ON a.x = b.x")
        list(plan.run(ExecContext()))
        assert plan.total_rows_processed() >= 60  # 20 + 20 inputs + 20 out


class TestValuesScanAndDual:
    def test_select_without_from_uses_dual(self, db):
        plan = plan_of(db, "SELECT 1, 2")
        scans = find_nodes(plan, ValuesScan)
        assert scans and scans[0].name == "dual"

    def test_limit_with_parameters(self, db_two_tables):
        planner = Planner(db_two_tables.catalog)
        planned = planner.plan_select(
            parse_statement("SELECT x FROM a ORDER BY x LIMIT ? OFFSET ?")
        )
        rows = planned.execute((3, 2))
        assert [r[0] for r in rows] == [2, 3, 4]
