"""Tests for DBSQL regions: spills, RANGEVALUE/RANGETABLE, dependency
tracking, one-pass computation (Feature 1 / Fig 2a)."""

import pytest

from repro import Workbook
from repro.core.dbsql import extract_sql_dependencies, grid_to_relation
from repro.core.address import RangeAddress
from repro.engine.sql_parser import parse_statement
from repro.errors import SqlError


@pytest.fixture
def wb_movies(movie_db):
    return Workbook(database=movie_db)


class TestSpill:
    def test_single_column_spill(self, wb_movies):
        wb_movies.dbsql(
            "Sheet1", "B3",
            "SELECT title FROM movies ORDER BY movieid LIMIT 5",
        )
        values = [wb_movies.get("Sheet1", f"B{row}") for row in range(3, 8)]
        assert all(isinstance(v, str) for v in values)
        assert wb_movies.get("Sheet1", "B8") is None

    def test_multi_column_spill(self, wb_movies):
        region = wb_movies.dbsql(
            "Sheet1", "A1",
            "SELECT movieid, title, year FROM movies ORDER BY movieid LIMIT 3",
        )
        assert region.context.extent.n_cols == 3
        assert region.context.extent.n_rows == 3
        assert wb_movies.get("Sheet1", "A1") == 1

    def test_headers_option(self, wb_movies):
        wb_movies.dbsql(
            "Sheet1", "A1",
            "SELECT movieid, title FROM movies LIMIT 2",
            include_headers=True,
        )
        assert wb_movies.get("Sheet1", "A1") == "movieid"
        assert wb_movies.get("Sheet1", "B1") == "title"

    def test_empty_result_leaves_blank_anchor(self, wb_movies):
        wb_movies.dbsql("Sheet1", "A1", "SELECT title FROM movies WHERE year = 1800")
        assert wb_movies.get("Sheet1", "A1") is None

    def test_shrinking_result_clears_stale_cells(self, wb_movies):
        wb_movies.set("Sheet1", "E1", 5)
        region = wb_movies.dbsql(
            "Sheet1", "A1",
            "SELECT movieid FROM movies WHERE movieid <= RANGEVALUE(E1) ORDER BY movieid",
        )
        assert wb_movies.get("Sheet1", "A5") == 5
        wb_movies.set("Sheet1", "E1", 2)
        assert wb_movies.get("Sheet1", "A2") == 2
        assert wb_movies.get("Sheet1", "A5") is None

    def test_only_select_allowed(self, wb_movies):
        with pytest.raises(SqlError):
            wb_movies.dbsql("Sheet1", "A1", "DELETE FROM movies")

    def test_formula_text_installed_at_anchor(self, wb_movies):
        wb_movies.dbsql("Sheet1", "A1", "SELECT 1")
        cell = wb_movies.sheet("Sheet1").cell("A1")
        assert cell.is_formula
        assert "DBSQL" in cell.formula

    def test_set_formula_string_installs_region(self, wb_movies):
        wb_movies.set("Sheet1", "A1", '=DBSQL("SELECT count(*) FROM actors")')
        assert wb_movies.get("Sheet1", "A1") == 30
        assert len(wb_movies.regions) == 1


class TestRangeValue:
    def test_precedent_edit_reruns_query(self, wb_movies):
        wb_movies.set("Sheet1", "B1", 1)
        region = wb_movies.dbsql(
            "Sheet1", "B3",
            "SELECT title FROM movies WHERE movieid = RANGEVALUE(B1)",
        )
        first = wb_movies.get("Sheet1", "B3")
        wb_movies.set("Sheet1", "B1", 2)
        second = wb_movies.get("Sheet1", "B3")
        assert first != second
        assert region.refresh_count == 2

    def test_rangevalue_of_formula_cell_sees_fresh_value(self, wb_movies):
        wb_movies.set("Sheet1", "A1", 1)
        wb_movies.set("Sheet1", "B1", "=A1+1")  # B1 = 2
        wb_movies.dbsql(
            "Sheet1", "C1",
            "SELECT title FROM movies WHERE movieid = RANGEVALUE(B1)",
        )
        title_for_2 = wb_movies.database.execute(
            "SELECT title FROM movies WHERE movieid = 2"
        ).scalar()
        assert wb_movies.get("Sheet1", "C1") == title_for_2

    def test_cross_sheet_rangevalue(self, wb_movies):
        wb_movies.add_sheet("Params")
        wb_movies.set("Params", "A1", 3)
        wb_movies.dbsql(
            "Sheet1", "A1",
            "SELECT movieid FROM movies WHERE movieid = RANGEVALUE('Params!A1')",
        )
        assert wb_movies.get("Sheet1", "A1") == 3


class TestRangeTable:
    def test_rangetable_with_headers(self, wb):
        wb.sheet("Sheet1").set_grid("A1", [["id", "score"], [1, 95], [2, 80], [3, 99]])
        wb.dbsql(
            "Sheet1", "D1",
            "SELECT id FROM RANGETABLE(A1:B4) WHERE score > 90 ORDER BY id",
        )
        assert wb.get("Sheet1", "D1") == 1
        assert wb.get("Sheet1", "D2") == 3

    def test_rangetable_without_headers_uses_column_letters(self, wb):
        wb.sheet("Sheet1").set_grid("A1", [[10, 20], [30, 40]])
        wb.dbsql("Sheet1", "D1", "SELECT a FROM RANGETABLE(A1:B2) ORDER BY a DESC")
        assert wb.get("Sheet1", "D1") == 30

    def test_rangetable_join_with_database_table(self, wb_movies):
        wb_movies.sheet("Sheet1").set_grid(
            "A1", [["movieid", "tag"], [1, "fav"], [3, "meh"]]
        )
        wb_movies.dbsql(
            "Sheet1", "E1",
            "SELECT m.title, r.tag FROM movies m "
            "JOIN RANGETABLE(A1:B3) r ON m.movieid = r.movieid ORDER BY r.tag",
        )
        assert wb_movies.get("Sheet1", "F1") == "fav"

    def test_edit_inside_rangetable_reruns(self, wb):
        wb.sheet("Sheet1").set_grid("A1", [["v"], [1], [2]])
        wb.dbsql("Sheet1", "D1", "SELECT sum(v) FROM RANGETABLE(A1:A3)")
        assert wb.get("Sheet1", "D1") == 3
        wb.set("Sheet1", "A2", 10)
        assert wb.get("Sheet1", "D1") == 12


class TestOnePass:
    def test_spill_is_single_query_execution(self, wb_movies):
        """E10's claim: an m-row spill runs the statement once, not m
        times (unlike one-per-cell formulas)."""
        before = wb_movies.database.statements_executed
        region = wb_movies.dbsql(
            "Sheet1", "A1",
            "SELECT title FROM movies ORDER BY movieid LIMIT 20",
        )
        assert region.last_row_count == 20
        assert wb_movies.database.statements_executed == before + 1


class TestDependencyExtraction:
    def test_tables_and_cells_and_ranges(self):
        statement = parse_statement(
            "SELECT a.name FROM movies m JOIN actors a ON m.movieid = a.actorid "
            "JOIN RANGETABLE(A1:B3) r ON r.movieid = m.movieid "
            "WHERE m.year = RANGEVALUE(B1)"
        )
        cells, ranges, tables = extract_sql_dependencies(statement, "S")
        assert tables == {"movies", "actors"}
        assert {c.to_a1(include_sheet=False) for c in cells} == {"B1"}
        assert len(ranges) == 1

    def test_subquery_dependencies(self):
        statement = parse_statement(
            "SELECT 1 FROM t WHERE x IN (SELECT y FROM u WHERE y = RANGEVALUE(C2))"
        )
        cells, _, tables = extract_sql_dependencies(statement, "S")
        assert tables == {"t", "u"}
        assert len(cells) == 1


class TestGridToRelation:
    def rng(self, text):
        return RangeAddress.parse(text)

    def test_header_detected(self):
        columns, rows = grid_to_relation(
            [["id", "name"], [1, "x"]], self.rng("A1:B2")
        )
        assert columns == ["id", "name"]
        assert rows == [(1, "x")]

    def test_no_header_all_numbers(self):
        columns, rows = grid_to_relation([[1, 2], [3, 4]], self.rng("B1:C2"))
        assert columns == ["b", "c"]
        assert len(rows) == 2

    def test_header_name_sanitisation(self):
        columns, _ = grid_to_relation(
            [["Student ID", "Full Name"], [1, "x"]], self.rng("A1:B2")
        )
        assert columns == ["student_id", "full_name"]

    def test_empty_grid(self):
        assert grid_to_relation([], self.rng("A1:A1")) == ([], [])
