"""Property-based tests: stores and cell store vs simple Python models.

These catch interaction bugs (delete-then-update, schema change mid-stream)
that example-based tests miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.schema import Column, TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy
from repro.engine.types import DBType
from repro.interface_storage import CellStore


# ---------------------------------------------------------------------------
# GroupedTupleStore vs dict-of-rows model
# ---------------------------------------------------------------------------

store_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update", "update_col", "add_col", "drop_col"]),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    ),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(operations=store_ops, layout=st.sampled_from(list(LayoutPolicy)))
def test_store_matches_dict_model(operations, layout):
    schema = TableSchema.from_pairs(
        [("a", DBType.INTEGER), ("b", DBType.INTEGER)], group_size=1
    )
    store = GroupedTupleStore(schema, layout=layout, page_capacity=4)
    model = {}  # rid -> row dict
    extra_columns = []
    for op, x, y in operations:
        width = 2 + len(extra_columns)
        if op == "insert":
            row = tuple(range(x, x + width))
            rid = store.insert(row)
            model[rid] = list(row)
        elif op == "delete" and model:
            rid = sorted(model)[x % len(model)]
            store.delete(rid)
            del model[rid]
        elif op == "update" and model:
            rid = sorted(model)[x % len(model)]
            row = tuple(range(y, y + width))
            store.update(rid, row)
            model[rid] = list(row)
        elif op == "update_col" and model:
            rid = sorted(model)[x % len(model)]
            store.update_column(rid, "a", y)
            model[rid][0] = y
        elif op == "add_col" and len(extra_columns) < 3:
            name = f"x{len(extra_columns)}"
            store.add_column(Column(name, DBType.INTEGER, default=0))
            extra_columns.append(name)
            for row in model.values():
                row.append(0)
        elif op == "drop_col" and extra_columns:
            name = extra_columns.pop()
            index = store.schema.column_index(name)
            store.drop_column(name)
            for row in model.values():
                del row[index]
    assert store.n_rows == len(model)
    for rid, row in model.items():
        assert store.get(rid) == tuple(row)
    store.validate()


# ---------------------------------------------------------------------------
# GroupedTupleStore under advisor-triggered online migrations
# ---------------------------------------------------------------------------

migration_ops = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "insert",
                "delete",
                "update",
                "update_col",
                "scan_col",
                "add_col",
                "drop_col",
                "advise",
                "step",
            ]
        ),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    ),
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(operations=migration_ops, layout=st.sampled_from(list(LayoutPolicy)))
def test_store_with_online_migrations_matches_dict_model(operations, layout):
    """Random DML/DDL interleaved with advisor-triggered online layout
    migrations: scan() stays identical to a naive dict model and the
    store validates after every individual migration step."""
    from repro.engine.layout import LayoutAdvisor, LayoutMigration

    schema = TableSchema.from_pairs(
        [("a", DBType.INTEGER), ("b", DBType.INTEGER), ("c", DBType.INTEGER)],
        group_size=2,
    )
    store = GroupedTupleStore(schema, layout=layout, page_capacity=4)
    advisor = LayoutAdvisor(threshold=0.0, min_ops=0)
    migration = None
    model = {}  # rid -> row list
    extra_columns = []
    for op, x, y in operations:
        width = 3 + len(extra_columns)
        columns = store.schema.column_names
        if op == "insert":
            row = tuple(range(x, x + width))
            rid = store.insert(row)
            model[rid] = list(row)
        elif op == "delete" and model:
            rid = sorted(model)[x % len(model)]
            store.delete(rid)
            del model[rid]
        elif op == "update" and model:
            rid = sorted(model)[x % len(model)]
            row = tuple(range(y, y + width))
            store.update(rid, row)
            model[rid] = list(row)
        elif op == "update_col" and model:
            rid = sorted(model)[x % len(model)]
            name = columns[y % len(columns)]
            store.update_column(rid, name, y)
            model[rid][store.schema.column_index(name)] = y
        elif op == "scan_col":
            name = columns[x % len(columns)]
            got = dict(store.scan_column(name))
            index = store.schema.column_index(name)
            assert got == {rid: row[index] for rid, row in model.items()}
        elif op == "add_col" and len(extra_columns) < 3:
            name = f"x{len(extra_columns)}"
            store.add_column(Column(name, DBType.INTEGER, default=0))
            extra_columns.append(name)
            for row in model.values():
                row.append(0)
        elif op == "drop_col" and extra_columns:
            name = extra_columns.pop()
            index = store.schema.column_index(name)
            store.drop_column(name)
            for row in model.values():
                del row[index]
        elif op == "advise" and migration is None:
            recommendation = advisor.advise(store)
            if recommendation is not None:
                migration = LayoutMigration(store, recommendation.target_groups)
        elif op == "step" and migration is not None:
            done = migration.step()
            store.validate()
            if done:
                migration = None
    # Drain any in-flight migration, validating after every step.
    while migration is not None:
        done = migration.step()
        store.validate()
        if done:
            migration = None
    store.validate()
    assert store.n_rows == len(model)
    assert dict(store.scan()) == {rid: tuple(row) for rid, row in model.items()}


# ---------------------------------------------------------------------------
# CellStore vs dict model, including structural shifts
# ---------------------------------------------------------------------------

cell_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "delete", "insert_rows", "delete_rows",
                         "insert_cols", "delete_cols"]),
        st.integers(0, 60),
        st.integers(0, 20),
    ),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(operations=cell_ops, index_kind=st.sampled_from(["grid", "quadtree"]))
def test_cellstore_matches_dict_model(operations, index_kind):
    store = CellStore(tile_rows=8, tile_cols=4, index_kind=index_kind)
    model = {}
    token = 0
    for op, a, b in operations:
        if op == "set":
            token += 1
            store.set(a, b, token)
            model[(a, b)] = token
        elif op == "delete":
            assert store.delete(a, b) == ((a, b) in model)
            model.pop((a, b), None)
        elif op == "insert_rows":
            count = (b % 3) + 1
            store.insert_rows(a, count)
            model = {
                ((r + count) if r >= a else r, c): v for (r, c), v in model.items()
            }
        elif op == "delete_rows":
            count = (b % 3) + 1
            store.delete_rows(a, count)
            new_model = {}
            for (r, c), v in model.items():
                if r < a:
                    new_model[(r, c)] = v
                elif r >= a + count:
                    new_model[(r - count, c)] = v
            model = new_model
        elif op == "insert_cols":
            count = (b % 2) + 1
            store.insert_cols(a, count)
            model = {
                (r, (c + count) if c >= a else c): v for (r, c), v in model.items()
            }
        elif op == "delete_cols":
            count = (b % 2) + 1
            store.delete_cols(a, count)
            new_model = {}
            for (r, c), v in model.items():
                if c < a:
                    new_model[(r, c)] = v
                elif c >= a + count:
                    new_model[(r, c - count)] = v
            model = new_model
    assert len(store) == len(model)
    assert {(r, c): v for r, c, v in store.items()} == model
    # Range query agreement on the bounding box.
    if model:
        rows = [r for r, _ in model]
        cols = [c for _, c in model]
        got = {
            (r, c): v
            for r, c, v in store.get_range(min(rows), min(cols), max(rows), max(cols))
        }
        assert got == model


# ---------------------------------------------------------------------------
# Formula shift: shifting down then up is identity (when legal)
# ---------------------------------------------------------------------------

from repro.formula.dependency import shift_formula  # noqa: E402


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 20), st.integers(0, 20),
    st.integers(0, 5), st.integers(0, 5),
    st.booleans(), st.booleans(),
)
def test_shift_roundtrip(row, col, d_row, d_col, row_abs, col_abs):
    from repro.core.address import CellAddress

    address = CellAddress(row, col, row_absolute=row_abs, col_absolute=col_abs)
    source = f"{address.to_a1()}+1"
    shifted = shift_formula(source, d_row, d_col)
    back = shift_formula(shifted, -d_row, -d_col)
    assert back == source


# ---------------------------------------------------------------------------
# Address parse/print roundtrip
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    st.integers(0, 100_000), st.integers(0, 2000),
    st.booleans(), st.booleans(),
)
def test_address_roundtrip(row, col, row_abs, col_abs):
    from repro.core.address import CellAddress

    address = CellAddress(row, col, row_absolute=row_abs, col_absolute=col_abs)
    assert CellAddress.parse(address.to_a1()) == address
