"""The structural-edit fast path: half-space queries on the dependency
graph, formula re-keying, and the workbook-level guarantee that an edit's
logical work is proportional to the affected set."""

import pytest

from repro import Workbook
from repro.compute.graph import DependencyGraph
from repro.core.address import CellAddress, RangeAddress


def key(sheet, row, col):
    return (sheet, row, col)


class TestDependentsIntersecting:
    def test_cell_edges(self):
        graph = DependencyGraph()
        graph.set_dependencies(key("S", 0, 1), [CellAddress(5, 0)], [])
        graph.set_dependencies(key("S", 0, 2), [CellAddress(1, 0)], [])
        assert graph.dependents_intersecting("S", "row", 3) == {key("S", 0, 1)}
        assert graph.dependents_intersecting("S", "row", 0) == {
            key("S", 0, 1),
            key("S", 0, 2),
        }
        assert graph.dependents_intersecting("S", "col", 1) == set()
        assert graph.dependents_intersecting("Other", "row", 0) == set()

    def test_range_edges_use_end_coordinate(self):
        graph = DependencyGraph()
        reference = RangeAddress(CellAddress(0, 0), CellAddress(9, 0))
        graph.set_dependencies(key("S", 0, 5), [], [reference])
        assert graph.dependents_intersecting("S", "row", 9) == {key("S", 0, 5)}
        assert graph.dependents_intersecting("S", "row", 10) == set()

    def test_far_tile_buckets_are_reached(self):
        """A reference far below the edit point lives in a distant tile
        bucket; the half-space scan must still find it."""
        graph = DependencyGraph()
        graph.set_dependencies(key("S", 0, 0), [CellAddress(100_000, 3)], [])
        assert graph.dependents_intersecting("S", "row", 5) == {key("S", 0, 0)}

    def test_rekey_preserves_edges_both_directions(self):
        graph = DependencyGraph()
        graph.set_dependencies(key("S", 5, 0), [CellAddress(1, 0)], [])
        graph.set_dependencies(key("S", 6, 0), [CellAddress(5, 0)], [])
        # Shift both dependents down by one (overlapping old/new ranges).
        graph.rekey_dependents(
            {key("S", 5, 0): key("S", 6, 0), key("S", 6, 0): key("S", 7, 0)}
        )
        assert graph.dependents_of(key("S", 1, 0)) == {key("S", 6, 0)}
        assert graph.dependents_of(key("S", 5, 0)) == {key("S", 7, 0)}
        cells, _ = graph.precedents_of(key("S", 7, 0))
        assert cells == {key("S", 5, 0)}


class TestWorkbookLogicalWork:
    @pytest.fixture
    def grid(self):
        workbook = Workbook()
        for row in range(20):
            workbook.set("Sheet1", CellAddress(row, 2), row)           # C col
            workbook.set("Sheet1", CellAddress(row, 0), f"=C{row+1}*2")  # A col
        return workbook

    def test_insert_reparses_only_intersecting_formulas(self, grid):
        grid.compute.stats.reset()
        grid.insert_rows("Sheet1", 15, 1)
        # Formulas in rows 15..19 reference rows >= 15; the other 15 are
        # re-keyed (or untouched) without a reparse.
        assert grid.compute.stats.reparses == 5
        assert grid.sheet("Sheet1").store.stats.cells_moved == 0
        assert grid.get("Sheet1", "A1") == 0
        assert grid.get("Sheet1", "A21") == 38

    def test_unaffected_formula_not_recomputed(self, grid):
        grid.compute.stats.reset()
        grid.insert_rows("Sheet1", 15, 1)
        # Only the rewritten formulas (and their dependents) recompute.
        assert grid.compute.stats.evaluations <= 5

    def test_delete_makes_only_readers_ref_error(self, grid):
        grid.set("Sheet1", "E1", "=C11+1")  # reads the soon-deleted row 10
        grid.delete_rows("Sheet1", 10, 1)
        assert grid.get("Sheet1", "E1") == "#REF!"
        assert grid.sheet("Sheet1").cell_at(0, 4).formula is None
        assert grid.get("Sheet1", "A10") == 18  # row above: untouched
        assert grid.get("Sheet1", "A11") == 22  # shifted up, rewritten
        assert grid.get("Sheet1", "A19") == 38

    def test_moved_formula_keeps_identity_and_dependencies(self, grid):
        cell_before = grid.sheet("Sheet1").cell_at(19, 0)
        grid.insert_rows("Sheet1", 0, 3)
        assert grid.sheet("Sheet1").cell_at(22, 0) is cell_before
        grid.set("Sheet1", CellAddress(22, 2), 100)
        assert grid.get("Sheet1", CellAddress(22, 0)) == 200

    def test_formula_chain_across_edit_boundary(self):
        workbook = Workbook()
        workbook.set("Sheet1", "A1", 1)
        workbook.set("Sheet1", "A10", "=A1+1")   # below edit, refs above
        workbook.set("Sheet1", "B2", "=A10*10")  # above edit, refs below
        workbook.insert_rows("Sheet1", 4, 2)
        assert workbook.get("Sheet1", "A12") == 2
        assert workbook.get("Sheet1", "B2") == 20
        workbook.set("Sheet1", "A1", 5)
        assert workbook.get("Sheet1", "B2") == 60

    def test_range_formula_above_edit_expands(self):
        workbook = Workbook()
        for row in range(1, 6):
            workbook.set("Sheet1", f"A{row}", row)
        workbook.set("Sheet1", "C1", "=SUM(A1:A5)")
        workbook.insert_rows("Sheet1", 2, 1)
        workbook.set("Sheet1", "A3", 100)  # the inserted blank row
        assert workbook.get("Sheet1", "C1") == 115

    def test_lazy_mode_edit_keeps_demand_consistency(self):
        workbook = Workbook(eager=False)
        workbook.set("Sheet1", "A5", 7)
        workbook.set("Sheet1", "B5", "=A5+1")
        workbook.insert_rows("Sheet1", 0, 2)
        assert workbook.get("Sheet1", "B7") == 8
