"""Unit + property tests for the 2-D indexes (grid and quadtree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.index2d import GridIndex, QuadTree


INDEXES = [
    pytest.param(lambda: GridIndex(tile_rows=4, tile_cols=4), id="grid"),
    pytest.param(QuadTree, id="quadtree"),
]


@pytest.mark.parametrize("make", INDEXES)
class TestCommon:
    def test_put_get(self, make):
        index = make()
        index.put(3, 5, "x")
        assert index.get(3, 5) == "x"
        assert index.get(3, 6) is None
        assert index.get(3, 6, "d") == "d"

    def test_overwrite(self, make):
        index = make()
        index.put(1, 1, "a")
        index.put(1, 1, "b")
        assert index.get(1, 1) == "b"
        assert len(index) == 1

    def test_remove(self, make):
        index = make()
        index.put(2, 2, "v")
        assert index.remove(2, 2)
        assert not index.remove(2, 2)
        assert index.get(2, 2) is None
        assert len(index) == 0

    def test_query_range_row_major(self, make):
        index = make()
        for row, col in [(0, 0), (0, 5), (5, 0), (5, 5), (2, 2)]:
            index.put(row, col, f"{row},{col}")
        hits = list(index.query_range(0, 0, 5, 5))
        assert [(r, c) for r, c, _ in hits] == [(0, 0), (0, 5), (2, 2), (5, 0), (5, 5)]

    def test_query_range_excludes_outside(self, make):
        index = make()
        index.put(10, 10, "in")
        index.put(100, 100, "out")
        hits = list(index.query_range(0, 0, 50, 50))
        assert [payload for _, _, payload in hits] == ["in"]

    def test_items(self, make):
        index = make()
        points = {(i * 7, i * 3) for i in range(10)}
        for row, col in points:
            index.put(row, col, None)
        assert {(r, c) for r, c, _ in index.items()} == points

    def test_sparse_far_points(self, make):
        index = make()
        index.put(0, 0, "origin")
        index.put(50_000, 2_000, "far")
        assert index.get(50_000, 2_000) == "far"
        assert index.get(0, 0) == "origin"
        hits = list(index.query_range(49_999, 1_999, 50_001, 2_001))
        assert len(hits) == 1


class TestGridSpecifics:
    def test_tiles_created_lazily(self):
        grid = GridIndex(tile_rows=10, tile_cols=10)
        grid.put(5, 5, 1)
        grid.put(6, 6, 2)
        assert grid.n_tiles == 1
        grid.put(55, 55, 3)
        assert grid.n_tiles == 2

    def test_empty_tile_removed(self):
        grid = GridIndex(tile_rows=10, tile_cols=10)
        grid.put(1, 1, "x")
        grid.remove(1, 1)
        assert grid.n_tiles == 0

    def test_tiles_overlapping_metric(self):
        grid = GridIndex(tile_rows=10, tile_cols=10)
        grid.put(5, 5, 1)
        grid.put(95, 95, 2)
        assert grid.tiles_overlapping(0, 0, 9, 9) == 1
        assert grid.tiles_overlapping(0, 0, 99, 99) == 2

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridIndex(tile_rows=0)


class TestQuadTreeSpecifics:
    def test_leaf_split_beyond_capacity(self):
        tree = QuadTree()
        for i in range(QuadTree.LEAF_CAPACITY * 2):
            tree.put(i, i, i)
        assert len(tree) == QuadTree.LEAF_CAPACITY * 2
        for i in range(QuadTree.LEAF_CAPACITY * 2):
            assert tree.get(i, i) == i

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QuadTree().put(-1, 0, "x")


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 300), st.integers(0, 300)), max_size=80),
    st.tuples(st.integers(0, 300), st.integers(0, 300), st.integers(0, 300), st.integers(0, 300)),
)
def test_indexes_agree_with_dict_model(points, box):
    top, left, bottom, right = box
    top, bottom = min(top, bottom), max(top, bottom)
    left, right = min(left, right), max(left, right)
    grid = GridIndex(tile_rows=16, tile_cols=16)
    tree = QuadTree()
    model = {}
    for row, col in points:
        grid.put(row, col, (row, col))
        tree.put(row, col, (row, col))
        model[(row, col)] = (row, col)
    expected = sorted(
        (r, c) for (r, c) in model if top <= r <= bottom and left <= c <= right
    )
    assert [(r, c) for r, c, _ in grid.query_range(top, left, bottom, right)] == expected
    assert [(r, c) for r, c, _ in tree.query_range(top, left, bottom, right)] == expected
