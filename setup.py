"""Setup shim; all metadata lives in setup.cfg.

setup.cfg + setup.py (instead of pyproject.toml) keeps ``pip install -e .``
on the legacy editable path, which works without network access or the
``wheel`` package.
"""

from setuptools import setup

setup()
