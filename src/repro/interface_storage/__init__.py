"""Interface storage manager (paper §3).

Stores the *interface data* — "formulae or data entered by the user" that is
not part of any relational table — as a schema-free collection of cells,
grouped by proximity into blocks and indexed two-dimensionally.
"""

from repro.interface_storage.cell_store import CellStore, CellStoreStats

__all__ = ["CellStore", "CellStoreStats"]
