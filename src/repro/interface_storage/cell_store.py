"""Schema-free cell storage with proximity blocking.

Paper §3, *Interface Storage Manager*: "This interface data requires special
treatment as it does not have a schema.  The interface storage component
stores this data as a collection of cells.  To enable efficient retrieval
for a given range, the component groups the cells together by proximity and
splits the groups into data blocks ... the blocks are further indexed by a
two-dimensional indexing method."

:class:`CellStore` is that component.  Cells live in fixed-geometry *blocks*
(tiles) managed by one of the 2-D indexes from :mod:`repro.index.index2d`;
a range fetch touches only the blocks overlapping the range — the property
experiment E8 charts against a flat per-cell dictionary.

The store also implements the structural edits a spreadsheet needs —
inserting/deleting whole rows and columns with the implied shifting of every
cell below/right — because free-form interface data must move when the user
restructures the sheet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.index.index2d import GridIndex, QuadTree

__all__ = ["CellStore", "CellStoreStats"]


@dataclass
class CellStoreStats:
    """Logical-work counters: how many blocks/cells operations touched."""

    point_reads: int = 0
    point_writes: int = 0
    range_queries: int = 0
    blocks_scanned: int = 0
    cells_shifted: int = 0

    def reset(self) -> None:
        self.point_reads = 0
        self.point_writes = 0
        self.range_queries = 0
        self.blocks_scanned = 0
        self.cells_shifted = 0


class CellStore:
    """A sparse, unbounded 2-D map of cells grouped into proximity blocks."""

    def __init__(
        self,
        tile_rows: int = 64,
        tile_cols: int = 16,
        index_kind: str = "grid",
    ):
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.index_kind = index_kind
        if index_kind == "grid":
            self._index = GridIndex(tile_rows, tile_cols)
        elif index_kind == "quadtree":
            self._index = QuadTree()
        else:
            raise ValueError(f"unknown index kind {index_kind!r} (grid|quadtree)")
        self.stats = CellStoreStats()

    # -- point access ------------------------------------------------------

    def set(self, row: int, col: int, value: Any) -> None:
        if row < 0 or col < 0:
            raise ValueError("cell coordinates must be non-negative")
        self.stats.point_writes += 1
        self._index.put(row, col, value)

    def get(self, row: int, col: int, default: Any = None) -> Any:
        self.stats.point_reads += 1
        return self._index.get(row, col, default)

    def delete(self, row: int, col: int) -> bool:
        self.stats.point_writes += 1
        return self._index.remove(row, col)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def n_blocks(self) -> int:
        if isinstance(self._index, GridIndex):
            return self._index.n_tiles
        return len(self._index)  # quadtree: no block notion; report points

    # -- range access --------------------------------------------------------

    def get_range(
        self, top: int, left: int, bottom: int, right: int
    ) -> Iterator[Tuple[int, int, Any]]:
        """All occupied cells in the inclusive rectangle, row-major."""
        self.stats.range_queries += 1
        if isinstance(self._index, GridIndex):
            self.stats.blocks_scanned += self._index.tiles_overlapping(
                top, left, bottom, right
            )
        return self._index.query_range(top, left, bottom, right)

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        return self._index.items()

    def used_bounds(self) -> Optional[Tuple[int, int, int, int]]:
        """Bounding box of occupied cells: (top, left, bottom, right)."""
        top = left = None
        bottom = right = None
        for row, col, _ in self._index.items():
            if top is None:
                top = bottom = row
                left = right = col
            else:
                top = min(top, row)
                bottom = max(bottom, row)
                left = min(left, col)
                right = max(right, col)
        if top is None:
            return None
        return (top, left, bottom, right)

    # -- structural edits ------------------------------------------------------

    def _shift(self, predicate, mover) -> int:
        """Remove every cell matching ``predicate`` and re-insert it at
        ``mover(row, col)`` (or drop it when mover returns None)."""
        moved: List[Tuple[int, int, Any]] = [
            (row, col, value)
            for row, col, value in list(self._index.items())
            if predicate(row, col)
        ]
        for row, col, _ in moved:
            self._index.remove(row, col)
        for row, col, value in moved:
            target = mover(row, col)
            if target is not None:
                self._index.put(target[0], target[1], value)
        self.stats.cells_shifted += len(moved)
        return len(moved)

    def insert_rows(self, at: int, count: int = 1) -> int:
        """Shift every cell at ``row >= at`` down by ``count`` rows."""
        if count <= 0:
            return 0
        return self._shift(
            lambda row, col: row >= at,
            lambda row, col: (row + count, col),
        )

    def delete_rows(self, at: int, count: int = 1) -> int:
        """Drop cells in rows ``[at, at+count)``; shift the rest up."""
        if count <= 0:
            return 0
        return self._shift(
            lambda row, col: row >= at,
            lambda row, col: None if row < at + count else (row - count, col),
        )

    def insert_cols(self, at: int, count: int = 1) -> int:
        if count <= 0:
            return 0
        return self._shift(
            lambda row, col: col >= at,
            lambda row, col: (row, col + count),
        )

    def delete_cols(self, at: int, count: int = 1) -> int:
        if count <= 0:
            return 0
        return self._shift(
            lambda row, col: col >= at,
            lambda row, col: None if col < at + count else (row, col - count),
        )

    def clear_range(self, top: int, left: int, bottom: int, right: int) -> int:
        """Empty the rectangle; returns the number of cells removed."""
        doomed = [
            (row, col)
            for row, col, _ in self._index.query_range(top, left, bottom, right)
        ]
        for row, col in doomed:
            self._index.remove(row, col)
        return len(doomed)
