"""Schema-free cell storage with proximity blocking and positional mapping.

Paper §3, *Interface Storage Manager*: "This interface data requires special
treatment as it does not have a schema.  The interface storage component
stores this data as a collection of cells.  To enable efficient retrieval
for a given range, the component groups the cells together by proximity and
splits the groups into data blocks ... the blocks are further indexed by a
two-dimensional indexing method."

:class:`CellStore` is that component.  Cells live in fixed-geometry *blocks*
(tiles) managed by one of the 2-D indexes from :mod:`repro.index.index2d`;
a range fetch touches only the blocks overlapping the range — the property
experiment E8 charts against a flat per-cell dictionary.

Structural edits are where the paper's positional index earns its keep at
the interface layer: cells are stored under **stable physical keys**, and a
:class:`~repro.index.posmap.PositionalMapper` per axis translates the
logical row/column the user sees into the physical key the 2-D index
stores.  ``insert_rows``/``delete_rows`` splice the mapper's key space in
O(log s) — **zero stored cells move**; deletes only purge the cells that
actually occupied the removed slice.  The 2-D indexes keep operating on
physical keys and never notice a structural edit happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.index.index2d import GridIndex, QuadTree
from repro.index.posmap import LOGICAL_MAX, PositionalMapper

__all__ = ["CellStore", "CellStoreStats"]

#: Upper bound on physical keys (mapper allocates fresh keys past
#: LOGICAL_MAX; a whole-axis purge query uses this as its far edge).
_PHYS_MAX = 1 << 44


@dataclass
class CellStoreStats:
    """Logical-work counters: how many blocks/cells operations touched.

    ``cells_moved`` counts cells physically relocated by a structural edit
    (zero on the positional-mapping path — the E8 headline number);
    ``cells_dropped`` counts cells destroyed because their row/column was
    deleted.  They are deliberately separate: a drop is mandatory work
    proportional to the removed slice, a move is pure overhead.
    """

    point_reads: int = 0
    point_writes: int = 0
    range_queries: int = 0
    blocks_scanned: int = 0
    cells_moved: int = 0
    cells_dropped: int = 0

    def reset(self) -> None:
        self.point_reads = 0
        self.point_writes = 0
        self.range_queries = 0
        self.blocks_scanned = 0
        self.cells_moved = 0
        self.cells_dropped = 0


class CellStore:
    """A sparse, unbounded 2-D map of cells grouped into proximity blocks."""

    def __init__(
        self,
        tile_rows: int = 64,
        tile_cols: int = 16,
        index_kind: str = "grid",
    ):
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.index_kind = index_kind
        if index_kind == "grid":
            self._index = GridIndex(tile_rows, tile_cols)
        elif index_kind == "quadtree":
            self._index = QuadTree()
        else:
            raise ValueError(f"unknown index kind {index_kind!r} (grid|quadtree)")
        self.rows = PositionalMapper(seed=0xA11)
        self.cols = PositionalMapper(seed=0xB22)
        self.stats = CellStoreStats()

    # -- coordinate mapping -------------------------------------------------

    def _phys(self, row: int, col: int) -> Tuple[int, int]:
        # Fast path: until the first structural edit both mappers are the
        # identity, and point access pays nothing for the indirection.
        prow = row if self.rows.pristine else self.rows.physical_of(row)
        pcol = col if self.cols.pristine else self.cols.physical_of(col)
        return prow, pcol

    # -- point access ------------------------------------------------------

    def set(self, row: int, col: int, value: Any) -> None:
        if row < 0 or col < 0:
            raise ValueError("cell coordinates must be non-negative")
        if row >= LOGICAL_MAX or col >= LOGICAL_MAX:
            raise ValueError("cell coordinates exceed the addressable sheet")
        self.stats.point_writes += 1
        prow, pcol = self._phys(row, col)
        self._index.put(prow, pcol, value)

    def get(self, row: int, col: int, default: Any = None) -> Any:
        self.stats.point_reads += 1
        if row < 0 or col < 0 or row >= LOGICAL_MAX or col >= LOGICAL_MAX:
            return default
        prow, pcol = self._phys(row, col)
        return self._index.get(prow, pcol, default)

    def delete(self, row: int, col: int) -> bool:
        self.stats.point_writes += 1
        if row < 0 or col < 0 or row >= LOGICAL_MAX or col >= LOGICAL_MAX:
            return False
        prow, pcol = self._phys(row, col)
        return self._index.remove(prow, pcol)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def n_blocks(self) -> int:
        if isinstance(self._index, GridIndex):
            return self._index.n_tiles
        return len(self._index)  # quadtree: no block notion; report points

    # -- range access --------------------------------------------------------

    def get_range(
        self, top: int, left: int, bottom: int, right: int
    ) -> Iterator[Tuple[int, int, Any]]:
        """All occupied cells in the inclusive rectangle, row-major.

        The logical rectangle maps to a small grid of physical rectangles
        (one per overlapping mapper span pair — a single one on a sheet
        with no structural edits)."""
        self.stats.range_queries += 1
        results: List[Tuple[int, int, Any]] = []
        for prow_lo, prow_hi, lrow_lo in self.rows.intervals(top, bottom):
            for pcol_lo, pcol_hi, lcol_lo in self.cols.intervals(left, right):
                if isinstance(self._index, GridIndex):
                    self.stats.blocks_scanned += self._index.tiles_overlapping(
                        prow_lo, pcol_lo, prow_hi, pcol_hi
                    )
                for prow, pcol, payload in self._index.query_range(
                    prow_lo, pcol_lo, prow_hi, pcol_hi
                ):
                    results.append(
                        (lrow_lo + (prow - prow_lo), lcol_lo + (pcol - pcol_lo), payload)
                    )
        results.sort(key=lambda item: (item[0], item[1]))
        return iter(results)

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        """All occupied cells at their *logical* coordinates (unordered)."""
        for prow, pcol, payload in self._index.items():
            lrow = self.rows.position_of(prow)
            lcol = self.cols.position_of(pcol)
            if lrow is None or lcol is None:  # pragma: no cover - purged keys
                continue
            yield lrow, lcol, payload

    def used_bounds(self) -> Optional[Tuple[int, int, int, int]]:
        """Bounding box of occupied cells: (top, left, bottom, right).

        Derived from the 2-D index's tile metadata instead of a full cell
        scan: per mapper span, only the extreme occupied tile stripe is
        inspected.  An un-spliced sheet (a single span per axis) pays one
        metadata probe per edge."""
        if len(self._index) == 0:
            return None
        row_spans = self.rows.intervals(0, LOGICAL_MAX - 1)
        col_spans = self.cols.intervals(0, LOGICAL_MAX - 1)
        top = bottom = left = right = None
        for plo, phi, llo in row_spans:
            found = self._index.extreme_row_in(plo, phi, smallest=True)
            if found is not None:
                top = llo + (found - plo)
                break
        for plo, phi, llo in reversed(row_spans):
            found = self._index.extreme_row_in(plo, phi, smallest=False)
            if found is not None:
                bottom = llo + (found - plo)
                break
        for plo, phi, llo in col_spans:
            found = self._index.extreme_col_in(plo, phi, smallest=True)
            if found is not None:
                left = llo + (found - plo)
                break
        for plo, phi, llo in reversed(col_spans):
            found = self._index.extreme_col_in(plo, phi, smallest=False)
            if found is not None:
                right = llo + (found - plo)
                break
        if top is None or left is None:  # pragma: no cover - index said non-empty
            return None
        return (top, left, bottom, right)

    # -- structural edits ------------------------------------------------------

    def _purge(self, intervals: List[Tuple[int, int]], axis: str) -> int:
        """Remove every cell whose physical row/col falls in ``intervals``;
        returns how many were dropped.  Cost is proportional to the blocks
        overlapping the removed slice, not to the sheet."""
        doomed: List[Tuple[int, int]] = []
        for lo, hi in intervals:
            if axis == "row":
                hits = self._index.query_range(lo, 0, hi, _PHYS_MAX)
            else:
                hits = self._index.query_range(0, lo, _PHYS_MAX, hi)
            doomed.extend((prow, pcol) for prow, pcol, _ in hits)
        for prow, pcol in doomed:
            self._index.remove(prow, pcol)
        self.stats.cells_dropped += len(doomed)
        return len(doomed)

    def insert_rows(self, at: int, count: int = 1) -> int:
        """Splice ``count`` fresh rows in at ``at``.  Every cell at logical
        ``row >= at`` now answers ``count`` rows lower — **no stored cell
        moves**.  Returns the number of cells physically relocated (always
        0 on this path)."""
        if count <= 0:
            return 0
        self._purge(self.rows.insert(at, count), "row")
        return 0

    def delete_rows(self, at: int, count: int = 1) -> int:
        """Drop cells in rows ``[at, at+count)``; the rest shift up by
        key-space splice.  Returns the number of cells dropped."""
        if count <= 0:
            return 0
        return self._purge(self.rows.delete(at, count), "row")

    def insert_cols(self, at: int, count: int = 1) -> int:
        if count <= 0:
            return 0
        self._purge(self.cols.insert(at, count), "col")
        return 0

    def delete_cols(self, at: int, count: int = 1) -> int:
        if count <= 0:
            return 0
        return self._purge(self.cols.delete(at, count), "col")

    def clear_range(self, top: int, left: int, bottom: int, right: int) -> int:
        """Empty the rectangle; returns the number of cells removed."""
        doomed = [
            (row, col) for row, col, _ in self.get_range(top, left, bottom, right)
        ]
        removed = 0
        for row, col in doomed:
            prow, pcol = self._phys(row, col)
            removed += bool(self._index.remove(prow, pcol))
        return removed
