"""The database facade: SQL in, results out, events to listeners.

This is the component stack of Figure 1 wired together: catalog + storage
managers + positional indexes + query processor + transaction manager.  The
interface layer (:mod:`repro.core`) talks to exactly this class:

* :meth:`Database.execute` parses and runs any statement, optionally with a
  :class:`~repro.engine.planner.RangeResolver` so the statement may use
  ``RANGEVALUE``/``RANGETABLE``,
* :meth:`Database.add_listener` subscribes to committed
  :class:`~repro.engine.table.ChangeEvent` records — the feed that keeps
  spreadsheet regions in sync with back-end modifications (Feature 3),
* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` bracket mixed DML+DDL transactions
  (schema changes participate, per the paper's §2.2 challenge).
"""

from __future__ import annotations

import os
import re
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import NULL_SANITIZER, Sanitizer
from repro.engine import sql_ast as ast
from repro.engine.catalog import Catalog
from repro.engine.expr import (
    Scope,
    compile_batch_predicate,
    compile_expression,
    extract_sargable_ranges,
)
from repro.engine.hybridstore import suggested_tick_budget
from repro.engine.maintenance import MaintenanceWorker
from repro.engine.pager import IOStats
from repro.engine.planner import Planner, RangeResolver
from repro.engine.schema import Column, TableSchema
from repro.engine.sql_parser import parse_sql
from repro.engine.store import LayoutPolicy
from repro.engine.table import ChangeEvent, Table
from repro.engine.transaction import TransactionManager
from repro.engine.types import DBType, infer_type, unify_types
from repro.errors import ExecutionError, PlanError, SqlError
from repro.index.positional import PositionalIndex
from repro.obs import EventLog, MetricsRegistry, Span, Tracer

__all__ = ["Database", "ResultSet", "is_explain_trace"]

#: ``EXPLAIN TRACE <statement>`` — a per-statement trace capture prefix
#: handled before the grammar (so the parser stays untouched).
_EXPLAIN_TRACE = re.compile(r"^\s*explain\s+trace\s+", re.IGNORECASE)


def is_explain_trace(sql: str) -> bool:
    """True when ``sql`` is an ``EXPLAIN TRACE`` capture request (the
    CLI uses this to route such statements straight to the engine)."""
    return bool(_EXPLAIN_TRACE.match(sql))


def _annotate_plan(parent: Span, node: Any) -> None:
    """Mirror a finished operator tree into zero-duration trace children
    carrying each node's work counters (rows_out, rows_scanned, ...)."""
    child = parent.annotate_child(node.label(), **node.counters())
    for sub in node.children():
        _annotate_plan(child, sub)


@dataclass
class ResultSet:
    """Query result: ordered column names + row tuples (+ DML rowcount)."""

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name.lower())
        return [row[index] for row in self.rows]


_TXN_COMMANDS = {
    "begin": "begin",
    "begin transaction": "begin",
    "commit": "commit",
    "end": "commit",
    "rollback": "rollback",
    "abort": "rollback",
}


class Database:
    """An embedded relational engine with positional presentation order."""

    def __init__(
        self,
        page_capacity: int = 128,
        default_layout: LayoutPolicy = LayoutPolicy.HYBRID,
        buffer_frames: Optional[int] = None,
        auto_layout_interval: int = 64,
        projection_pushdown: bool = True,
        vectorized: bool = True,
        data_skipping: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        sanitize: Optional[bool] = None,
        background_maintenance: Optional[bool] = None,
    ):
        self.catalog = Catalog(
            page_capacity=page_capacity, buffer_frames=buffer_frames
        )
        # Runtime invariant sanitizer (repro.analysis.sanitizer): armed by
        # sanitize=True or REPRO_SANITIZE=1, a null object otherwise.  The
        # catalog propagates it to every table/store; the pool checks pages.
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self.sanitizer = Sanitizer() if sanitize else NULL_SANITIZER
        self.catalog.sanitizer = self.sanitizer
        self.catalog.pool.sanitizer = self.sanitizer
        self.default_layout = default_layout
        # Column-set-aware scans (ProjectedScan); off = full-width scans,
        # the pre-pipeline behaviour benchmarks compare against.
        self.projection_pushdown = projection_pushdown
        # Batched columnar execution (selection vectors over column
        # fragments, late materialisation); off = the row-at-a-time tuple
        # path, retained as the comparison baseline.
        self.vectorized = vectorized
        # Zone-map data skipping + index access paths; off = every scan
        # decodes every covering page (the pre-skipping baseline).
        self.data_skipping = data_skipping
        self.transactions = TransactionManager()
        self._listeners: List[Callable[[ChangeEvent], None]] = []
        self.statements_executed = 0
        # Adaptive-layout maintenance: every ``auto_layout_interval``
        # statements (0 disables), tables with auto layout enabled get a
        # tick — advisor consult or a few online migration steps.
        self.auto_layout_interval = auto_layout_interval
        self._statements_since_tick = 0
        # HTAP isolation: with background maintenance on, the statement
        # cadence only *wakes* a MaintenanceWorker thread instead of
        # running the tick inline on the apply path.  Defaults from
        # REPRO_BG_MAINT so the whole test suite can run in either mode.
        if background_maintenance is None:
            background_maintenance = os.environ.get(
                "REPRO_BG_MAINT", ""
            ) not in ("", "0")
        self.background_maintenance = background_maintenance
        self._maintenance_worker: Optional[MaintenanceWorker] = None
        # Recent non-idle tick reports (bounded: long-lived sessions tick
        # forever; callers wanting everything consume maintenance_tick()'s
        # return value instead).
        self.maintenance_reports: Deque[Dict[str, Any]] = deque(maxlen=256)
        # Observability: a per-database registry by default so tests and
        # benchmarks stay isolated; pass repro.obs.global_registry() to
        # aggregate several databases into one scrape surface.
        self.metrics_registry = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog()
        self.last_trace: Optional[Span] = None
        self._stmt_counter = self.metrics_registry.counter(
            "db_statements_total", "SQL statements executed"
        )
        self._stmt_seconds = self.metrics_registry.histogram(
            "db_statement_seconds", "SQL statement latency (seconds)"
        )
        self._maint_ticks = self.metrics_registry.counter(
            "db_maint_ticks", "maintenance beats run (inline or background)"
        )
        self._maint_blocks = self.metrics_registry.counter(
            "db_maint_blocks", "pages written by maintenance restructures"
        )
        self._maint_seconds = self.metrics_registry.histogram(
            "db_maint_tick_seconds", "maintenance beat latency (seconds)"
        )
        self.metrics_registry.register_collector(self._collect_engine_metrics)

    # -- observability -------------------------------------------------------

    def _collect_engine_metrics(self) -> Dict[str, Any]:
        """Pull-collector over the engine's existing counters — reading
        them at scrape time keeps the hot paths un-instrumented."""
        snap = self.catalog.pool.stats_snapshot()
        snap["db_tables"] = len(self.catalog.table_names())
        snap["db_events_logged"] = len(self.events)
        batch_scans = batches = bytes_decoded = encoded_groups = 0
        open_snapshots = retired_pages = 0
        pages_skipped = index_lookups = 0
        for table in self.catalog.tables():
            batch_scans += table.store.batch_scans
            batches += table.store.batches_emitted
            bytes_decoded += table.store.bytes_decoded
            encoded_groups += table.store.encoded_group_count
            pages_skipped += table.store.pages_skipped
            index_lookups += table.index_lookups
            snapshot_stats = table.store.snapshot_stats()
            open_snapshots += snapshot_stats["active_snapshots"]
            retired_pages += snapshot_stats["retired_pages"]
        snap["db_batch_scans"] = batch_scans
        snap["db_batches"] = batches
        snap["db_bytes_decoded"] = bytes_decoded
        snap["db_encoded_groups"] = encoded_groups
        snap["db_pages_skipped"] = pages_skipped
        snap["db_index_lookups"] = index_lookups
        snap["db_open_snapshots"] = open_snapshots
        snap["db_retired_pages"] = retired_pages
        worker = self._maintenance_worker
        snap["db_maint_worker_running"] = int(
            worker is not None and worker.running
        )
        snap["db_maint_worker_errors"] = worker.errors if worker is not None else 0
        return snap

    def metrics(self) -> Dict[str, Any]:
        """One flat snapshot of every engine metric (see
        :meth:`repro.obs.MetricsRegistry.snapshot`)."""
        return self.metrics_registry.snapshot()

    # -- events -------------------------------------------------------------

    def add_listener(self, listener: Callable[[ChangeEvent], None]) -> None:
        """Subscribe to change events from every (current and future)
        table."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[ChangeEvent], None]) -> None:
        self._listeners.remove(listener)

    def _dispatch(self, event: ChangeEvent) -> None:
        for listener in list(self._listeners):
            listener(event)

    def _attach(self, table: Table) -> Table:
        table.listeners.append(self._dispatch)
        table.events = self.events
        return table

    # -- schema API ----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        layout: Optional[LayoutPolicy] = None,
        if_not_exists: bool = False,
    ) -> Table:
        existing = self.catalog.try_get(name)
        if existing is not None and if_not_exists:
            return existing
        table = self.catalog.create_table(
            name, schema, layout or self.default_layout, if_not_exists
        )
        self._attach(table)
        self.transactions.record_undo(lambda: self.catalog.drop(name, if_exists=True))
        return table

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def has_table(self, name: str) -> bool:
        return name in self.catalog

    def table_names(self) -> List[str]:
        return self.catalog.table_names()

    # -- transactions ----------------------------------------------------------------

    def begin(self) -> None:
        self.transactions.begin()

    def commit(self) -> None:
        self.transactions.commit()

    def rollback(self) -> int:
        return self.transactions.rollback()

    @property
    def in_transaction(self) -> bool:
        return self.transactions.in_transaction

    # -- I/O accounting -----------------------------------------------------------------

    @property
    def io_stats(self) -> IOStats:
        return self.catalog.pool.stats

    def checkpoint(self) -> int:
        """Flush all buffered pages; returns blocks written."""
        return self.catalog.pool.flush_all()

    def reset_io_stats(self) -> None:
        self.catalog.pool.stats.reset()

    # -- adaptive layout maintenance -----------------------------------------------

    def maintenance_tick(
        self,
        steps: int = 2,
        observer: Optional[Callable[[str, str, List[List[str]]], None]] = None,
        max_blocks: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Tick every table that opted into adaptive layout (or has a
        migration in flight); returns the non-idle per-table reports.

        ``max_blocks`` budgets the restructure work of each table's beat
        (see :meth:`Table.layout_tick`) so one big migration cannot stall
        the serve loop; ``None`` preserves the unbudgeted behaviour.

        ``observer`` (forwarded to :meth:`Table.layout_tick`) sees every
        migration start and applied step — the durable server logs these
        to its WAL so a recovered server converges to the same layout."""
        reports = []
        for table in self.catalog.tables():
            if table.auto_layout or table.migration_active:
                report = table.layout_tick(
                    steps, observer=observer, max_blocks=max_blocks
                )
                if report.get("action") != "idle":
                    reports.append(report)
        self.maintenance_reports.extend(reports)
        self._maint_ticks.inc()
        blocks = sum(report.get("blocks_this_tick", 0) for report in reports)
        if blocks:
            self._maint_blocks.inc(blocks)
        return reports

    def _maybe_auto_tick(self) -> None:
        if not self.auto_layout_interval:
            return
        self._statements_since_tick += 1
        if self._statements_since_tick < self.auto_layout_interval:
            return
        # Never re-partition mid-transaction: undo closures must replay
        # against a stable store, and a rollback should not be charged
        # migration I/O.
        if self.in_transaction:
            return
        self._statements_since_tick = 0
        if self.background_maintenance:
            # HTAP isolation: the apply path only nudges the worker; the
            # budgeted tick itself runs on the maintenance thread.  The
            # worker is started lazily, on the first cadence trigger with
            # actual maintenance candidates — explicit maintenance_tick()
            # calls stay synchronous in every mode.
            if any(
                table.auto_layout or table.migration_active
                for table in self.catalog.tables()
            ):
                self.ensure_maintenance_worker().wake()
            return
        self.maintenance_tick()

    def _background_beat(self) -> bool:
        """One bounded maintenance beat, run on the worker thread.

        Budgets each table's restructure work with
        :func:`~repro.engine.hybridstore.suggested_tick_budget` so a beat
        holds the store mutation lock for a fraction of a full chain
        rewrite, and reports whether any table did non-idle work (the
        worker keeps beating until quiescence)."""
        if self.in_transaction:
            return False
        candidates = [
            table
            for table in self.catalog.tables()
            if table.auto_layout or table.migration_active
        ]
        if not candidates:
            return False
        budget = max(
            suggested_tick_budget(
                table.n_rows, self.catalog.pool.page_capacity
            )
            for table in candidates
        )
        return bool(self.maintenance_tick(max_blocks=budget))

    def ensure_maintenance_worker(self) -> MaintenanceWorker:
        """The lazily created background worker (started on return)."""
        worker = self._maintenance_worker
        if worker is None:
            worker = self._maintenance_worker = MaintenanceWorker(
                self._background_beat,
                events=self.events,
                histogram=self._maint_seconds,
            )
        return worker.start()

    @property
    def maintenance_worker(self) -> Optional[MaintenanceWorker]:
        return self._maintenance_worker

    def close(self) -> None:
        """Stop background maintenance (draining pending work first).
        Safe to call on a database that never started a worker."""
        worker = self._maintenance_worker
        if worker is not None:
            worker.stop(drain=True)

    # -- SQL entry point ------------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        resolver: Optional[RangeResolver] = None,
    ) -> ResultSet:
        """Parse and execute one statement (or a BEGIN/COMMIT/ROLLBACK).

        ``EXPLAIN TRACE <statement>`` runs the statement with the span
        tracer active and returns the rendered trace tree (one line per
        row); the :class:`~repro.obs.Span` itself is kept on
        :attr:`last_trace` for programmatic inspection."""
        match = _EXPLAIN_TRACE.match(sql)
        if match:
            _, span = self.trace_statement(sql[match.end():], params, resolver)
            lines = span.render().splitlines() if span is not None else []
            return ResultSet(["trace"], [(line,) for line in lines], len(lines))
        command = _TXN_COMMANDS.get(sql.strip().rstrip(";").strip().lower())
        if command == "begin":
            self.begin()
            return ResultSet()
        if command == "commit":
            self.commit()
            return ResultSet()
        if command == "rollback":
            self.rollback()
            return ResultSet()
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise SqlError(
                f"execute() takes one statement, got {len(statements)}; "
                "use execute_script()"
            )
        return self._execute_statement(statements[0], params, resolver)

    def execute_script(
        self,
        sql: str,
        params: Sequence[Any] = (),
        resolver: Optional[RangeResolver] = None,
    ) -> List[ResultSet]:
        return [
            self._execute_statement(statement, params, resolver)
            for statement in parse_sql(sql)
        ]

    def query(
        self,
        sql: str,
        params: Sequence[Any] = (),
        resolver: Optional[RangeResolver] = None,
    ) -> ResultSet:
        """Like :meth:`execute` but asserts the statement is a SELECT."""
        result = self.execute(sql, params, resolver)
        return result

    def trace_statement(
        self,
        sql: str,
        params: Sequence[Any] = (),
        resolver: Optional[RangeResolver] = None,
    ) -> Tuple[ResultSet, Optional[Span]]:
        """Execute one statement with the tracer active; returns
        ``(result, span_tree)``.  The tree covers parse → plan → execute
        with the plan-operator and pager accounting children attached."""
        root = self.tracer.begin("statement")
        root.add("sql", " ".join(sql.split()))
        try:
            with root:
                with self.tracer.span("parse"):
                    statements = parse_sql(sql)
                if len(statements) != 1:
                    raise SqlError(
                        f"EXPLAIN TRACE takes one statement, got {len(statements)}"
                    )
                result = self._execute_statement(statements[0], params, resolver)
        finally:
            self.last_trace = self.tracer.finish()
        return result, self.last_trace

    # -- statement dispatch -------------------------------------------------------

    def _execute_statement(
        self,
        statement: ast.Statement,
        params: Sequence[Any],
        resolver: Optional[RangeResolver],
    ) -> ResultSet:
        self.statements_executed += 1
        self._maybe_auto_tick()
        # Gate the perf_counter pair on the enabled flag so "metrics off"
        # costs one boolean test per statement.
        timed = self.metrics_registry.enabled
        started = time.perf_counter() if timed else 0.0
        try:
            return self._dispatch_statement(statement, params, resolver)
        finally:
            if timed:
                self._stmt_counter.value += 1
                self._stmt_seconds.observe(time.perf_counter() - started)

    def _dispatch_statement(
        self,
        statement: ast.Statement,
        params: Sequence[Any],
        resolver: Optional[RangeResolver],
    ) -> ResultSet:
        planner = Planner(
            self.catalog,
            resolver,
            projection_pushdown=self.projection_pushdown,
            vectorized=self.vectorized,
            data_skipping=self.data_skipping,
        )
        if isinstance(statement, (ast.SelectStmt, ast.CompoundSelect)):
            tracer = self.tracer
            with tracer.span("plan"):
                planned = planner.plan_select(statement)
            with tracer.span("execute") as execute_span:
                tracing = tracer.active
                if tracing:
                    pool = self.catalog.pool
                    io_before = pool.stats.snapshot()
                    hits_before, misses_before = pool.hits, pool.misses
                rows = planned.execute(params)
                if tracing:
                    execute_span.add("rows_out", len(rows))
                    delta = pool.stats.delta(io_before)
                    execute_span.annotate_child(
                        "pager",
                        pages_read=delta.reads,
                        pages_written=delta.writes,
                        cache_hits=pool.hits - hits_before,
                        cache_misses=pool.misses - misses_before,
                    )
                    _annotate_plan(execute_span, planned.plan)
            return ResultSet(planned.column_names, rows, len(rows))
        if isinstance(statement, ast.InsertStmt):
            return self._execute_insert(statement, params, planner)
        if isinstance(statement, ast.UpdateStmt):
            return self._execute_update(statement, params, planner)
        if isinstance(statement, ast.DeleteStmt):
            return self._execute_delete(statement, params, planner)
        if isinstance(statement, ast.CreateTableStmt):
            return self._execute_create(statement, params, planner)
        if isinstance(statement, ast.AlterTableStmt):
            return self._execute_alter(statement, params, planner)
        if isinstance(statement, ast.DropTableStmt):
            return self._execute_drop(statement)
        if isinstance(statement, ast.CreateIndexStmt):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropIndexStmt):
            return self._execute_drop_index(statement)
        raise SqlError(f"unsupported statement {type(statement).__name__}")

    # -- DML ------------------------------------------------------------------------

    def _const_eval(
        self, expression: ast.Expression, params: Sequence[Any], planner: Planner
    ) -> Any:
        fn = planner._compile(expression, Scope([]))
        return fn((), params)

    def _execute_insert(
        self, statement: ast.InsertStmt, params: Sequence[Any], planner: Planner
    ) -> ResultSet:
        table = self.catalog.get(statement.table)
        schema = table.schema
        if statement.columns:
            indexes = [schema.column_index(name) for name in statement.columns]
        else:
            indexes = list(range(schema.n_columns))
        source_rows: List[Tuple[Any, ...]] = []
        if statement.select is not None:
            planned = planner.plan_select(statement.select)
            source_rows = planned.execute(params)
        else:
            for value_row in statement.rows:
                source_rows.append(
                    tuple(self._const_eval(e, params, planner) for e in value_row)
                )
        position: Optional[int] = None
        if statement.position is not None:
            position = int(self._const_eval(statement.position, params, planner))
        inserted = 0
        for row in source_rows:
            if len(row) != len(indexes):
                raise ExecutionError(
                    f"INSERT expects {len(indexes)} values per row, got {len(row)}"
                )
            full = [None] * schema.n_columns
            for column in schema.columns:
                if column.default is not None:
                    full[schema.column_index(column.name)] = column.default
            for index, value in zip(indexes, row):
                full[index] = value
            insert_position = None if position is None else position + inserted
            rid = table.insert(full, position=insert_position)
            inserted += 1
            self.transactions.record_undo(
                (lambda t, r: (lambda: t.delete_rids([r], emit=True)))(table, rid)
            )
        return ResultSet(rowcount=inserted)

    def _dml_targets(
        self,
        table: Table,
        where: Optional[ast.Expression],
        params: Sequence[Any],
        planner: Planner,
    ) -> List[Tuple[int, int, Tuple[Any, ...]]]:
        """Rows a DML statement touches: ``(position, rid, full_row)``.

        Three shapes, cheapest first:

        * no WHERE — every row is a target; the predicate path is skipped
          entirely and rows stream off the full scan,
        * vectorized WHERE — the predicate rides a *narrow* batched scan
          over just the referenced columns (selection vectors when the
          expression batch-compiles, row closures otherwise) and full rows
          are fetched only for the matching rids — the page-I/O saving the
          hybrid layout grants writes too,
        * fallback (vectorized off, or a WHERE with no column refs) — the
          historical full-row scan with a per-row predicate.

        With ``data_skipping`` on, the vectorized scan also hands the
        WHERE clause's sargable interval sets to the store so zone maps
        drop non-matching pages before decode, and a point constraint on
        an indexed column short-circuits to an index probe — DML rides
        the same selective-read machinery SELECT does.
        """
        if where is None:
            return [(position, rid, row) for position, rid, row in table.scan()]
        full_scope = Scope([(table.name, name) for name in table.column_names])
        refs = {
            node.name.lower()
            for node in ast.walk_expression(where)
            if isinstance(node, ast.ColumnRef)
        }
        names = [name for name in table.column_names if name.lower() in refs]
        if not self.vectorized or not names:
            predicate = planner._compile(where, full_scope)
            return [
                (position, rid, row)
                for position, rid, row in table.scan()
                if predicate(row, params) is True
            ]
        ranges = None
        if self.data_skipping:
            ranges = extract_sargable_ranges(where, params, table.name) or None
        if ranges:
            probe = self._dml_index_probe(table, where, params, planner, ranges)
            if probe is not None:
                return probe
        narrow_scope = Scope([(table.name, name) for name in names])
        batch_fn = compile_batch_predicate(where, narrow_scope)
        row_fn = None if batch_fn is not None else planner._compile(where, narrow_scope)
        matches: List[Tuple[int, int]] = []
        scanned = 0
        batches = 0
        skipped_before = table.store.pages_skipped
        for start, rids, cols in table.scan_column_batches(
            names, predicate_ranges=ranges
        ):
            n = len(rids)
            scanned += n
            batches += 1
            positions = (
                start if isinstance(start, list) else range(start, start + n)
            )
            if batch_fn is not None:
                for i, verdict in enumerate(batch_fn(cols, params, n)):
                    if verdict is True:
                        matches.append((positions[i], rids[i]))
            else:
                for i in range(n):
                    values = tuple(column[i] for column in cols)
                    if row_fn(values, params) is True:
                        matches.append((positions[i], rids[i]))
        if self.tracer.active:
            self.tracer.current.annotate_child(
                f"DmlScan({table.name}, cols=[{', '.join(names)}])",
                rows_scanned=scanned,
                cols_read=len(names),
                batches=batches,
                rows_per_batch=scanned // batches if batches else 0,
                rows_matched=len(matches),
                pages_skipped=table.store.pages_skipped - skipped_before,
            )
        matches.sort()
        store = table.store
        return [
            (position, rid, store.read_row(rid)) for position, rid in matches
        ]

    def _dml_index_probe(
        self,
        table: Table,
        where: ast.Expression,
        params: Sequence[Any],
        planner: Planner,
        ranges: Dict[str, Any],
    ) -> Optional[List[Tuple[int, int, Tuple[Any, ...]]]]:
        """Index fast path for a DML WHERE with a point constraint on an
        indexed column: probe the tree instead of scanning, re-check the
        full predicate on each fetched row.  Returns None when no index
        applies (the batched scan runs instead)."""
        chosen = None
        for name, interval_set in ranges.items():
            index = table.index_for(name)
            if index is None or interval_set.includes_null:
                continue
            points = interval_set.points()
            if points is not None:
                chosen = (index, points)
                break
        if chosen is None:
            return None
        index, points = chosen
        predicate = planner._compile(
            where, Scope([(table.name, name) for name in table.column_names])
        )
        table.index_lookups += 1
        targets: List[Tuple[int, int, Tuple[Any, ...]]] = []
        with table.store.mutation_lock:
            position_of = {
                rid: position for position, rid in enumerate(table.positions)
            }
            rids: List[int] = []
            for key in points:
                hit = index.tree.get(key)
                if hit is None:
                    continue
                rids.extend(hit if isinstance(hit, list) else [hit])
            for rid in rids:
                position = position_of.get(rid)
                if position is None:
                    continue
                row = table.store.read_row(rid)
                if predicate(row, params) is True:
                    targets.append((position, rid, row))
        targets.sort()
        if self.tracer.active:
            self.tracer.current.annotate_child(
                f"DmlIndexProbe({table.name}, index={index.name})",
                index_probes=len(points),
                rows_matched=len(targets),
            )
        return targets

    def _execute_update(
        self, statement: ast.UpdateStmt, params: Sequence[Any], planner: Planner
    ) -> ResultSet:
        table = self.catalog.get(statement.table)
        scope = Scope([(table.name, name) for name in table.column_names])
        assignment_fns = [
            (name, planner._compile(expression, scope))
            for name, expression in statement.assignments
        ]
        # Materialise targets first: assignments must see pre-update values.
        targets = self._dml_targets(table, statement.where, params, planner)
        for position, rid, row in targets:
            changes = {name: fn(row, params) for name, fn in assignment_fns}
            old_values = {
                name: row[table.schema.column_index(name)] for name, _ in assignment_fns
            }
            table.update_rid(rid, changes, position=position)
            self.transactions.record_undo(
                (lambda t, r, old: (lambda: t.update_rid(r, old)))(table, rid, old_values)
            )
        return ResultSet(rowcount=len(targets))

    def _execute_delete(
        self, statement: ast.DeleteStmt, params: Sequence[Any], planner: Planner
    ) -> ResultSet:
        table = self.catalog.get(statement.table)
        doomed = self._dml_targets(table, statement.where, params, planner)
        table.delete_rids([rid for _, rid, _ in doomed])
        for position, rid, row in doomed:
            self.transactions.record_undo(
                (
                    lambda t, p, r, old_rid: (
                        lambda: t.insert(r, position=min(p, t.n_rows), rid=old_rid)
                    )
                )(table, position, row, rid)
            )
        return ResultSet(rowcount=len(doomed))

    # -- DDL ---------------------------------------------------------------------------

    def _column_from_def(
        self, definition: ast.ColumnDef, params: Sequence[Any], planner: Planner
    ) -> Column:
        default = None
        if definition.default is not None:
            default = self._const_eval(definition.default, params, planner)
        return Column(
            definition.name,
            DBType.parse(definition.type_name),
            primary_key=definition.primary_key,
            not_null=definition.not_null,
            default=default,
        )

    def _execute_create(
        self, statement: ast.CreateTableStmt, params: Sequence[Any], planner: Planner
    ) -> ResultSet:
        if statement.as_select is not None:
            planned = planner.plan_select(statement.as_select)
            rows = planned.execute(params)
            column_types = [DBType.NULL] * len(planned.column_names)
            for row in rows:
                for index, value in enumerate(row):
                    column_types[index] = unify_types(column_types[index], infer_type(value))
            columns = [
                Column(name, dtype if dtype is not DBType.NULL else DBType.TEXT)
                for name, dtype in zip(planned.column_names, column_types)
            ]
            schema = TableSchema(columns)
            table = self.create_table(
                statement.table, schema, if_not_exists=statement.if_not_exists
            )
            for row in rows:
                table.insert(row)
            return ResultSet(rowcount=len(rows))
        if not statement.columns:
            raise PlanError("CREATE TABLE requires columns or AS SELECT")
        columns = [self._column_from_def(d, params, planner) for d in statement.columns]
        self.create_table(
            statement.table, TableSchema(columns), if_not_exists=statement.if_not_exists
        )
        return ResultSet()

    def _execute_alter(
        self, statement: ast.AlterTableStmt, params: Sequence[Any], planner: Planner
    ) -> ResultSet:
        table = self.catalog.get(statement.table)
        action = statement.action
        if isinstance(action, ast.AlterAddColumn):
            column = self._column_from_def(action.column, params, planner)
            rewritten = table.add_column(column, group_index=action.into_group)
            self.transactions.record_undo(
                (lambda t, n: (lambda: t.drop_column(n, emit=True)))(table, column.name)
            )
            return ResultSet(rowcount=rewritten)
        if isinstance(action, ast.AlterDropColumn):
            column = table.schema.column(action.name)
            saved = list(table.store.scan_column(action.name))
            group_index = table.schema.group_of(action.name)
            rewritten = table.drop_column(action.name)

            def undo_drop(
                t: Table = table,
                c: Column = column,
                values: List[Tuple[int, Any]] = saved,
            ) -> None:
                t.add_column(c, emit=True)
                for rid, value in values:
                    t.store.update_column(rid, c.name, value)

            self.transactions.record_undo(undo_drop)
            return ResultSet(rowcount=rewritten)
        if isinstance(action, ast.AlterSetLayout):
            mode = action.mode
            if mode in ("auto", "manual"):
                previous = table.auto_layout
                table.set_auto_layout(mode == "auto")
                if mode == "manual":
                    # Stop adapting *now*: an in-flight migration would
                    # otherwise keep being stepped by maintenance ticks.
                    table.cancel_layout_migration()
                self.transactions.record_undo(
                    (lambda t, p: (lambda: t.set_auto_layout(p)))(table, previous)
                )
                return ResultSet()
            # row / column: migrate immediately (synchronously) to the
            # static extreme, suspending the advisor loop.
            old_groups = table.schema.groups
            previous_auto = table.auto_layout
            migration = table.set_static_layout(mode)
            self.transactions.record_undo(
                (
                    lambda t, g, p: (
                        lambda: (t.store.restructure(g), t.set_auto_layout(p))
                    )
                )(table, old_groups, previous_auto)
            )
            return ResultSet(rowcount=migration.pages_written)
        if isinstance(action, ast.AlterRenameColumn):
            table.rename_column(action.old, action.new)
            self.transactions.record_undo(
                (lambda t, old, new: (lambda: t.rename_column(new, old)))(
                    table, action.old, action.new
                )
            )
            return ResultSet()
        raise SqlError(f"unsupported ALTER action {type(action).__name__}")

    def _execute_drop(self, statement: ast.DropTableStmt) -> ResultSet:
        table = self.catalog.drop(statement.table, statement.if_exists)
        if table is not None:
            self.transactions.record_undo(
                (lambda t: (lambda: self.catalog.register(t)))(table)
            )
        return ResultSet()

    def _execute_create_index(self, statement: ast.CreateIndexStmt) -> ResultSet:
        table = self.catalog.create_index(
            statement.name,
            statement.table,
            statement.column,
            unique=statement.unique,
            if_not_exists=statement.if_not_exists,
        )
        if table is not None:
            self.transactions.record_undo(
                (lambda t, n: (lambda: t.drop_index(n)))(table, statement.name)
            )
        return ResultSet()

    def _execute_drop_index(self, statement: ast.DropIndexStmt) -> ResultSet:
        table = self.catalog.table_of_index(statement.name)
        if table is None:
            # Raises unless IF EXISTS swallows the miss.
            self.catalog.drop_index(statement.name, statement.if_exists)
            return ResultSet()
        dropped = table.drop_index(statement.name)
        self.transactions.record_undo(
            (
                lambda t, idx: (
                    lambda: t.indexes.__setitem__(idx.name.lower(), idx)
                )
            )(table, dropped)
        )
        return ResultSet()
