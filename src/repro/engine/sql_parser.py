"""Recursive-descent SQL parser.

Produces :mod:`repro.engine.sql_ast` nodes.  Grammar summary::

    statement   := select | insert | update | delete
                 | create_table | alter_table | drop_table
    select      := SELECT [DISTINCT|ALL] items [FROM from] [WHERE e]
                   [GROUP BY e,...] [HAVING e] [ORDER BY e [ASC|DESC],...]
                   [LIMIT e [OFFSET e]]
    from        := source {[NATURAL] [INNER|LEFT [OUTER]|CROSS] JOIN source
                   [ON e | USING (c,...)]}
    source      := ident [alias] | RANGETABLE(ref) [alias] | (select) alias
    insert      := INSERT INTO t [(c,...)] (VALUES (e,...)+ | select)
                   [AT POSITION e]                      -- DataSpread extension
    alter       := ALTER TABLE t ADD [COLUMN] coldef [AT GROUP n]
                 | ALTER TABLE t DROP [COLUMN] c
                 | ALTER TABLE t RENAME [COLUMN] old TO new
                 | ALTER TABLE t SET LAYOUT (AUTO|MANUAL|ROW|COLUMN)

Expression precedence (loosest first): ``OR``, ``AND``, ``NOT``,
comparison / ``IS`` / ``IN`` / ``BETWEEN`` / ``LIKE``, additive (``+ - ||``),
multiplicative (``* / %``), unary sign, primary.

The DataSpread constructs parse as ordinary function syntax:
``RANGEVALUE(B1)`` / ``RANGEVALUE('Sheet2!B1')`` become
:class:`~repro.engine.sql_ast.RangeValue`; ``RANGETABLE(A1:D100)`` in a FROM
clause becomes :class:`~repro.engine.sql_ast.RangeTable`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine import sql_ast as ast
from repro.engine.sql_lexer import Token, tokenize
from repro.errors import SqlSyntaxError

__all__ = ["parse_sql", "parse_statement", "parse_expression"]


def parse_sql(sql: str) -> List[ast.Statement]:
    """Parse a semicolon-separated script into a list of statements."""
    parser = _Parser(tokenize(sql))
    statements: List[ast.Statement] = []
    while not parser.at_end():
        if parser.try_op(";"):
            continue
        statements.append(parser.statement())
        if not parser.at_end():
            parser.expect_op(";")
    return statements


def parse_statement(sql: str) -> ast.Statement:
    """Parse exactly one statement (trailing semicolon allowed)."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise SqlSyntaxError(f"expected one statement, found {len(statements)}")
    return statements[0]


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone SQL expression (used in tests and DEFAULTs)."""
    parser = _Parser(tokenize(text))
    expression = parser.expression()
    if not parser.at_end():
        raise SqlSyntaxError("trailing input after expression", parser.peek().position)
    return expression


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0
        self._param_count = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        where = f" near {token.text!r}" if token.text else " at end of input"
        return SqlSyntaxError(message + where, token.position)

    def try_keyword(self, *words: str) -> bool:
        """Consume the keyword sequence if fully present."""
        for offset, word in enumerate(words):
            if not self.peek(offset).matches("KEYWORD", word):
                return False
        self._index += len(words)
        return True

    def expect_keyword(self, *words: str) -> None:
        if not self.try_keyword(*words):
            raise self.error(f"expected {' '.join(words).upper()}")

    def try_op(self, text: str) -> bool:
        if self.peek().matches("OP", text):
            self.advance()
            return True
        return False

    def expect_op(self, text: str) -> None:
        if not self.try_op(text):
            raise self.error(f"expected {text!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind == "IDENT":
            self.advance()
            return token.text
        raise self.error("expected identifier")

    def ident_or_keyword(self) -> str:
        """Accept a keyword where an identifier is fine (column named e.g.
        ``year`` is common in imported sheets)."""
        token = self.peek()
        if token.kind in ("IDENT", "KEYWORD"):
            self.advance()
            return token.text
        raise self.error("expected identifier")

    def peek_word(self, ahead: int, word: str) -> bool:
        """Word match regardless of keyword status (``INDEX`` lexes as an
        identifier — it is not reserved, columns may be named ``index``)."""
        token = self.peek(ahead)
        return token.kind in ("IDENT", "KEYWORD") and token.text.lower() == word

    def expect_word(self, word: str) -> None:
        if not self.peek_word(0, word):
            raise self.error(f"expected {word.upper()}")
        self.advance()

    # -- statements -----------------------------------------------------------

    def statement(self) -> ast.Statement:
        token = self.peek()
        if token.matches("KEYWORD", "select"):
            return self.select_or_compound()
        if token.matches("KEYWORD", "insert"):
            return self.insert()
        if token.matches("KEYWORD", "update"):
            return self.update()
        if token.matches("KEYWORD", "delete"):
            return self.delete()
        if token.matches("KEYWORD", "create"):
            if self.peek_word(1, "index") or (
                self.peek(1).matches("KEYWORD", "unique") and self.peek_word(2, "index")
            ):
                return self.create_index()
            return self.create_table()
        if token.matches("KEYWORD", "alter"):
            return self.alter_table()
        if token.matches("KEYWORD", "drop"):
            if self.peek_word(1, "index"):
                return self.drop_index()
            return self.drop_table()
        raise self.error("expected a SQL statement")

    # SELECT -------------------------------------------------------------------

    def select_or_compound(self) -> ast.Statement:
        first = self.select()
        selects = [first]
        operators = []
        while self.try_keyword("union"):
            operators.append("union all" if self.try_keyword("all") else "union")
            selects.append(self.select())
        if len(selects) == 1:
            return first
        return ast.CompoundSelect(tuple(selects), tuple(operators))

    def select(self) -> ast.SelectStmt:
        self.expect_keyword("select")
        distinct = False
        if self.try_keyword("distinct"):
            distinct = True
        else:
            self.try_keyword("all")
        items = [self.select_item()]
        while self.try_op(","):
            items.append(self.select_item())
        source: Optional[ast.FromItem] = None
        if self.try_keyword("from"):
            source = self.from_clause()
        where = self.expression() if self.try_keyword("where") else None
        group_by: Tuple[ast.Expression, ...] = ()
        if self.try_keyword("group", "by"):
            exprs = [self.expression()]
            while self.try_op(","):
                exprs.append(self.expression())
            group_by = tuple(exprs)
        having = self.expression() if self.try_keyword("having") else None
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self.try_keyword("order", "by"):
            orders = [self.order_item()]
            while self.try_op(","):
                orders.append(self.order_item())
            order_by = tuple(orders)
        limit = offset = None
        if self.try_keyword("limit"):
            limit = self.expression()
            if self.try_keyword("offset"):
                offset = self.expression()
        return ast.SelectStmt(
            items=tuple(items),
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def select_item(self) -> ast.SelectItem:
        if self.peek().matches("OP", "*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # t.* — identifier dot star
        if (
            self.peek().kind == "IDENT"
            and self.peek(1).matches("OP", ".")
            and self.peek(2).matches("OP", "*")
        ):
            table = self.advance().text
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table=table))
        expression = self.expression()
        alias = None
        if self.try_keyword("as"):
            alias = self.ident_or_keyword()
        elif self.peek().kind == "IDENT":
            alias = self.advance().text
        return ast.SelectItem(expression, alias)

    def order_item(self) -> ast.OrderItem:
        expression = self.expression()
        descending = False
        if self.try_keyword("desc"):
            descending = True
        else:
            self.try_keyword("asc")
        return ast.OrderItem(expression, descending)

    def from_clause(self) -> ast.FromItem:
        item = self.table_source()
        while True:
            natural = False
            kind = None
            if self.try_keyword("natural"):
                natural = True
            if self.try_keyword("inner", "join") or self.try_keyword("join"):
                kind = "inner"
            elif self.try_keyword("left", "outer", "join") or self.try_keyword("left", "join"):
                kind = "left"
            elif self.try_keyword("cross", "join"):
                kind = "cross"
            elif natural:
                raise self.error("expected JOIN after NATURAL")
            elif self.try_op(","):
                kind = "cross"
            else:
                break
            right = self.table_source()
            condition = None
            using: Tuple[str, ...] = ()
            if not natural and kind not in ("cross",):
                if self.try_keyword("on"):
                    condition = self.expression()
                elif self.try_keyword("using"):
                    self.expect_op("(")
                    names = [self.ident_or_keyword()]
                    while self.try_op(","):
                        names.append(self.ident_or_keyword())
                    self.expect_op(")")
                    using = tuple(names)
            item = ast.Join(item, right, kind or "inner", condition, natural, using)
        return item

    def table_source(self) -> ast.FromItem:
        if self.try_op("("):
            select = self.select()
            self.expect_op(")")
            if self.try_keyword("as"):
                alias = self.expect_ident()
            else:
                alias = self.expect_ident()
            return ast.SubquerySource(select, alias)
        token = self.peek()
        if token.kind == "IDENT" and token.text.upper() == "RANGETABLE" and self.peek(1).matches("OP", "("):
            self.advance()
            self.advance()
            reference = self.range_reference()
            self.expect_op(")")
            alias = self.optional_alias()
            return ast.RangeTable(reference, alias)
        name = self.expect_ident()
        alias = self.optional_alias()
        return ast.TableRef(name, alias)

    def optional_alias(self) -> Optional[str]:
        if self.try_keyword("as"):
            return self.ident_or_keyword()
        if self.peek().kind == "IDENT":
            return self.advance().text
        return None

    def range_reference(self) -> str:
        """``B1``, ``A1:D100`` or a quoted form ``'Sheet2!A1:D100'``."""
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            return token.text
        first = self.expect_ident()
        if self.try_op(":"):
            second = self.expect_ident()
            return f"{first}:{second}"
        return first

    # INSERT ----------------------------------------------------------------------

    def insert(self) -> ast.InsertStmt:
        self.expect_keyword("insert", "into")
        table = self.expect_ident()
        columns: Tuple[str, ...] = ()
        if self.peek().matches("OP", "(") and self._looks_like_column_list():
            self.expect_op("(")
            names = [self.ident_or_keyword()]
            while self.try_op(","):
                names.append(self.ident_or_keyword())
            self.expect_op(")")
            columns = tuple(names)
        rows: Tuple[Tuple[ast.Expression, ...], ...] = ()
        select = None
        if self.try_keyword("values"):
            all_rows = [self.value_row()]
            while self.try_op(","):
                all_rows.append(self.value_row())
            rows = tuple(all_rows)
        elif self.peek().matches("KEYWORD", "select"):
            select = self.select()
        else:
            raise self.error("expected VALUES or SELECT")
        position = None
        if self.try_keyword("at", "position"):
            position = self.expression()
        return ast.InsertStmt(table, columns, rows, select, position)

    def _looks_like_column_list(self) -> bool:
        """Disambiguate ``INSERT INTO t (a, b) VALUES`` from
        ``INSERT INTO t (SELECT ...)``."""
        return not self.peek(1).matches("KEYWORD", "select")

    def value_row(self) -> Tuple[ast.Expression, ...]:
        self.expect_op("(")
        values = [self.expression()]
        while self.try_op(","):
            values.append(self.expression())
        self.expect_op(")")
        return tuple(values)

    # UPDATE / DELETE ---------------------------------------------------------------

    def update(self) -> ast.UpdateStmt:
        self.expect_keyword("update")
        table = self.expect_ident()
        self.expect_keyword("set")
        assignments = [self.assignment()]
        while self.try_op(","):
            assignments.append(self.assignment())
        where = self.expression() if self.try_keyword("where") else None
        return ast.UpdateStmt(table, tuple(assignments), where)

    def assignment(self) -> Tuple[str, ast.Expression]:
        name = self.ident_or_keyword()
        self.expect_op("=")
        return (name, self.expression())

    def delete(self) -> ast.DeleteStmt:
        self.expect_keyword("delete", "from")
        table = self.expect_ident()
        where = self.expression() if self.try_keyword("where") else None
        return ast.DeleteStmt(table, where)

    # DDL -----------------------------------------------------------------------------

    def create_table(self) -> ast.CreateTableStmt:
        self.expect_keyword("create", "table")
        if_not_exists = bool(self.try_keyword("if", "not", "exists"))
        table = self.expect_ident()
        if self.try_keyword("as"):
            return ast.CreateTableStmt(table, (), if_not_exists, self.select())
        self.expect_op("(")
        columns: List[ast.ColumnDef] = []
        primary_key_from_constraint: Optional[str] = None
        while True:
            if self.try_keyword("primary", "key"):
                self.expect_op("(")
                primary_key_from_constraint = self.ident_or_keyword()
                self.expect_op(")")
            else:
                columns.append(self.column_def())
            if not self.try_op(","):
                break
        self.expect_op(")")
        if primary_key_from_constraint is not None:
            lowered = primary_key_from_constraint.lower()
            columns = [
                ast.ColumnDef(c.name, c.type_name, c.name.lower() == lowered or c.primary_key, c.not_null, c.default)
                for c in columns
            ]
        return ast.CreateTableStmt(table, tuple(columns), if_not_exists)

    def column_def(self) -> ast.ColumnDef:
        name = self.ident_or_keyword()
        type_name = "TEXT"
        token = self.peek()
        if token.kind == "IDENT":
            type_name = self.advance().text
            if self.try_op("("):  # VARCHAR(30)
                while not self.try_op(")"):
                    self.advance()
                    if self.at_end():
                        raise self.error("unterminated type arguments")
        primary_key = False
        not_null = False
        default: Optional[ast.Expression] = None
        while True:
            if self.try_keyword("primary", "key"):
                primary_key = True
            elif self.try_keyword("not", "null"):
                not_null = True
            elif self.try_keyword("unique"):
                continue  # accepted, enforced only for primary keys
            elif self.try_keyword("default"):
                default = self.expression()
            else:
                break
        return ast.ColumnDef(name, type_name, primary_key, not_null, default)

    def alter_table(self) -> ast.AlterTableStmt:
        self.expect_keyword("alter", "table")
        table = self.expect_ident()
        if self.try_keyword("add"):
            self.try_keyword("column")
            column = self.column_def()
            into_group: Optional[int] = None
            if self.try_keyword("at", "group"):
                token = self.peek()
                if token.kind != "NUMBER":
                    raise self.error("expected group number")
                self.advance()
                into_group = int(token.text)
            return ast.AlterTableStmt(table, ast.AlterAddColumn(column, into_group))
        if self.try_keyword("drop"):
            self.try_keyword("column")
            return ast.AlterTableStmt(table, ast.AlterDropColumn(self.ident_or_keyword()))
        if self.try_keyword("rename"):
            self.try_keyword("column")
            old = self.ident_or_keyword()
            self.expect_keyword("to")
            new = self.ident_or_keyword()
            return ast.AlterTableStmt(table, ast.AlterRenameColumn(old, new))
        if self.try_keyword("set"):
            word = self.ident_or_keyword()
            if word.lower() != "layout":
                raise self.error("expected LAYOUT after SET")
            mode = self.ident_or_keyword().lower()
            if mode not in ("auto", "manual", "row", "column"):
                raise self.error("expected AUTO, MANUAL, ROW or COLUMN")
            return ast.AlterTableStmt(table, ast.AlterSetLayout(mode))
        raise self.error("expected ADD, DROP, RENAME or SET")

    def drop_table(self) -> ast.DropTableStmt:
        self.expect_keyword("drop", "table")
        if_exists = bool(self.try_keyword("if", "exists"))
        return ast.DropTableStmt(self.expect_ident(), if_exists)

    def create_index(self) -> ast.CreateIndexStmt:
        self.expect_keyword("create")
        unique = bool(self.try_keyword("unique"))
        self.expect_word("index")
        if_not_exists = bool(self.try_keyword("if", "not", "exists"))
        name = self.expect_ident()
        self.expect_keyword("on")
        table = self.expect_ident()
        self.expect_op("(")
        column = self.ident_or_keyword()
        self.expect_op(")")
        return ast.CreateIndexStmt(name, table, column, unique, if_not_exists)

    def drop_index(self) -> ast.DropIndexStmt:
        self.expect_keyword("drop")
        self.expect_word("index")
        if_exists = bool(self.try_keyword("if", "exists"))
        return ast.DropIndexStmt(self.expect_ident(), if_exists)

    # -- expressions --------------------------------------------------------------------

    def expression(self) -> ast.Expression:
        return self.or_expr()

    def or_expr(self) -> ast.Expression:
        left = self.and_expr()
        while self.try_keyword("or"):
            left = ast.BinaryOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expression:
        left = self.not_expr()
        while self.try_keyword("and"):
            left = ast.BinaryOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expression:
        if self.try_keyword("not"):
            return ast.UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expression:
        left = self.additive()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
                self.advance()
                op = "<>" if token.text == "!=" else token.text
                left = ast.BinaryOp(op, left, self.additive())
                continue
            if self.try_keyword("is"):
                negated = bool(self.try_keyword("not"))
                self.expect_keyword("null")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            if self.peek().matches("KEYWORD", "not") and self.peek(1).kind == "KEYWORD" and self.peek(1).text.lower() in ("in", "between", "like"):
                self.advance()
                negated = True
            if self.try_keyword("in"):
                left = self.in_tail(left, negated)
                continue
            if self.try_keyword("between"):
                low = self.additive()
                self.expect_keyword("and")
                high = self.additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self.try_keyword("like"):
                left = ast.Like(left, self.additive(), negated)
                continue
            if negated:
                raise self.error("expected IN, BETWEEN or LIKE after NOT")
            break
        return left

    def in_tail(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self.expect_op("(")
        if self.peek().matches("KEYWORD", "select"):
            select = self.select()
            self.expect_op(")")
            return ast.InSubquery(operand, select, negated)
        items = [self.expression()]
        while self.try_op(","):
            items.append(self.expression())
        self.expect_op(")")
        return ast.InList(operand, tuple(items), negated)

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("+", "-", "||"):
                self.advance()
                left = ast.BinaryOp(token.text, left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.text in ("*", "/", "%"):
                self.advance()
                left = ast.BinaryOp(token.text, left, self.unary())
            else:
                return left

    def unary(self) -> ast.Expression:
        token = self.peek()
        if token.kind == "OP" and token.text in ("-", "+"):
            self.advance()
            return ast.UnaryOp(token.text, self.unary())
        return self.primary()

    def primary(self) -> ast.Expression:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            if "." in text or "e" in text.lower():
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.text)
        if token.matches("KEYWORD", "true"):
            self.advance()
            return ast.Literal(True)
        if token.matches("KEYWORD", "false"):
            self.advance()
            return ast.Literal(False)
        if token.matches("KEYWORD", "null"):
            self.advance()
            return ast.Literal(None)
        if token.matches("OP", "?"):
            self.advance()
            parameter = ast.Parameter(self._param_count)
            self._param_count += 1
            return parameter
        if token.matches("KEYWORD", "case"):
            return self.case_expr()
        if token.matches("OP", "("):
            self.advance()
            if self.peek().matches("KEYWORD", "select"):
                select = self.select()
                self.expect_op(")")
                return ast.ScalarSubquery(select)
            inner = self.expression()
            self.expect_op(")")
            return inner
        if token.kind == "IDENT":
            return self.identifier_expr()
        raise self.error("expected an expression")

    def case_expr(self) -> ast.Expression:
        self.expect_keyword("case")
        operand = None
        if not self.peek().matches("KEYWORD", "when"):
            operand = self.expression()
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self.try_keyword("when"):
            condition = self.expression()
            self.expect_keyword("then")
            whens.append((condition, self.expression()))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        default = self.expression() if self.try_keyword("else") else None
        self.expect_keyword("end")
        return ast.Case(operand, tuple(whens), default)

    def identifier_expr(self) -> ast.Expression:
        name = self.expect_ident()
        # Function call?
        if self.peek().matches("OP", "("):
            upper = name.upper()
            if upper == "RANGEVALUE":
                self.advance()
                reference = self.range_reference()
                self.expect_op(")")
                return ast.RangeValue(reference)
            if upper == "RANGETABLE":
                raise self.error("RANGETABLE is only valid in a FROM clause")
            self.advance()
            distinct = bool(self.try_keyword("distinct"))
            args: List[ast.Expression] = []
            if self.peek().matches("OP", "*"):
                self.advance()
                args.append(ast.Star())
            elif not self.peek().matches("OP", ")"):
                args.append(self.expression())
                while self.try_op(","):
                    args.append(self.expression())
            self.expect_op(")")
            return ast.FuncCall(name.lower(), tuple(args), distinct)
        # Qualified column t.c (or t.*, handled by select_item).
        if self.peek().matches("OP", "."):
            self.advance()
            column = self.ident_or_keyword()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)
