"""The paper's hybrid attribute-group store.

Paper §3, *Relational Storage Manager*: "with an insight to reduce the disk
blocks to update during a schema change, the relational storage manager uses
a hybrid of column-store and row-store to physically store the table".

Columns are partitioned into attribute groups; each group has its own page
chain.  The schema-change cost model that experiment E6 verifies:

===================  =======================  ==========================
operation            row store                hybrid store
===================  =======================  ==========================
ADD COLUMN           rewrite *all* pages      0 rewrites (new group) or
                                              pages of one group
DROP COLUMN          rewrite *all* pages      0 rewrites (sole member) or
                                              pages of one group
tuple insert         1 page                   ``n_groups`` pages
tuple update (1 col) 1 page                   1 page (the column's group)
===================  =======================  ==========================

:meth:`GroupedTupleStore.compact_groups` (inherited) re-partitions into
target groups — e.g. merging the many single-column groups created by
repeated ADD COLUMN back into wider ones — the maintenance operation a
production system would run off-line.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.pager import BufferPool, DEFAULT_PAGE_CAPACITY
from repro.engine.schema import TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy

__all__ = ["HybridStore"]


class HybridStore(GroupedTupleStore):
    """Attribute-group hybrid of row and column layouts."""

    def __init__(
        self,
        schema: TableSchema,
        pool: Optional[BufferPool] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        super().__init__(schema, pool, LayoutPolicy.HYBRID, page_capacity)
