"""The paper's hybrid attribute-group store.

Paper §3, *Relational Storage Manager*: "with an insight to reduce the disk
blocks to update during a schema change, the relational storage manager uses
a hybrid of column-store and row-store to physically store the table".

Columns are partitioned into attribute groups; each group has its own page
chain.  The schema-change cost model that experiment E6 verifies:

===================  =======================  ==========================
operation            row store                hybrid store
===================  =======================  ==========================
ADD COLUMN           rewrite *all* pages      0 rewrites (new group) or
                                              pages of one group
DROP COLUMN          rewrite *all* pages      0 rewrites (sole member) or
                                              pages of one group
tuple insert         1 page                   ``n_groups`` pages
tuple update (1 col) 1 page                   1 page (the column's group)
===================  =======================  ==========================

:meth:`GroupedTupleStore.compact_groups` (inherited) re-partitions into
target groups — e.g. merging the many single-column groups created by
repeated ADD COLUMN back into wider ones — the maintenance operation a
production system would run off-line.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.pager import BufferPool, DEFAULT_PAGE_CAPACITY
from repro.engine.schema import TableSchema
from repro.engine.store import AccessStats, GroupedTupleStore, LayoutPolicy

__all__ = [
    "HybridStore",
    "pages_for_group",
    "estimate_workload_blocks",
    "restructure_blocks",
    "suggested_tick_budget",
]


# -- the E6 cost table, as code -------------------------------------------------
#
# Blocks touched per logical operation under an attribute-group partition
# (the table in the module docstring, generalised to arbitrary groupings):
#
# * insert / delete / full-row update / full-row point read: one block per
#   group (``n_groups``),
# * single-column update: one block in *any* layout (the column lives in
#   exactly one group),
# * column scan: every block of that column's chain — ``n_rows`` divided by
#   how many records a page holds at the group's fragment width,
# * full-table scan: every block of every chain.
#
# :class:`repro.engine.layout.LayoutAdvisor` prices candidate partitions
# against an observed workload with these functions.


def pages_for_group(
    n_rows: int, width: int, page_capacity: int, ratio: float = 1.0
) -> int:
    """Blocks in one group's chain: narrow fragments pack more records.

    ``ratio`` is the group's compression ratio (plain bytes over encoded
    bytes, >= 1 when page encodings are in effect): an encoded page holds
    ``ratio`` times as many records, so the chain is proportionally
    shorter.  The default 1.0 prices a plain chain.
    """
    if n_rows <= 0:
        return 0
    capacity = max(1, page_capacity // max(1, width))
    capacity = max(capacity, int(capacity * ratio))
    return math.ceil(n_rows / capacity)


def suggested_tick_budget(
    n_rows: int, page_capacity: int, fraction: float = 0.25
) -> int:
    """``max_blocks`` for one background maintenance beat.

    Prices a beat at ``fraction`` of a full single-column chain rewrite
    (the cheapest restructure unit at the table's current size), floored
    at 8 blocks so tiny tables still finish a migration step per beat.
    The background :class:`repro.engine.maintenance.MaintenanceWorker`
    uses this so one beat never monopolises the mutation lock for a
    whole multi-group restructure."""
    full_chain = pages_for_group(n_rows, 1, page_capacity)
    return max(8, int(full_chain * fraction))


def estimate_workload_blocks(
    grouping: Sequence[Sequence[str]],
    stats: AccessStats,
    n_rows: int,
    page_capacity: int,
    ratios: Optional[Dict[str, float]] = None,
) -> int:
    """Predicted blocks touched replaying ``stats`` under ``grouping``.

    Column scans are priced from the *co-access sets* when the window
    recorded them: one request over a set of columns reads each distinct
    covering chain once, so co-locating columns that are scanned together
    does not multiply the scan bill while it does shrink the per-tuple
    group count.  Scan counts not covered by any recorded set (older
    stats, or direct counter writes) fall back to the per-column charge.

    ``ratios`` (lower-cased column name -> compression ratio, from
    :meth:`GroupedTupleStore.column_encoding_ratios`) lets the advisor
    see encoded chains as shorter: a candidate group's ratio is the mean
    over its members, columns without an entry counting as 1.0.  Scan
    costs shrink accordingly; per-tuple costs (insert/delete/point read)
    still touch one block per group, encoded or not.
    """
    groups: List[List[str]] = [list(group) for group in grouping if group]
    n_groups = max(1, len(groups))
    group_of: Dict[str, int] = {
        name.lower(): index for index, group in enumerate(groups) for name in group
    }
    lookup = ratios or {}
    group_ratios = [
        sum(lookup.get(name.lower(), 1.0) for name in group) / len(group)
        for group in groups
    ]
    pages = [
        pages_for_group(n_rows, len(group), page_capacity, ratio)
        for group, ratio in zip(groups, group_ratios)
    ]
    cost = (
        stats.inserts + stats.deletes + stats.full_updates + stats.point_reads
    ) * n_groups
    cost += stats.full_scans * sum(pages)
    # Joint scans: each recorded co-access set reads every distinct chain
    # covering it once per request.
    coverage: Dict[str, int] = {}
    for names, count in stats.group_scans.items():
        covering = {group_of[name] for name in names if name in group_of}
        if not covering:
            continue  # every member since dropped/renamed
        cost += count * sum(max(1, pages[index]) for index in covering)
        for name in names:
            coverage[name] = coverage.get(name, 0) + count
    for name, column in stats.columns.items():
        index = group_of.get(name)
        if index is None:
            continue  # column since dropped/renamed
        residual = column.scans - coverage.get(name, 0)
        if residual > 0:
            cost += residual * max(1, pages[index])
        cost += column.updates  # one block regardless of layout
    return cost


def restructure_blocks(
    current: Sequence[Sequence[str]],
    target: Sequence[Sequence[str]],
    n_rows: int,
    page_capacity: int,
) -> int:
    """Blocks one build-then-swap-then-free restructure step touches.

    Groups whose member list is unchanged are reused for free; every other
    target group reads each **distinct source chain** holding one of its
    members once, then writes its own fresh chain.  The build walks a
    source chain sequentially no matter how many member columns it
    contributes, so charging per member column (the old model) double-
    bills shared chains — splitting one 4-wide group into two pairs used
    to bill four reads of the same chain instead of two, making the
    advisor overestimate split costs and under-migrate.
    """
    current_groups = [list(group) for group in current if group]
    target_groups = [list(group) for group in target if group]
    current_keys = {
        tuple(name.lower() for name in group) for group in current_groups
    }
    home: Dict[str, Tuple[str, ...]] = {}
    source_pages: Dict[Tuple[str, ...], int] = {}
    for group in current_groups:
        key = tuple(name.lower() for name in group)
        source_pages[key] = pages_for_group(n_rows, len(group), page_capacity)
        for name in group:
            home[name.lower()] = key
    blocks = 0
    for group in target_groups:
        key = tuple(name.lower() for name in group)
        if key in current_keys:
            continue
        sources = {
            home[name.lower()] for name in group if name.lower() in home
        }
        blocks += sum(source_pages[source] for source in sources)
        blocks += pages_for_group(n_rows, len(group), page_capacity)
    return blocks


class HybridStore(GroupedTupleStore):
    """Attribute-group hybrid of row and column layouts."""

    def __init__(
        self,
        schema: TableSchema,
        pool: Optional[BufferPool] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        super().__init__(schema, pool, LayoutPolicy.HYBRID, page_capacity)
