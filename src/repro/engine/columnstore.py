"""Column store: one attribute group (page chain) per column.

The opposite extreme from :class:`~repro.engine.rowstore.RowStore`:
``ADD COLUMN`` allocates a fresh chain and rewrites nothing, but every tuple
insert/update/delete touches one page per column.  The paper's hybrid store
sits between the two extremes (see :mod:`repro.engine.hybridstore`).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.pager import BufferPool, DEFAULT_PAGE_CAPACITY
from repro.engine.schema import TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy

__all__ = ["ColumnStore"]


class ColumnStore(GroupedTupleStore):
    """Every column in its own attribute group."""

    def __init__(
        self,
        schema: TableSchema,
        pool: Optional[BufferPool] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        super().__init__(schema, pool, LayoutPolicy.COLUMN, page_capacity)
