"""The grouped tuple store — common machinery for all three layouts.

Paper §3, *Relational Storage Manager*: "the relational storage manager uses
a hybrid of column-store and row-store to physically store the table.  Here,
data is structured along a collection of attribute groups, thereby radically
reducing the disk blocks that need an update during a schema change."

:class:`GroupedTupleStore` materialises **one page chain per attribute
group**; each page holds ``(rid, fragment)`` records where the fragment is
the tuple of that group's column values.  The three layouts are then just
grouping policies:

* ``ROW``    — a single group holding every column (classic heap file);
  ``ADD COLUMN`` must rewrite *every* page,
* ``COLUMN`` — one group per column; ``ADD COLUMN`` allocates a fresh chain
  and rewrites nothing, but every tuple operation touches one page per
  column,
* ``HYBRID`` — the paper's design: arbitrary groups; new columns go into a
  new group by default (zero rewrites) and can later be co-located.

Records are addressed by a store-assigned **rid** that never changes; the
positional order of a table lives in the positional index
(:mod:`repro.index.positional`), not in the store.

**Concurrency model** (HTAP isolation): one writer at a time mutates the
store under ``_mutation_lock``; readers never take it for iteration.
Instead, scans open a :class:`StoreSnapshot` — an epoch-stamped, immutable
capture of the grouping and every page-id chain.  Writers copy-on-write any
page an open snapshot can still see and *retire* (instead of free) pages
they unlink; retired pages are reclaimed when the last snapshot whose epoch
can observe them is released.  This is what lets a background
:class:`~repro.engine.maintenance.MaintenanceWorker` restructure chains
while analytical scans stream the pre-migration version.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.encoding import (
    PLAIN_VALUE_BYTES,
    choose_encoding,
    decode_column,
    encode_column,
    encoded_size,
)
from repro.analysis.sanitizer import NULL_SANITIZER
from repro.engine.pager import BufferPool, DEFAULT_PAGE_CAPACITY, IOStats
from repro.engine.schema import Column, TableSchema
from repro.errors import SchemaError, StorageError

__all__ = [
    "LayoutPolicy",
    "GroupedTupleStore",
    "StoreSnapshot",
    "ColumnAccessStats",
    "AccessStats",
    "DEFAULT_BATCH_SIZE",
]

#: Rows per column-fragment batch yielded by :meth:`scan_group_batches`.
DEFAULT_BATCH_SIZE = 1024

#: Distinguishes anonymous stores in the shared pool's per-tag accounting.
_store_counter = itertools.count()


class LayoutPolicy(Enum):
    """Physical layout policy applied to the schema's attribute groups."""

    ROW = "row"
    COLUMN = "column"
    HYBRID = "hybrid"


@dataclass
class ColumnAccessStats:
    """Access counters for one column (workload signal for the advisor)."""

    scans: int = 0  # scan_column passes over this column
    updates: int = 0  # single-column updates

    def total(self) -> int:
        return self.scans + self.updates


@dataclass
class AccessStats:
    """Workload profile of one store, fed to the layout advisor.

    Counts *logical* operations (not blocks): how the table is being used,
    so :class:`~repro.engine.layout.LayoutAdvisor` can price candidate
    attribute-group partitions with the E6 cost table and pick the layout
    this workload wants.
    """

    inserts: int = 0
    deletes: int = 0
    point_reads: int = 0  # full-row get()
    full_updates: int = 0  # whole-row update()
    full_scans: int = 0  # scan() passes over the table
    schema_changes: int = 0
    columns: Dict[str, ColumnAccessStats] = field(default_factory=dict)
    # Co-access sets: how many times each *set* of columns was scanned
    # together (one query = one count), keyed by the sorted lower-cased
    # column-name tuple.  Single-column scans record singleton sets, so
    # ``column(name).scans`` always equals the sum over sets containing
    # the column — the invariant the joint-scan cost model relies on.
    group_scans: Dict[Tuple[str, ...], int] = field(default_factory=dict)

    def column(self, name: str) -> ColumnAccessStats:
        key = name.lower()
        stats = self.columns.get(key)
        if stats is None:
            stats = self.columns[key] = ColumnAccessStats()
        return stats

    def record_scan(self, names: Sequence[str]) -> None:
        """Charge one scan request over ``names`` (a column set scanned
        *together*): bumps each column's scan counter and the co-access
        set counter the layout advisor clusters on."""
        key = tuple(sorted(name.lower() for name in names))
        if not key:
            return
        for name in key:
            self.column(name).scans += 1
        self.group_scans[key] = self.group_scans.get(key, 0) + 1

    def remap_scan_sets(self, transform) -> None:
        """Rewrite every co-access set key through ``transform(names)``
        (returning the new sorted tuple, or a falsy value to discard the
        set), merging counts that collide — the shared machinery behind
        column renames and drops."""
        remapped: Dict[Tuple[str, ...], int] = {}
        for names, count in self.group_scans.items():
            key = transform(names)
            if key:
                remapped[key] = remapped.get(key, 0) + count
        self.group_scans = remapped

    def co_access_pairs(self) -> List[Tuple[Tuple[str, str], int]]:
        """Pairwise joint-scan affinity, highest first — the signal the
        CLI surfaces and the advisor clusters on."""
        pairs: Dict[Tuple[str, str], int] = {}
        for names, count in self.group_scans.items():
            if len(names) < 2 or count <= 0:
                continue
            for i, first in enumerate(names):
                for second in names[i + 1 :]:
                    pairs[(first, second)] = pairs.get((first, second), 0) + count
        return sorted(pairs.items(), key=lambda item: (-item[1], item[0]))

    @property
    def total_ops(self) -> int:
        return (
            self.inserts
            + self.deletes
            + self.point_reads
            + self.full_updates
            + self.full_scans
            + self.schema_changes
            + sum(c.total() for c in self.columns.values())
        )

    def reset(self) -> None:
        self.inserts = self.deletes = self.point_reads = 0
        self.full_updates = self.full_scans = self.schema_changes = 0
        self.columns.clear()
        self.group_scans.clear()

    def decay(self, factor: float = 0.5) -> None:
        """Age the profile so the advisor tracks the *recent* workload."""
        self.inserts = int(self.inserts * factor)
        self.deletes = int(self.deletes * factor)
        self.point_reads = int(self.point_reads * factor)
        self.full_updates = int(self.full_updates * factor)
        self.full_scans = int(self.full_scans * factor)
        self.schema_changes = int(self.schema_changes * factor)
        for stats in self.columns.values():
            stats.scans = int(stats.scans * factor)
            stats.updates = int(stats.updates * factor)
        for key in list(self.group_scans):
            aged = int(self.group_scans[key] * factor)
            if aged:
                self.group_scans[key] = aged
            else:
                del self.group_scans[key]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "point_reads": self.point_reads,
            "full_updates": self.full_updates,
            "full_scans": self.full_scans,
            "schema_changes": self.schema_changes,
            "columns": {
                name: {"scans": c.scans, "updates": c.updates}
                for name, c in sorted(self.columns.items())
            },
            # JSON objects need string keys; serialise the set as a list
            # of [member-list, count] pairs instead of joining names.
            "group_scans": [
                [list(names), count]
                for names, count in sorted(self.group_scans.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AccessStats":
        """Rebuild a persisted profile (inverse of :meth:`to_dict`).

        A recovered store resumes advising from the live (decayed) window
        it had at snapshot time instead of re-learning from cold counters
        — without this, a restarted server's advisor is blind until the
        workload has been replayed against it a second time."""
        stats = cls(
            inserts=int(payload.get("inserts", 0)),
            deletes=int(payload.get("deletes", 0)),
            point_reads=int(payload.get("point_reads", 0)),
            full_updates=int(payload.get("full_updates", 0)),
            full_scans=int(payload.get("full_scans", 0)),
            schema_changes=int(payload.get("schema_changes", 0)),
        )
        for name, counters in (payload.get("columns") or {}).items():
            column = stats.column(name)
            column.scans = int(counters.get("scans", 0))
            column.updates = int(counters.get("updates", 0))
        for names, count in payload.get("group_scans") or []:
            key = tuple(sorted(str(name).lower() for name in names))
            if key and int(count) > 0:
                stats.group_scans[key] = stats.group_scans.get(key, 0) + int(count)
        return stats


def _zone_of(values: Sequence[Any]) -> Optional[Tuple[Any, Any, int]]:
    """``(min, max, null_count)`` over one fragment's values, or ``None``
    when the non-null values do not mutually order (mixed types) — such a
    page can never be proven skippable."""
    lo = hi = None
    nulls = 0
    for value in values:
        if value is None:
            nulls += 1
        elif lo is None:
            lo = hi = value
        else:
            try:
                if value < lo:
                    lo = value
                elif value > hi:
                    hi = value
            except TypeError:
                return None
    return (lo, hi, nulls)


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and merge half-open ``(start, stop)`` intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, stop in intervals[1:]:
        if start <= merged[-1][1]:
            if stop > merged[-1][1]:
                merged[-1] = (merged[-1][0], stop)
        else:
            merged.append((start, stop))
    return merged


def _alive_offsets(
    dead: List[Tuple[int, int]], cursor: int, position: int, count: int
) -> Optional[List[int]]:
    """In-page record offsets *not* covered by the ``dead`` position
    intervals (``dead[cursor:]`` is the still-relevant suffix); ``None``
    when the whole page is alive, ``[]`` when it is entirely dead."""
    stop = position + count
    alive: List[int] = []
    start = 0
    covered = False
    j = cursor
    while j < len(dead) and dead[j][0] < stop:
        lo = max(dead[j][0], position) - position
        hi = min(dead[j][1], stop) - position
        if hi > lo:
            covered = True
            alive.extend(range(start, lo))
            start = hi
        j += 1
    if not covered:
        return None
    alive.extend(range(start, count))
    return alive


class _BatchCursor:
    """Buffers page-sized ``(rids, columns)`` chunks from a chain stream
    and serves exact-size slices, so batch boundaries are independent of
    page boundaries (encoded pages hold more rows than plain ones)."""

    def __init__(self, source: Iterator[Tuple[List[int], List[List[Any]]]]):
        self._source = source
        self._rids: List[int] = []
        self._cols: List[List[Any]] = []

    def take(self, n: int) -> Tuple[List[int], List[List[Any]]]:
        while len(self._rids) < n:
            chunk = next(self._source, None)
            if chunk is None:
                break
            rids, cols = chunk
            if not self._rids:
                self._rids = list(rids)
                self._cols = [list(col) for col in cols]
            else:
                self._rids.extend(rids)
                for have, more in zip(self._cols, cols):
                    have.extend(more)
        if len(self._rids) <= n:
            rids, cols = self._rids, self._cols
            self._rids, self._cols = [], []
            return rids, cols
        rids, self._rids = self._rids[:n], self._rids[n:]
        cols = [col[:n] for col in self._cols]
        self._cols = [col[n:] for col in self._cols]
        return rids, cols


class StoreSnapshot:
    """An immutable, epoch-stamped view of a :class:`GroupedTupleStore`.

    Captured atomically under the store's mutation lock: the attribute
    grouping, every group's page-id chain, the accounting tags, and the
    snapshot epoch.  Pages referenced here are protected two ways: the
    store's epoch-based reclamation keeps them *allocated* (a writer that
    unlinks one retires it instead of freeing), and each chain head is
    *pinned* in the buffer pool so eviction pressure cannot push the
    reader's working set out mid-scan.

    Readers iterate only this captured state — never the live chains — so
    a scan opened before a write or an in-flight ``restructure()`` swap
    returns exactly the pre-write rows.  Release promptly (scans do so in
    a ``finally``); an unreleased snapshot keeps retired chains alive.
    """

    __slots__ = (
        "epoch",
        "groups",
        "chains",
        "tags",
        "n_rows",
        "_store",
        "_rid_maps",
        "released",
    )

    def __init__(
        self,
        store: "GroupedTupleStore",
        epoch: int,
        groups: List[List[str]],
        chains: List[Tuple[int, ...]],
        tags: List[Tuple[str, int]],
        n_rows: int,
    ):
        self._store = store
        self.epoch = epoch
        self.groups = groups
        self.chains = chains
        self.tags = tags
        self.n_rows = n_rows
        # Lazily-built rid → page-id directories over the captured chains,
        # only materialised by the lockstep-violation fallback path.
        self._rid_maps: Dict[int, Dict[int, int]] = {}
        self.released = False

    def release(self) -> None:
        """Drop this snapshot's epoch; idempotent.  The store reclaims any
        retired pages no remaining snapshot can observe."""
        self._store._release_snapshot(self)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def group_of(self, column_name: str) -> int:
        key = column_name.lower()
        for index, members in enumerate(self.groups):
            for name in members:
                if name.lower() == key:
                    return index
        raise SchemaError(f"unknown column {column_name!r} in snapshot")

    def placements(self, names: Sequence[str]) -> List[Tuple[int, int, int]]:
        """``(group_index, fragment_offset, output_offset)`` per column,
        resolved against the captured grouping (the live one may have
        migrated since)."""
        placements: List[Tuple[int, int, int]] = []
        for out_offset, column_name in enumerate(names):
            group_index = self.group_of(column_name)
            members = self.groups[group_index]
            frag_offset = next(
                i
                for i, name in enumerate(members)
                if name.lower() == column_name.lower()
            )
            placements.append((group_index, frag_offset, out_offset))
        return placements

    def column_set(self) -> set:
        return {name.lower() for members in self.groups for name in members}

    def fragment_at(self, group_index: int, rid: int) -> Tuple[Any, ...]:
        """Directory lookup against the *captured* chains — the snapshot
        equivalent of the store's point-read fallback."""
        rid_map = self._rid_maps.get(group_index)
        if rid_map is None:
            rid_map = self._rid_maps[group_index] = self._build_rid_map(group_index)
        page_id = rid_map.get(rid)
        if page_id is None:
            raise StorageError(
                f"rid {rid} not found in snapshot group {group_index}"
            )
        page = self._store.pool.get(page_id)
        return GroupedTupleStore._page_fragment(page, rid)

    def _build_rid_map(self, group_index: int) -> Dict[int, int]:
        directory: Dict[int, int] = {}
        for page_id in self.chains[group_index]:
            page = self._store.pool.get(page_id)
            for rid in GroupedTupleStore._page_rids(page):
                directory[rid] = page_id
        return directory


class GroupedTupleStore:
    """rid-addressed tuple storage partitioned into attribute-group chains."""

    def __init__(
        self,
        schema: TableSchema,
        pool: Optional[BufferPool] = None,
        layout: LayoutPolicy = LayoutPolicy.HYBRID,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        owner: Optional[str] = None,
    ):
        self.schema = schema
        self.layout = layout
        # The owner string is only an accounting key; the counter suffix
        # keeps it unique so a table dropped and re-created under the same
        # name does not inherit the dead store's per-group I/O counters.
        self.owner = f"{owner if owner is not None else 'store'}#{next(_store_counter)}"
        self.pool = pool if pool is not None else BufferPool(page_capacity=page_capacity)
        if layout is LayoutPolicy.ROW:
            schema.set_groups([schema.column_names])
        elif layout is LayoutPolicy.COLUMN:
            schema.set_groups([[name] for name in schema.column_names])
        # HYBRID keeps whatever grouping the schema was built with.
        self._chains: List[List[int]] = [[] for _ in range(schema.n_groups)]
        self._rid_page: List[Dict[int, int]] = [{} for _ in range(schema.n_groups)]
        # Stable per-group ids: chains keep their id across group-index
        # shifts (add/drop/restructure), so per-group I/O accounting in the
        # pager survives layout changes.
        self._group_ids: List[int] = list(range(schema.n_groups))
        self._next_gid = schema.n_groups
        self._next_rid = 0
        self._n_rows = 0
        self.access_stats = AccessStats()
        # Per-group page-encoding state.  A group is "encoded" when its
        # chain prefix holds compressed column fragments (see encoding.py);
        # freshly appended records always land on plain tail pages, so a
        # chain is encoded-prefix + plain-tail.  ``ratio`` is the measured
        # plain/encoded byte ratio from the last encode pass (1.0 = plain),
        # which also scales how many records an encoded page holds.
        self._group_encoded: List[bool] = [False] * schema.n_groups
        self._group_ratio: List[float] = [1.0] * schema.n_groups
        self._group_enc_failed: List[bool] = [False] * schema.n_groups
        self._group_plain_pages: List[int] = [0] * schema.n_groups
        # Store-level vectorized-execution counters (metrics exporter).
        self.batch_scans = 0
        self.batches_emitted = 0
        self.bytes_decoded = 0
        # Pages whose decode was proven unnecessary by zone maps, total and
        # per group id (gids are stable across group-index shifts).
        self.pages_skipped = 0
        self._group_pages_skipped: Dict[int, int] = {}
        self._group_pages_scanned: Dict[int, int] = {}
        # Per-page zone-map cache: page_id -> (record_count, {fragment
        # offset -> (min, max, null_count) | None}).  ``None`` marks an
        # offset whose values do not order (mixed types) — never skippable.
        # Entries are dropped whenever a page is mutated in place and
        # recomputed lazily on the next zone-consulting scan, so a stale
        # entry cannot exist: a zone either describes the page's current
        # contents exactly or is absent.  Page ids are never reused
        # (DiskManager allocates monotonically), so a dropped entry cannot
        # be resurrected for different data.
        self._page_meta: Dict[int, Tuple[int, Dict[int, Optional[Tuple[Any, Any, int]]]]] = {}
        # Runtime invariant checks; the owning Database swaps in a real
        # Sanitizer (via the catalog) when sanitize mode is on.
        self.sanitizer = NULL_SANITIZER
        # -- snapshot isolation state (see the module docstring) ---------
        # All structural mutation happens under this lock; readers never
        # take it for iteration, only for the instant of snapshot capture.
        self._mutation_lock = threading.RLock()
        # The epoch counter advances on every snapshot acquisition.  A
        # page's "allocation mark" is the counter value when it was
        # allocated: snapshots with epoch >= mark were captured after the
        # page existed and may reference it.
        self._epoch = 0
        self._active_snapshots: Dict[int, int] = {}  # epoch -> refcount
        self._page_epoch: Dict[int, int] = {}  # page_id -> allocation mark
        # Pages/tags unlinked while a snapshot could still see them:
        # (retire_epoch, page_id | tag), freed once no active snapshot has
        # epoch < retire_epoch.
        self._retired_pages: List[Tuple[int, int]] = []
        self._retired_tags: List[Tuple[int, Tuple[str, int]]] = []

    # -- snapshot isolation ------------------------------------------------

    @property
    def mutation_lock(self) -> threading.RLock:
        """The store's writer lock — public so the table layer can capture
        its positional order and a store snapshot atomically."""
        return self._mutation_lock

    def snapshot(self) -> StoreSnapshot:
        """Capture an immutable view of the current grouping and chains.

        The caller must :meth:`StoreSnapshot.release` it (scans do this
        automatically when their iterator is exhausted or closed)."""
        with self._mutation_lock:
            epoch = self._epoch
            self._epoch += 1
            self._active_snapshots[epoch] = self._active_snapshots.get(epoch, 0) + 1
            snap = StoreSnapshot(
                self,
                epoch,
                [list(members) for members in self.schema.groups],
                [tuple(chain) for chain in self._chains],
                [self._tag(index) for index in range(len(self._chains))],
                self._n_rows,
            )
            for chain in snap.chains:
                if chain:
                    self.pool.pin(chain[0])
            return snap

    def _release_snapshot(self, snap: StoreSnapshot) -> None:
        with self._mutation_lock:
            if snap.released:
                return
            snap.released = True
            count = self._active_snapshots.get(snap.epoch, 0) - 1
            if count <= 0:
                self._active_snapshots.pop(snap.epoch, None)
            else:
                self._active_snapshots[snap.epoch] = count
            for chain in snap.chains:
                if chain:
                    self.pool.unpin(chain[0])
            self._reclaim()

    def _newest_active_epoch(self) -> int:
        """Largest active snapshot epoch, or -1 when none are open.
        Caller holds the mutation lock."""
        return max(self._active_snapshots) if self._active_snapshots else -1

    def _reclaim(self) -> None:
        """Free retired pages/tags no open snapshot can observe.

        A snapshot with epoch E sees a page retired at R iff E < R, so a
        retirement is reclaimable once ``min(active epochs) >= R`` (or no
        snapshot is open at all).  Caller holds the mutation lock."""
        if not self._retired_pages and not self._retired_tags:
            return
        floor = (
            min(self._active_snapshots) if self._active_snapshots else None
        )
        keep_pages: List[Tuple[int, int]] = []
        for retire_epoch, page_id in self._retired_pages:
            if floor is not None and retire_epoch > floor:
                keep_pages.append((retire_epoch, page_id))
            else:
                self._page_epoch.pop(page_id, None)
                self._page_meta.pop(page_id, None)
                self.pool.free_page(page_id)
        self._retired_pages = keep_pages
        keep_tags: List[Tuple[int, Tuple[str, int]]] = []
        for retire_epoch, tag in self._retired_tags:
            if floor is not None and retire_epoch > floor:
                keep_tags.append((retire_epoch, tag))
            else:
                self.pool.drop_tag_stats(tag)
        self._retired_tags = keep_tags

    def _new_page(self, tag: Tuple[str, int]):
        """Allocate a pool page stamped with the current epoch mark.
        Caller holds the mutation lock."""
        page = self.pool.new_page(tag=tag)
        self._page_epoch[page.page_id] = self._epoch
        return page

    def _release_page(self, page_id: int) -> None:
        """Unlink a page: free it now if private, else retire it until the
        last snapshot that can see it is released.  Caller holds the
        mutation lock."""
        mark = self._page_epoch.get(page_id, 0)
        if self._active_snapshots and mark <= self._newest_active_epoch():
            self._retired_pages.append((self._epoch, page_id))
        else:
            self._page_epoch.pop(page_id, None)
            self._page_meta.pop(page_id, None)
            self.pool.free_page(page_id)

    def _release_tag(self, tag: Tuple[str, int]) -> None:
        """Drop a dead group's I/O counters once the snapshots still
        charging reads to it are gone.  Caller holds the mutation lock."""
        if self._active_snapshots:
            self._retired_tags.append((self._epoch, tag))
        else:
            self.pool.drop_tag_stats(tag)

    def _writable_page(self, group_index: int, page: Any) -> Any:
        """Copy-on-write gate for in-place page mutation.

        With no open snapshot able to see ``page`` it is returned as-is —
        the historical zero-overhead path.  Otherwise the page is cloned
        onto a fresh page id, the clone replaces the original in the live
        chain and rid directory, and the original is retired for the open
        snapshots to finish with.  Caller holds the mutation lock."""
        newest = self._newest_active_epoch()
        if newest < 0 or self._page_epoch.get(page.page_id, 0) > newest:
            return page
        clone = self._new_page(self._tag(group_index))
        clone.records = list(page.records)
        # Shallow header copy: the "enc" payload is never mutated in
        # place (thaw *pops* the key), so sharing it is safe.
        clone.header = dict(page.header)
        clone.mark_dirty()
        chain = self._chains[group_index]
        for i in range(len(chain) - 1, -1, -1):
            if chain[i] == page.page_id:
                chain[i] = clone.page_id
                break
        directory = self._rid_page[group_index]
        for rid in self._page_rids(clone):
            directory[rid] = clone.page_id
        self._release_page(page.page_id)
        return clone

    def snapshot_stats(self) -> Dict[str, int]:
        """Observability: open snapshots and deferred reclamation debt."""
        with self._mutation_lock:
            return {
                "epoch": self._epoch,
                "active_snapshots": sum(self._active_snapshots.values()),
                "retired_pages": len(self._retired_pages),
                "retired_tags": len(self._retired_tags),
            }

    # -- basic properties --------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_groups(self) -> int:
        return len(self._chains)

    def pages_in_group(self, group_index: int) -> int:
        return len(self._chains[group_index])

    @property
    def n_pages(self) -> int:
        return sum(len(chain) for chain in self._chains)

    def rids(self) -> List[int]:
        """All live rids, in insertion order of their first group."""
        with self._mutation_lock:
            if not self._rid_page:
                return []
            result: List[int] = []
            for page_id in self._chains[0]:
                page = self.pool.get(page_id)
                result.extend(self._page_rids(page))
            return result

    # -- internal page helpers ---------------------------------------------

    def _tag(self, group_index: int) -> Tuple[str, int]:
        """Pager accounting tag for one group's pages."""
        return (self.owner, self._group_ids[group_index])

    def group_io_stats(self, group_index: int) -> IOStats:
        """Cumulative block I/O charged to one group's page chain."""
        return self.pool.tag_stats(self._tag(group_index))

    def _group_capacity(self, group_index: int) -> int:
        """Records per page for one group's chain.

        ``page_capacity`` is a *value* budget per block (standing in for the
        byte budget of a real 8 KB page), so narrow fragments pack more
        records per block — the physical effect that makes the hybrid
        store's fresh-chain ADD COLUMN cheap in blocks, not just in
        rewrites."""
        width = max(1, len(self.schema.groups[group_index]))
        return max(1, self.pool.page_capacity // width)

    def _append_record(self, group_index: int, rid: int, fragment: Tuple[Any, ...]) -> None:
        """Append one fragment to a group's tail page.  Caller holds the
        mutation lock (every public mutator takes it)."""
        chain = self._chains[group_index]
        page = None
        if chain:
            last = self.pool.get(chain[-1])
            # Encoded pages are immutable; fresh records go on a plain tail.
            if "enc" not in last.header and last.n_records < self._group_capacity(
                group_index
            ):
                page = self._writable_page(group_index, last)
        if page is None:
            page = self._new_page(self._tag(group_index))
            chain.append(page.page_id)
            self._group_plain_pages[group_index] += 1
        page.records.append((rid, fragment))
        page.mark_dirty()
        self._page_meta.pop(page.page_id, None)
        self._rid_page[group_index][rid] = page.page_id

    # -- encoded-page helpers ----------------------------------------------

    @staticmethod
    def _page_rids(page: Any) -> List[int]:
        enc = page.header.get("enc")
        if enc is not None:
            return enc["rids"]
        return [rid for rid, _ in page.records]

    def _charge_decode(self, group_index: int, n_bytes: int) -> None:
        """Account simulated payload bytes decoded from one group's pages."""
        self._charge_decode_tag(self._tag(group_index), n_bytes)

    def _charge_decode_tag(self, tag: Tuple[str, int], n_bytes: int) -> None:
        """Tag-addressed variant: snapshot scans charge the tag captured
        at open, which stays correct even if the live group index moved."""
        if n_bytes <= 0:
            return
        self.bytes_decoded += n_bytes
        self.pool.add_bytes(tag, bytes_read=n_bytes)

    def _thaw_page(self, group_index: int, page: Any) -> None:
        """Decode an encoded page back into plain records, in place.

        Mutations (update/delete) land here; read paths never thaw, so a
        snapshot taken after pure scans still sees the encoded chain."""
        enc = page.header.pop("enc", None)
        if enc is None:
            return
        columns = [decode_column(kind, payload) for kind, payload in enc["cols"]]
        page.records = [
            (rid, tuple(column[i] for column in columns))
            for i, rid in enumerate(enc["rids"])
        ]
        page.mark_dirty()
        self._group_plain_pages[group_index] += 1
        self._charge_decode(group_index, enc["bytes"])

    @staticmethod
    def _page_fragment(page: Any, rid: int) -> Tuple[Any, ...]:
        """Extract one rid's fragment from a (possibly encoded) page."""
        enc = page.header.get("enc")
        if enc is None:
            for record_rid, fragment in page.records:
                if record_rid == rid:
                    return fragment
            raise StorageError(
                f"rid {rid} missing from page {page.page_id} (corrupt directory)"
            )
        try:
            index = enc["rids"].index(rid)
        except ValueError:
            raise StorageError(
                f"rid {rid} missing from page {page.page_id} (corrupt directory)"
            ) from None
        return tuple(
            decode_column(kind, payload)[index] for kind, payload in enc["cols"]
        )

    def _fragment_at(self, group_index: int, rid: int) -> Tuple[Any, ...]:
        """Read one fragment without thawing its page (point-read path)."""
        with self._mutation_lock:
            page_id = self._rid_page[group_index].get(rid)
            if page_id is None:
                raise StorageError(f"rid {rid} not found in group {group_index}")
            page = self.pool.get(page_id)
            return self._page_fragment(page, rid)

    def _find_slot(self, group_index: int, rid: int) -> Tuple[Any, int]:
        """Locate (and thaw) a rid's page for in-place mutation, routing
        through the copy-on-write gate.  Caller holds the mutation lock."""
        page_id = self._rid_page[group_index].get(rid)
        if page_id is None:
            raise StorageError(f"rid {rid} not found in group {group_index}")
        page = self._writable_page(group_index, self.pool.get(page_id))
        self._thaw_page(group_index, page)
        self._page_meta.pop(page.page_id, None)
        for slot, (record_rid, _) in enumerate(page.records):
            if record_rid == rid:
                return page, slot
        raise StorageError(f"rid {rid} missing from page {page.page_id} (corrupt directory)")

    # -- zone maps (data skipping) -------------------------------------------

    def _page_zone(
        self, page: Any, frag_offset: int
    ) -> Optional[Tuple[Any, Any, int]]:
        """Zone-map entry for one fragment offset of a fetched page,
        computed lazily and cached store-side so the *next* scan can skip
        the page without fetching it.  Safe without the mutation lock:
        pages reachable from a snapshot chain are immutable (in-place
        mutators route through the copy-on-write gate), and concurrent
        recomputation writes identical values."""
        meta = self._page_meta.get(page.page_id)
        if meta is None:
            enc = page.header.get("enc")
            count = len(enc["rids"]) if enc is not None else page.n_records
            meta = self._page_meta[page.page_id] = (count, {})
        zones = meta[1]
        if frag_offset in zones:
            return zones[frag_offset]
        enc = page.header.get("enc")
        if enc is None:
            values = [fragment[frag_offset] for _, fragment in page.records]
        else:
            values = decode_column(*enc["cols"][frag_offset])
        zone = zones[frag_offset] = _zone_of(values)
        return zone

    def _dead_intervals(
        self,
        snap: StoreSnapshot,
        placements: Sequence[Tuple[int, int, int]],
        names: Sequence[str],
        predicate_ranges: Dict[str, Any],
    ) -> List[Tuple[int, int]]:
        """Merged half-open *position* intervals (over the snapshot's
        shared row order) that zone maps prove cannot satisfy
        ``predicate_ranges`` (lower-cased column name → an interval set
        with a ``may_match(lo, hi, nulls, count)`` method).

        Walks each predicate column's captured chain keeping a prefix sum
        of page record counts; a page whose zone excludes the column's
        interval set contributes its position extent (AND semantics: any
        column excluding a position kills it).  Pages with no cached zone
        are fetched — they belong to covering chains the scan reads anyway
        — so the cache fills and the next scan skips without fetching.
        Position-interval (rather than page-id) form is what keeps every
        covering chain's surviving rid sequence in lockstep despite
        differing page boundaries.  Runs on immutable snapshot chains, so
        the mutation lock is not required."""
        dead: List[Tuple[int, int]] = []
        for group_index, frag_offset, out_offset in placements:
            ranges = predicate_ranges.get(names[out_offset].lower())
            if ranges is None:
                continue
            position = 0
            for page_id in snap.chains[group_index]:
                meta = self._page_meta.get(page_id)
                if meta is not None and frag_offset in meta[1]:
                    count, zone = meta[0], meta[1][frag_offset]
                else:
                    page = self.pool.get(page_id)
                    zone = self._page_zone(page, frag_offset)
                    count = self._page_meta[page_id][0]
                if count and zone is not None:
                    if not ranges.may_match(zone[0], zone[1], zone[2], count):
                        dead.append((position, position + count))
                position += count
        return _merge_intervals(dead)

    def _sanitize_page_zones(self, page: Any, needed_offsets: Sequence[int]) -> None:
        """Sanitize mode: verify cached zone maps against the decoded
        contents of a page about to be served — a stale zone (one that
        could exclude a live row) must never exist."""
        meta = self._page_meta.get(page.page_id)
        if meta is None:
            return
        count, zones = meta
        enc = page.header.get("enc")
        actual = len(enc["rids"]) if enc is not None else page.n_records
        self.sanitizer.check_zone_count(page.page_id, count, actual)
        for offset in needed_offsets:
            zone = zones.get(offset)
            if zone is None:
                continue
            if enc is None:
                values = [fragment[offset] for _, fragment in page.records]
            else:
                values = decode_column(*enc["cols"][offset])
            self.sanitizer.check_zone(page.page_id, offset, zone, values)

    def skip_fraction(self, column_name: str, ranges: Any) -> float:
        """Fraction of ``column_name``'s chain pages whose *cached* zone
        maps prove they cannot match ``ranges`` — the planner's estimate
        of how much a zone-map-skipping scan saves.  Only cached zones
        count (uncached pages must be fetched regardless), so a cold store
        prices as a full scan — matching what the next scan actually pays.
        """
        with self._mutation_lock:
            group_index = self.schema.group_of(column_name)
            members = self.schema.groups[group_index]
            offset = next(
                i
                for i, name in enumerate(members)
                if name.lower() == column_name.lower()
            )
            chain = self._chains[group_index]
            if not chain:
                return 0.0
            skippable = 0
            for page_id in chain:
                meta = self._page_meta.get(page_id)
                if meta is None or not meta[0]:
                    continue
                zone = meta[1].get(offset)
                if zone is not None and not ranges.may_match(
                    zone[0], zone[1], zone[2], meta[0]
                ):
                    skippable += 1
            return skippable / len(chain)

    def zone_coverage(self, group_index: int) -> float:
        """Fraction of one group's chain pages carrying a cached zone map
        (observability; coverage grows as scans touch the chain)."""
        with self._mutation_lock:
            chain = self._chains[group_index]
            if not chain:
                return 0.0
            cached = sum(
                1
                for page_id in chain
                if self._page_meta.get(page_id, (0, {}))[1]
            )
            return cached / len(chain)

    # -- tuple operations ---------------------------------------------------

    def insert(self, row: Sequence[Any], rid: Optional[int] = None) -> int:
        """Append a logical row; returns its rid.

        Passing ``rid`` restores a previously-deleted record id — used by
        transaction rollback so later undo entries that captured the old
        rid stay valid."""
        with self._mutation_lock:
            fragments = self.schema.split_row(tuple(row))
            if rid is not None:
                if self.exists(rid):
                    raise StorageError(f"rid {rid} is already live")
                self._next_rid = max(self._next_rid, rid + 1)
            else:
                rid = self._next_rid
                self._next_rid += 1
            for group_index, fragment in enumerate(fragments):
                self._append_record(group_index, rid, fragment)
            self._n_rows += 1
            self.access_stats.inserts += 1
            return rid

    def read_row(self, rid: int) -> Tuple[Any, ...]:
        """Fetch a full row without charging workload statistics.

        Scans, migration and validation use this so that bulk access is
        accounted at its own (cheaper, chain-sequential) cost rather than
        as per-row point reads.  Held under the mutation lock so the row
        is assembled against one consistent grouping even while the
        maintenance worker migrates chains."""
        with self._mutation_lock:
            fragments = []
            for group_index in range(self.n_groups):
                fragments.append(self._fragment_at(group_index, rid))
            return self.schema.join_fragments(fragments)

    def get(self, rid: int) -> Tuple[Any, ...]:
        """Point read of one full row (one page per group)."""
        self.access_stats.point_reads += 1
        return self.read_row(rid)

    def exists(self, rid: int) -> bool:
        with self._mutation_lock:
            return bool(self._rid_page) and rid in self._rid_page[0]

    def update(self, rid: int, row: Sequence[Any]) -> None:
        with self._mutation_lock:
            fragments = self.schema.split_row(tuple(row))
            for group_index, fragment in enumerate(fragments):
                page, slot = self._find_slot(group_index, rid)
                page.records[slot] = (rid, fragment)
                page.mark_dirty()
            self.access_stats.full_updates += 1

    def update_column(self, rid: int, column_name: str, value: Any) -> None:
        """Partial update touching only the column's own group — the
        tuple-update cost the paper wants schema changes to match."""
        with self._mutation_lock:
            group_index = self.schema.group_of(column_name)
            self.access_stats.column(column_name).updates += 1
            members = self.schema.groups[group_index]
            offset = next(
                i
                for i, name in enumerate(members)
                if name.lower() == column_name.lower()
            )
            page, slot = self._find_slot(group_index, rid)
            old_rid, fragment = page.records[slot]
            new_fragment = tuple(
                value if i == offset else item for i, item in enumerate(fragment)
            )
            page.records[slot] = (old_rid, new_fragment)
            page.mark_dirty()

    def delete(self, rid: int) -> None:
        with self._mutation_lock:
            for group_index in range(self.n_groups):
                page, slot = self._find_slot(group_index, rid)
                del page.records[slot]
                page.mark_dirty()
                del self._rid_page[group_index][rid]
            self._n_rows -= 1
            self.access_stats.deletes += 1

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield ``(rid, row)`` in heap order of the first group's chain."""
        self.access_stats.full_scans += 1
        for rid in self.rids():
            yield rid, self.read_row(rid)

    def scan_column(self, column_name: str) -> Iterator[Tuple[int, Any]]:
        """Column scan touching only that column's group chain.

        Snapshot-isolated: the chain is captured at call time, so the
        iterator streams the pre-write version regardless of concurrent
        DML or migrations."""
        with self._mutation_lock:
            snap = self.snapshot()
            try:
                group_index = snap.group_of(column_name)
                self.access_stats.record_scan([column_name])
                members = snap.groups[group_index]
                offset = next(
                    i
                    for i, name in enumerate(members)
                    if name.lower() == column_name.lower()
                )
            except BaseException:
                snap.release()
                raise

        def values() -> Iterator[Tuple[int, Any]]:
            try:
                tag = snap.tags[group_index]
                for page_id in snap.chains[group_index]:
                    page = self.pool.get(page_id)
                    enc = page.header.get("enc")
                    if enc is None:
                        self._charge_decode_tag(
                            tag, page.n_records * PLAIN_VALUE_BYTES
                        )
                        for rid, fragment in page.records:
                            yield rid, fragment[offset]
                    else:
                        kind, payload = enc["cols"][offset]
                        self._charge_decode_tag(tag, enc["col_bytes"][offset])
                        decoded = decode_column(kind, payload)
                        for rid, value in zip(enc["rids"], decoded):
                            yield rid, value
            finally:
                snap.release()

        return values()

    def scan_groups(
        self,
        column_names: Sequence[str],
        snapshot: Optional[StoreSnapshot] = None,
    ) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Scan a *set* of columns together, touching only the page chains
        of the groups that cover them.

        Yields ``(rid, values)`` with ``values`` ordered like
        ``column_names``, rid-aligned across the covering groups.  The
        scan iterates a :class:`StoreSnapshot` captured at call time (or
        the caller-provided one), so concurrent writes and in-flight
        ``restructure()`` swaps are invisible to it.  The captured chains
        are walked **in lockstep**: every mutation applies to all chains
        identically (inserts append everywhere, deletes remove everywhere,
        restructures rebuild in the shared rid order), so all chains
        enumerate records in the same order and the scan streams lazily —
        an early-exiting consumer (LIMIT) only reads the page prefix it
        consumed, and a full pass reads each covering chain sequentially
        exactly once.  Charges one co-access scan over the set (or a plain
        full scan when the set covers every column) — the workload signals
        the layout advisor prices.  Iteration order is the heap order of
        the covering chains; callers wanting presentation order go through
        :meth:`repro.engine.table.Table.scan_columns`.

        A snapshot passed in stays the caller's to release; one taken
        here is released when the iterator is exhausted or closed.
        """
        names = list(column_names)
        if not names:
            return iter(())
        owns = snapshot is None
        with self._mutation_lock:
            snap = snapshot if snapshot is not None else self.snapshot()
            try:
                # (group_index, fragment_offset, output_offset) per column,
                # resolved against the captured grouping.
                placements = snap.placements(names)
                if {name.lower() for name in names} == snap.column_set():
                    # A full-width request is a table scan, not a column-set
                    # signal: keep the historical full_scans accounting (and
                    # the advisor's hot-column ranking unskewed by SELECT *).
                    self.access_stats.full_scans += 1
                else:
                    self.access_stats.record_scan(names)
            except BaseException:
                if owns:
                    snap.release()
                raise
        covering = sorted({group_index for group_index, _, _ in placements})
        by_group: Dict[int, List[Tuple[int, int]]] = {}
        for group_index, frag_offset, out_offset in placements:
            by_group.setdefault(group_index, []).append((frag_offset, out_offset))
        chain_records = self._chain_records

        def rows() -> Iterator[Tuple[int, Tuple[Any, ...]]]:
            try:
                width = len(names)
                driver = covering[0]
                others = covering[1:]
                needed = {
                    group_index: [frag for frag, _ in by_group[group_index]]
                    for group_index in covering
                }
                cursors = {
                    group_index: chain_records(snap, group_index, needed[group_index])
                    for group_index in others
                }
                fallback: set = set()
                for rid, fragment in chain_records(snap, driver, needed[driver]):
                    slot: List[Any] = [None] * width
                    for frag_offset, out_offset in by_group[driver]:
                        slot[out_offset] = fragment[frag_offset]
                    for group_index in others:
                        record = None
                        if group_index not in fallback:
                            record = next(cursors[group_index], None)
                            if record is None or record[0] != rid:
                                # Lockstep invariant violated (should not
                                # happen); degrade this chain to per-rid
                                # directory lookups — slower, still correct.
                                fallback.add(group_index)
                                record = None
                        if record is None:
                            record = (rid, snap.fragment_at(group_index, rid))
                        for frag_offset, out_offset in by_group[group_index]:
                            slot[out_offset] = record[1][frag_offset]
                    yield rid, tuple(slot)
            finally:
                if owns:
                    snap.release()

        return rows()

    def _chain_records(
        self, snap: StoreSnapshot, group_index: int, needed_offsets: Sequence[int]
    ) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Stream one captured chain's ``(rid, fragment)`` records in page
        order, decoding encoded pages lazily.  Only ``needed_offsets`` of
        each fragment are guaranteed populated (others are ``None`` on
        encoded pages); decoded bytes are charged for exactly those
        columns, against the tag captured at snapshot time."""
        width = max(1, len(snap.groups[group_index]))
        needed = sorted(set(needed_offsets))
        tag = snap.tags[group_index]
        for page_id in snap.chains[group_index]:
            page = self.pool.get(page_id)
            enc = page.header.get("enc")
            if enc is None:
                self._charge_decode_tag(
                    tag, page.n_records * len(needed) * PLAIN_VALUE_BYTES
                )
                for record in page.records:
                    yield record
                continue
            self._charge_decode_tag(
                tag, sum(enc["col_bytes"][offset] for offset in needed)
            )
            columns: List[Optional[List[Any]]] = [None] * width
            for offset in needed:
                kind, payload = enc["cols"][offset]
                columns[offset] = decode_column(kind, payload)
            for i, rid in enumerate(enc["rids"]):
                yield rid, tuple(
                    column[i] if column is not None else None for column in columns
                )

    def _chain_batches(
        self,
        snap: StoreSnapshot,
        group_index: int,
        needed_offsets: Sequence[int],
        dead: Optional[List[Tuple[int, int]]] = None,
    ) -> Iterator[Tuple[List[int], List[List[Any]]]]:
        """Stream one captured chain page-at-a-time as ``(rids, columns)``
        where ``columns`` holds one value list per ``needed_offsets``.

        ``dead`` (merged half-open position intervals from
        :meth:`_dead_intervals`) drops the rows at those positions —
        identically in every covering chain, so rid lockstep survives
        skipping.  A page wholly inside a dead interval is skipped before
        any decode; when its record count is already cached it is skipped
        without even fetching it from the buffer pool."""
        needed = list(needed_offsets)
        tag = snap.tags[group_index]
        gid = tag[1]
        sanitize = self.sanitizer.enabled
        position = 0
        cursor = 0
        n_dead = len(dead) if dead else 0
        for page_id in snap.chains[group_index]:
            if n_dead:
                while cursor < n_dead and dead[cursor][1] <= position:
                    cursor += 1
                meta = self._page_meta.get(page_id)
                if (
                    meta is not None
                    and meta[0]
                    and cursor < n_dead
                    and dead[cursor][0] <= position
                    and position + meta[0] <= dead[cursor][1]
                ):
                    # Provably dead with a cached record count: skip the
                    # page without touching the buffer pool at all.
                    self.pages_skipped += 1
                    self._group_pages_skipped[gid] = (
                        self._group_pages_skipped.get(gid, 0) + 1
                    )
                    position += meta[0]
                    continue
            page = self.pool.get(page_id)
            enc = page.header.get("enc")
            count = len(enc["rids"]) if enc is not None else page.n_records
            if page.page_id not in self._page_meta:
                self._page_meta[page.page_id] = (count, {})
            alive: Optional[List[int]] = None
            if n_dead:
                alive = _alive_offsets(dead, cursor, position, count)
                if alive is not None and not alive:
                    # Fetched (the count was not cached yet) but proven
                    # dead: still skipped before any decode work.
                    self.pages_skipped += 1
                    self._group_pages_skipped[gid] = (
                        self._group_pages_skipped.get(gid, 0) + 1
                    )
                    position += count
                    continue
            self._group_pages_scanned[gid] = (
                self._group_pages_scanned.get(gid, 0) + 1
            )
            if sanitize:
                self._sanitize_page_zones(page, needed)
            if enc is None:
                kept = page.records
                if alive is not None:
                    kept = [page.records[i] for i in alive]
                self._charge_decode_tag(
                    tag, len(kept) * len(needed) * PLAIN_VALUE_BYTES
                )
                rids = [rid for rid, _ in kept]
                columns = [
                    [fragment[offset] for _, fragment in kept]
                    for offset in needed
                ]
                yield rids, columns
            else:
                self._charge_decode_tag(
                    tag, sum(enc["col_bytes"][offset] for offset in needed)
                )
                rids = enc["rids"]
                columns = [
                    decode_column(*enc["cols"][offset]) for offset in needed
                ]
                if alive is not None:
                    rids = [rids[i] for i in alive]
                    columns = [[column[i] for i in alive] for column in columns]
                yield rids, columns
            position += count

    def scan_group_batches(
        self,
        column_names: Sequence[str],
        batch_size: int = DEFAULT_BATCH_SIZE,
        snapshot: Optional[StoreSnapshot] = None,
        predicate_ranges: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Tuple[List[int], List[List[Any]]]]:
        """Batched form of :meth:`scan_groups`: yields ``(rids, columns)``
        with ``columns`` ordered like ``column_names`` and every list
        rid-aligned, ``batch_size`` rows per batch (the last one short).

        The covering chains are captured in a :class:`StoreSnapshot` at
        call time (or taken from the caller) and stream page-at-a-time
        with encoded pages decoded lazily into whole column fragments — no
        per-row tuples are built here; late materialization is the
        *caller's* choice.  Charges the same workload statistics as
        :meth:`scan_groups`.

        ``predicate_ranges`` (lower-cased column name → sargable interval
        set, see :func:`repro.engine.expr.extract_sargable_ranges`) arms
        zone-map data skipping: rows on pages whose cached min/max/null
        zones prove no value can satisfy the ranges are dropped *before
        decode* — identically across every covering chain, so batches stay
        rid-aligned.  Dropped rows are guaranteed non-matching, but
        surviving rows are **not** guaranteed matches: callers still apply
        the full predicate.  Ranges naming columns outside ``column_names``
        are ignored (ignoring a constraint only under-skips)."""
        names = list(column_names)
        if not names or batch_size < 1:
            return iter(())
        owns = snapshot is None
        with self._mutation_lock:
            snap = snapshot if snapshot is not None else self.snapshot()
            try:
                placements = snap.placements(names)
                if {name.lower() for name in names} == snap.column_set():
                    self.access_stats.full_scans += 1
                else:
                    self.access_stats.record_scan(names)
                self.batch_scans += 1
            except BaseException:
                if owns:
                    snap.release()
                raise
        covering = sorted({group_index for group_index, _, _ in placements})
        by_group: Dict[int, List[Tuple[int, int]]] = {}
        for group_index, frag_offset, out_offset in placements:
            by_group.setdefault(group_index, []).append((frag_offset, out_offset))
        needed = {
            group_index: [frag for frag, _ in by_group[group_index]]
            for group_index in covering
        }

        def batches() -> Iterator[Tuple[List[int], List[List[Any]]]]:
            try:
                width = len(names)
                driver = covering[0]
                others = covering[1:]
                dead: Optional[List[Tuple[int, int]]] = None
                if predicate_ranges:
                    dead = self._dead_intervals(
                        snap, placements, names, predicate_ranges
                    )
                    if not dead:
                        dead = None
                streams = {
                    group_index: _BatchCursor(
                        self._chain_batches(
                            snap, group_index, needed[group_index], dead
                        )
                    )
                    for group_index in covering
                }
                fallback: set = set()
                while True:
                    rids, driver_cols = streams[driver].take(batch_size)
                    if not rids:
                        return
                    out: List[Optional[List[Any]]] = [None] * width
                    for position, (_, out_offset) in enumerate(by_group[driver]):
                        out[out_offset] = driver_cols[position]
                    for group_index in others:
                        other_cols = None
                        if group_index not in fallback:
                            other_rids, other_cols = streams[group_index].take(
                                len(rids)
                            )
                            if other_rids != rids:
                                # Lockstep invariant violated (should not
                                # happen); under the sanitizer this is a
                                # hard error, otherwise degrade this chain
                                # to per-rid directory lookups — slower,
                                # still correct.
                                if self.sanitizer.enabled:
                                    self.sanitizer.lockstep_mismatch(
                                        group_index, rids, other_rids
                                    )
                                fallback.add(group_index)
                                other_cols = None
                        if other_cols is None:
                            frags = [
                                snap.fragment_at(group_index, rid) for rid in rids
                            ]
                            other_cols = [
                                [fragment[offset] for fragment in frags]
                                for offset in needed[group_index]
                            ]
                        for position, (_, out_offset) in enumerate(
                            by_group[group_index]
                        ):
                            out[out_offset] = other_cols[position]
                    self.batches_emitted += 1
                    if self.sanitizer.enabled:
                        self.sanitizer.check_batch(rids, out)
                    yield rids, out  # type: ignore[misc]
            finally:
                if owns:
                    snap.release()

        return batches()

    # -- schema evolution ----------------------------------------------------

    def add_column(
        self,
        column: Column,
        group_index: Optional[int] = None,
        new_group: Optional[bool] = None,
    ) -> int:
        """Add a column, placing it physically per the layout policy.

        Returns the number of **existing** pages rewritten — the quantity
        experiment E6 charts.  New-chain allocations are not counted as
        rewrites (they are sequential writes of fresh blocks).
        """
        with self._mutation_lock:
            if new_group is None:
                new_group = self.layout is not LayoutPolicy.ROW
            if self.layout is LayoutPolicy.ROW:
                target_group: Optional[int] = 0 if self.schema.n_groups > 0 else None
                placed = self.schema.add_column(column, group_index=target_group)
            elif self.layout is LayoutPolicy.COLUMN:
                placed = self.schema.add_column(column, new_group=True)
            else:
                placed = self.schema.add_column(
                    column, group_index=group_index, new_group=new_group
                )
            self.access_stats.schema_changes += 1
            self.access_stats.column(column.name)
            default = column.default
            if placed >= len(self._chains):
                # Fresh group: build its chain from scratch; zero rewrites.
                self._chains.append([])
                self._rid_page.append({})
                self._group_ids.append(self._next_gid)
                self._next_gid += 1
                self._group_encoded.append(False)
                self._group_ratio.append(1.0)
                self._group_enc_failed.append(False)
                self._group_plain_pages.append(0)
                for rid in self.rids():
                    self._append_record(placed, rid, (default,))
                return 0
            # Existing group: rewrite every page of that chain (each one
            # routed through the copy-on-write gate so open snapshots keep
            # the narrower pre-change fragments).
            rewritten = 0
            members = self.schema.groups[placed]
            offset = next(
                i
                for i, name in enumerate(members)
                if name.lower() == column.name.lower()
            )
            for page_id in list(self._chains[placed]):
                page = self._writable_page(placed, self.pool.get(page_id))
                self._thaw_page(placed, page)
                page.records = [
                    (rid, fragment[:offset] + (default,) + fragment[offset:])
                    for rid, fragment in page.records
                ]
                page.mark_dirty()
                self._page_meta.pop(page.page_id, None)
                rewritten += 1
            self._reset_group_encoding(placed)
            return rewritten

    def drop_column(self, column_name: str) -> int:
        """Drop a column; returns the number of existing pages rewritten."""
        with self._mutation_lock:
            group_index = self.schema.group_of(column_name)
            self.access_stats.schema_changes += 1
            self.access_stats.columns.pop(column_name.lower(), None)
            dropped_key = column_name.lower()
            self.access_stats.remap_scan_sets(
                lambda names: tuple(name for name in names if name != dropped_key)
            )
            members = self.schema.groups[group_index]
            if len(members) == 1:
                # Sole member: unlink the whole chain, rewrite nothing.
                # Retired (not freed) while snapshots still walk it.
                tag = self._tag(group_index)
                self.schema.drop_column(column_name)
                for page_id in self._chains[group_index]:
                    self._release_page(page_id)
                self._release_tag(tag)
                del self._chains[group_index]
                del self._rid_page[group_index]
                del self._group_ids[group_index]
                del self._group_encoded[group_index]
                del self._group_ratio[group_index]
                del self._group_enc_failed[group_index]
                del self._group_plain_pages[group_index]
                return 0
            offset = next(
                i
                for i, name in enumerate(members)
                if name.lower() == column_name.lower()
            )
            self.schema.drop_column(column_name)
            rewritten = 0
            for page_id in list(self._chains[group_index]):
                page = self._writable_page(group_index, self.pool.get(page_id))
                self._thaw_page(group_index, page)
                page.records = [
                    (rid, fragment[:offset] + fragment[offset + 1 :])
                    for rid, fragment in page.records
                ]
                page.mark_dirty()
                self._page_meta.pop(page.page_id, None)
                rewritten += 1
            self._reset_group_encoding(group_index)
            return rewritten

    def rename_column(self, old: str, new: str) -> None:
        """Metadata-only operation; no pages touched in any layout."""
        with self._mutation_lock:
            self.schema.rename_column(old, new)
            self.access_stats.schema_changes += 1
            moved = self.access_stats.columns.pop(old.lower(), None)
            if moved is not None:
                self.access_stats.columns[new.lower()] = moved
            old_key = old.lower()
            self.access_stats.remap_scan_sets(
                lambda names: tuple(
                    sorted(new.lower() if name == old_key else name for name in names)
                )
                if old_key in names
                else names
            )

    # -- re-partitioning -------------------------------------------------------

    def _column_values(self, column_name: str) -> Dict[int, Any]:
        """rid → value for one column, read chain-sequentially without
        charging workload statistics (migration-internal; caller holds
        the mutation lock via :meth:`restructure`)."""
        group_index = self.schema.group_of(column_name)
        members = self.schema.groups[group_index]
        offset = next(
            i for i, name in enumerate(members) if name.lower() == column_name.lower()
        )
        values: Dict[int, Any] = {}
        for page_id in self._chains[group_index]:
            page = self.pool.get(page_id)
            enc = page.header.get("enc")
            if enc is None:
                for rid, fragment in page.records:
                    values[rid] = fragment[offset]
            else:
                decoded = decode_column(*enc["cols"][offset])
                for rid, value in zip(enc["rids"], decoded):
                    values[rid] = value
        return values

    def _build_chain(
        self,
        members: Sequence[str],
        rid_order: Sequence[int],
        gid: int,
        allocated: List[int],
    ) -> Tuple[List[int], Dict[int, int]]:
        """Materialise a fresh chain for one prospective group.

        Only allocates new pages (recorded in ``allocated`` so a failed
        restructure can release them); never mutates existing chains.
        Caller holds the mutation lock."""
        width = max(1, len(members))
        capacity = max(1, self.pool.page_capacity // width)
        sources = [self._column_values(name) for name in members]
        chain: List[int] = []
        directory: Dict[int, int] = {}
        page = None
        tag = (self.owner, gid)
        for rid in rid_order:
            fragment = tuple(source[rid] for source in sources)
            if page is None or page.n_records >= capacity:
                page = self._new_page(tag)
                chain.append(page.page_id)
                allocated.append(page.page_id)
            page.records.append((rid, fragment))
            page.mark_dirty()
            directory[rid] = page.page_id
        return chain, directory

    def restructure(self, target_groups: Sequence[Sequence[str]]) -> int:
        """Re-partition into ``target_groups``, rebuilding only the groups
        whose member list actually changes; returns new pages written.

        **Build-then-swap-then-retire**, all under the mutation lock:
        every replacement chain is fully materialised through the buffer
        pool *before* the schema and chain directory are swapped.  An
        exception at any point (bad grouping discovered late, allocation
        failure, crash injection) leaves the store exactly as it was —
        the crash hole the old free-then-rebuild ``compact_groups`` had.
        Old pages are *retired* after the swap: freed immediately when no
        snapshot is open, otherwise kept alive until the last snapshot
        whose epoch can see them is released, so concurrent scans finish
        against the pre-migration chains.
        """
        with self._mutation_lock:
            targets = [list(group) for group in target_groups if group]
            flat = [name.lower() for group in targets for name in group]
            expected = sorted(name.lower() for name in self.schema.column_names)
            if sorted(flat) != expected:
                raise SchemaError(
                    "target groups must cover exactly the current columns"
                )
            old_keys = {
                tuple(name.lower() for name in group): index
                for index, group in enumerate(self.schema.groups)
            }
            rid_order = self.rids()
            built: List[Optional[Tuple[List[int], Dict[int, int], int]]] = []
            reused: List[Optional[int]] = []
            allocated: List[int] = []
            pages_written = 0
            try:
                for members in targets:
                    key = tuple(name.lower() for name in members)
                    old_index = old_keys.get(key)
                    if old_index is not None:
                        reused.append(old_index)
                        built.append(None)
                        continue
                    reused.append(None)
                    gid = self._next_gid
                    self._next_gid += 1
                    chain, directory = self._build_chain(
                        members, rid_order, gid, allocated
                    )
                    built.append((chain, directory, gid))
                    pages_written += len(chain)
            except BaseException:
                for page_id in allocated:
                    # Freshly allocated under the lock: no snapshot can
                    # reference them, so _release_page frees immediately.
                    self._release_page(page_id)
                raise
            # Swap: from here on nothing can fail.
            old_chains = self._chains
            old_rid_page = self._rid_page
            old_gids = self._group_ids
            old_encoded = self._group_encoded
            old_ratio = self._group_ratio
            old_failed = self._group_enc_failed
            old_plain = self._group_plain_pages
            self.schema.set_groups(targets)
            self._chains, self._rid_page, self._group_ids = [], [], []
            self._group_encoded, self._group_ratio = [], []
            self._group_enc_failed, self._group_plain_pages = [], []
            kept = set()
            for index in range(len(targets)):
                old_index = reused[index]
                if old_index is not None:
                    kept.add(old_index)
                    self._chains.append(old_chains[old_index])
                    self._rid_page.append(old_rid_page[old_index])
                    self._group_ids.append(old_gids[old_index])
                    self._group_encoded.append(old_encoded[old_index])
                    self._group_ratio.append(old_ratio[old_index])
                    self._group_enc_failed.append(old_failed[old_index])
                    self._group_plain_pages.append(old_plain[old_index])
                else:
                    chain, directory, gid = built[index]  # type: ignore[misc]
                    self._chains.append(chain)
                    self._rid_page.append(directory)
                    self._group_ids.append(gid)
                    self._group_encoded.append(False)
                    self._group_ratio.append(1.0)
                    self._group_enc_failed.append(False)
                    self._group_plain_pages.append(len(chain))
            # Retire: the old layout's pages, now unreachable from the
            # live directory, and the dead groups' I/O counters
            # (migrations mint fresh group ids, so stale tags would
            # otherwise accumulate forever).  Open snapshots keep both
            # alive until released.
            for old_index, chain in enumerate(old_chains):
                if old_index not in kept:
                    for page_id in chain:
                        self._release_page(page_id)
                    self._release_tag((self.owner, old_gids[old_index]))
            return pages_written

    def compact_groups(self, target_groups: Sequence[Sequence[str]]) -> int:
        """Physically re-partition the table into ``target_groups``.

        The offline maintenance operation that amortises many cheap ADD
        COLUMNs (see the hybrid-store ablation in DESIGN.md §5); returns
        the page count of the new layout.  Crash-safe: delegates to
        :meth:`restructure`, which builds new chains before freeing old
        ones.  For *online* re-partitioning one group at a time, see
        :class:`repro.engine.layout.LayoutMigration`.
        """
        self.restructure(target_groups)
        return self.n_pages

    # -- page encodings ------------------------------------------------------

    def _reset_group_encoding(self, group_index: int) -> None:
        """Forget one group's encoding state after a plain rewrite."""
        self._group_encoded[group_index] = False
        self._group_ratio[group_index] = 1.0
        self._group_enc_failed[group_index] = False
        self._group_plain_pages[group_index] = len(self._chains[group_index])

    def group_encoded(self, group_index: int) -> bool:
        return self._group_encoded[group_index]

    def group_encoding_ratio(self, group_index: int) -> float:
        return self._group_ratio[group_index]

    @property
    def encoded_group_count(self) -> int:
        return sum(1 for encoded in self._group_encoded if encoded)

    def encode_group(self, group_index: int) -> int:
        """Rewrite one group's chain with per-column page encodings.

        Picks the smallest of plain/packed/dict/rle per column over the
        whole chain (:func:`repro.engine.encoding.choose_encoding`), then
        rebuilds the chain with each page holding ``capacity × ratio``
        records — the byte savings become *block* savings, which is what
        the pager counts.  Build-then-swap like :meth:`restructure`.
        Returns the new chain's page count, or 0 when the group does not
        compress (remembered, so maintenance stops retrying)."""
        with self._mutation_lock:
            members = self.schema.groups[group_index]
            width = max(1, len(members))
            rid_list: List[int] = []
            columns: List[List[Any]] = [[] for _ in range(width)]
            for page_id in self._chains[group_index]:
                page = self.pool.get(page_id)
                enc = page.header.get("enc")
                if enc is None:
                    for rid, fragment in page.records:
                        rid_list.append(rid)
                        for offset in range(width):
                            columns[offset].append(fragment[offset])
                else:
                    rid_list.extend(enc["rids"])
                    for offset in range(width):
                        columns[offset].extend(decode_column(*enc["cols"][offset]))
            n = len(rid_list)
            if n == 0:
                self._group_enc_failed[group_index] = True
                return 0
            kinds: List[str] = []
            encoded_bytes = 0
            for offset in range(width):
                kind, size = choose_encoding(columns[offset])
                kinds.append(kind)
                encoded_bytes += size
            plain_bytes = n * width * PLAIN_VALUE_BYTES
            ratio = plain_bytes / max(1, encoded_bytes)
            if ratio <= 1.05:
                self._group_enc_failed[group_index] = True
                return 0
            capacity = self._group_capacity(group_index)
            per_page = max(capacity, int(capacity * ratio))
            tag = self._tag(group_index)
            chain: List[int] = []
            directory: Dict[int, int] = {}
            allocated: List[int] = []
            try:
                for start in range(0, n, per_page):
                    stop = min(n, start + per_page)
                    page = self._new_page(tag)
                    allocated.append(page.page_id)
                    chain.append(page.page_id)
                    page_rids = rid_list[start:stop]
                    cols: List[Tuple[str, Any]] = []
                    col_bytes: List[int] = []
                    total = 0
                    for offset in range(width):
                        payload = encode_column(
                            columns[offset][start:stop], kinds[offset]
                        )
                        size = encoded_size(stop - start, kinds[offset], payload)
                        cols.append((kinds[offset], payload))
                        col_bytes.append(size)
                        total += size
                    page.header["enc"] = {
                        "rids": page_rids,
                        "cols": cols,
                        "col_bytes": col_bytes,
                        "bytes": total,
                        "plain_bytes": (stop - start) * width * PLAIN_VALUE_BYTES,
                    }
                    page.mark_dirty()
                    # The column slices are in hand: compute zone maps
                    # eagerly so the encoded chain skips on its first scan.
                    self._page_meta[page.page_id] = (
                        stop - start,
                        {
                            offset: _zone_of(columns[offset][start:stop])
                            for offset in range(width)
                        },
                    )
                    self.pool.add_bytes(tag, bytes_written=total)
                    for rid in page_rids:
                        directory[rid] = page.page_id
            except BaseException:
                for page_id in allocated:
                    self._release_page(page_id)
                raise
            # Swap in the encoded chain; the plain one is retired for any
            # open snapshot still streaming it.
            for page_id in self._chains[group_index]:
                self._release_page(page_id)
            self._chains[group_index] = chain
            self._rid_page[group_index] = directory
            self._group_encoded[group_index] = True
            self._group_ratio[group_index] = ratio
            self._group_enc_failed[group_index] = False
            self._group_plain_pages[group_index] = 0
            return len(chain)

    def encoding_tick(
        self, min_scans: int = 8, min_pages: int = 2
    ) -> List[Tuple[int, float]]:
        """Maintenance pass: encode the chains the workload scans.

        A group qualifies when its members have accumulated ``min_scans``
        scans and its chain has at least ``min_pages`` plain pages (an
        encoded chain re-qualifies once its plain tail grows back).
        Returns ``(group_index, ratio)`` for every group encoded."""
        encoded: List[Tuple[int, float]] = []
        with self._mutation_lock:
            for group_index, members in enumerate(self.schema.groups):
                if self._group_enc_failed[group_index]:
                    continue
                if self._group_plain_pages[group_index] < min_pages:
                    continue
                scans = sum(
                    self.access_stats.column(name).scans for name in members
                ) + self.access_stats.full_scans
                if scans < min_scans:
                    continue
                if self.encode_group(group_index):
                    encoded.append((group_index, self._group_ratio[group_index]))
        return encoded

    def column_encoding_ratios(self) -> Dict[str, float]:
        """Lower-cased column name → measured compression ratio for every
        column living in an encoded group (the cost model's discount)."""
        ratios: Dict[str, float] = {}
        for group_index, members in enumerate(self.schema.groups):
            if not self._group_encoded[group_index]:
                continue
            for name in members:
                ratios[name.lower()] = self._group_ratio[group_index]
        return ratios

    def encoding_snapshot(self) -> List[Dict[str, Any]]:
        """Per-group encoding state, in group order, for persistence."""
        return [
            {
                "encoded": self._group_encoded[index],
                "ratio": self._group_ratio[index],
                "failed": self._group_enc_failed[index],
            }
            for index in range(self.n_groups)
        ]

    def restore_encodings(self, payloads: Sequence[Dict[str, Any]]) -> None:
        """Re-establish persisted encoding state after a load.

        Snapshots persist *rows*, so the loader re-inserts plain pages;
        re-encoding the flagged groups here restores the physical layout
        (call before :meth:`restore_group_io` so the pre-crash counters
        overwrite the re-encode burst)."""
        for group_index, payload in enumerate(payloads[: self.n_groups]):
            if payload.get("encoded"):
                self.encode_group(group_index)
            elif payload.get("failed"):
                self._group_enc_failed[group_index] = True

    def covering_io_snapshot(self, column_names: Sequence[str]) -> IOStats:
        """Aggregated cumulative I/O of the groups covering a column set.

        The trace instrumentation snapshots this before and after a
        projected scan: the delta is the block I/O the scan charged to
        exactly the page chains it was allowed to touch."""
        groups = sorted({self.schema.group_of(name) for name in column_names})
        total = IOStats()
        for group_index in groups:
            stats = self.group_io_stats(group_index)
            total.reads += stats.reads
            total.writes += stats.writes
            total.allocations += stats.allocations
            total.frees += stats.frees
            total.bytes_read += stats.bytes_read
            total.bytes_written += stats.bytes_written
        return total

    def group_io_snapshot(self) -> List[Dict[str, int]]:
        """Cumulative per-group I/O counters, in group order — what the
        persistence layer carries so the ``stats`` surface survives a
        restart (pager tags are process-local and rebuilt on load)."""
        return [
            {
                "reads": stats.reads,
                "writes": stats.writes,
                "allocations": stats.allocations,
                "frees": stats.frees,
                "bytes_read": stats.bytes_read,
                "bytes_written": stats.bytes_written,
            }
            for stats in (
                self.group_io_stats(index) for index in range(self.n_groups)
            )
        ]

    def restore_group_io(self, payloads: Sequence[Dict[str, int]]) -> None:
        """Overwrite the live per-group I/O counters with persisted ones.

        Called after a load's row inserts, so the restart-time page
        allocations are *replaced* by the pre-crash cumulative counters
        rather than stacked on top of them.  Extra/missing entries (the
        grouping changed between snapshot and load — should not happen,
        but a truncated payload must not corrupt the store) are ignored.
        """
        for group_index, payload in enumerate(payloads[: self.n_groups]):
            self.pool.set_tag_stats(
                self._tag(group_index),
                IOStats(
                    reads=int(payload.get("reads", 0)),
                    writes=int(payload.get("writes", 0)),
                    allocations=int(payload.get("allocations", 0)),
                    frees=int(payload.get("frees", 0)),
                    bytes_read=int(payload.get("bytes_read", 0)),
                    bytes_written=int(payload.get("bytes_written", 0)),
                ),
            )

    def group_skip_stats(self, group_index: int) -> Dict[str, Any]:
        """One group's cumulative data-skipping counters: pages skipped,
        pages decoded, and the resulting skip ratio."""
        gid = self._group_ids[group_index]
        skipped = self._group_pages_skipped.get(gid, 0)
        scanned = self._group_pages_scanned.get(gid, 0)
        total = skipped + scanned
        return {
            "pages_skipped": skipped,
            "pages_scanned": scanned,
            "skip_ratio": round(skipped / total, 3) if total else 0.0,
        }

    def group_summary(self) -> List[dict]:
        """Per-group statistics (columns, pages, cumulative block I/O)."""
        return [
            {
                "group": index,
                "group_id": self._group_ids[index],
                "columns": list(members),
                "pages": self.pages_in_group(index),
                "encoded": self._group_encoded[index],
                "ratio": round(self._group_ratio[index], 2),
                "zones": round(self.zone_coverage(index), 2),
                "skip": self.group_skip_stats(index),
                "io": {
                    "reads": self.group_io_stats(index).reads,
                    "writes": self.group_io_stats(index).writes,
                    "bytes_read": self.group_io_stats(index).bytes_read,
                },
            }
            for index, members in enumerate(self.schema.groups)
        ]

    # -- maintenance ---------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush dirty buffered pages to the simulated disk; returns the
        number of blocks written (what E6 measures)."""
        return self.pool.flush_all()

    def validate(self) -> None:
        """Internal consistency check used by property-based tests."""
        with self._mutation_lock:
            self._validate_locked()

    def _validate_locked(self) -> None:
        """Body of :meth:`validate`; mutation lock held."""
        if len(self._chains) != self.schema.n_groups:
            raise StorageError("chain count does not match schema groups")
        if len(self._group_ids) != len(self._chains):
            raise StorageError("group id directory does not match chains")
        counts = set()
        for group_index, chain in enumerate(self._chains):
            width = len(self.schema.groups[group_index])
            seen = 0
            for page_id in chain:
                page = self.pool.get(page_id)
                enc = page.header.get("enc")
                if enc is not None:
                    if page.records:
                        raise StorageError("encoded page still holds plain records")
                    if len(enc["cols"]) != width:
                        raise StorageError("encoded column count mismatch")
                    for rid in enc["rids"]:
                        if self._rid_page[group_index].get(rid) != page_id:
                            raise StorageError(f"directory mismatch for rid {rid}")
                        seen += 1
                    for kind, payload in enc["cols"]:
                        if len(decode_column(kind, payload)) != len(enc["rids"]):
                            raise StorageError("encoded column length mismatch")
                    continue
                for rid, fragment in page.records:
                    if self._rid_page[group_index].get(rid) != page_id:
                        raise StorageError(f"directory mismatch for rid {rid}")
                    if len(fragment) != width:
                        raise StorageError("fragment width mismatch")
                    seen += 1
            counts.add(seen)
        if len(counts) > 1:
            raise StorageError(f"groups disagree on row count: {counts}")
        if counts and counts.pop() != self._n_rows:
            raise StorageError("row count drifted")
