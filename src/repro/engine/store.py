"""The grouped tuple store — common machinery for all three layouts.

Paper §3, *Relational Storage Manager*: "the relational storage manager uses
a hybrid of column-store and row-store to physically store the table.  Here,
data is structured along a collection of attribute groups, thereby radically
reducing the disk blocks that need an update during a schema change."

:class:`GroupedTupleStore` materialises **one page chain per attribute
group**; each page holds ``(rid, fragment)`` records where the fragment is
the tuple of that group's column values.  The three layouts are then just
grouping policies:

* ``ROW``    — a single group holding every column (classic heap file);
  ``ADD COLUMN`` must rewrite *every* page,
* ``COLUMN`` — one group per column; ``ADD COLUMN`` allocates a fresh chain
  and rewrites nothing, but every tuple operation touches one page per
  column,
* ``HYBRID`` — the paper's design: arbitrary groups; new columns go into a
  new group by default (zero rewrites) and can later be co-located.

Records are addressed by a store-assigned **rid** that never changes; the
positional order of a table lives in the positional index
(:mod:`repro.index.positional`), not in the store.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.pager import BufferPool, DEFAULT_PAGE_CAPACITY
from repro.engine.schema import Column, TableSchema
from repro.errors import SchemaError, StorageError

__all__ = ["LayoutPolicy", "GroupedTupleStore"]


class LayoutPolicy(Enum):
    """Physical layout policy applied to the schema's attribute groups."""

    ROW = "row"
    COLUMN = "column"
    HYBRID = "hybrid"


class GroupedTupleStore:
    """rid-addressed tuple storage partitioned into attribute-group chains."""

    def __init__(
        self,
        schema: TableSchema,
        pool: Optional[BufferPool] = None,
        layout: LayoutPolicy = LayoutPolicy.HYBRID,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        self.schema = schema
        self.layout = layout
        self.pool = pool if pool is not None else BufferPool(page_capacity=page_capacity)
        if layout is LayoutPolicy.ROW:
            schema.set_groups([schema.column_names])
        elif layout is LayoutPolicy.COLUMN:
            schema.set_groups([[name] for name in schema.column_names])
        # HYBRID keeps whatever grouping the schema was built with.
        self._chains: List[List[int]] = [[] for _ in range(schema.n_groups)]
        self._rid_page: List[Dict[int, int]] = [{} for _ in range(schema.n_groups)]
        self._next_rid = 0
        self._n_rows = 0

    # -- basic properties --------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_groups(self) -> int:
        return len(self._chains)

    def pages_in_group(self, group_index: int) -> int:
        return len(self._chains[group_index])

    @property
    def n_pages(self) -> int:
        return sum(len(chain) for chain in self._chains)

    def rids(self) -> List[int]:
        """All live rids, in insertion order of their first group."""
        if not self._rid_page:
            return []
        result: List[int] = []
        for page_id in self._chains[0]:
            page = self.pool.get(page_id)
            result.extend(rid for rid, _ in page.records)
        return result

    # -- internal page helpers ---------------------------------------------

    def _group_capacity(self, group_index: int) -> int:
        """Records per page for one group's chain.

        ``page_capacity`` is a *value* budget per block (standing in for the
        byte budget of a real 8 KB page), so narrow fragments pack more
        records per block — the physical effect that makes the hybrid
        store's fresh-chain ADD COLUMN cheap in blocks, not just in
        rewrites."""
        width = max(1, len(self.schema.groups[group_index]))
        return max(1, self.pool.page_capacity // width)

    def _append_record(self, group_index: int, rid: int, fragment: Tuple[Any, ...]) -> None:
        chain = self._chains[group_index]
        page = None
        if chain:
            last = self.pool.get(chain[-1])
            if last.n_records < self._group_capacity(group_index):
                page = last
        if page is None:
            page = self.pool.new_page()
            chain.append(page.page_id)
        page.records.append((rid, fragment))
        page.mark_dirty()
        self._rid_page[group_index][rid] = page.page_id

    def _find_slot(self, group_index: int, rid: int) -> Tuple[Any, int]:
        page_id = self._rid_page[group_index].get(rid)
        if page_id is None:
            raise StorageError(f"rid {rid} not found in group {group_index}")
        page = self.pool.get(page_id)
        for slot, (record_rid, _) in enumerate(page.records):
            if record_rid == rid:
                return page, slot
        raise StorageError(f"rid {rid} missing from page {page_id} (corrupt directory)")

    # -- tuple operations ---------------------------------------------------

    def insert(self, row: Sequence[Any], rid: Optional[int] = None) -> int:
        """Append a logical row; returns its rid.

        Passing ``rid`` restores a previously-deleted record id — used by
        transaction rollback so later undo entries that captured the old
        rid stay valid."""
        fragments = self.schema.split_row(tuple(row))
        if rid is not None:
            if self.exists(rid):
                raise StorageError(f"rid {rid} is already live")
            self._next_rid = max(self._next_rid, rid + 1)
        else:
            rid = self._next_rid
            self._next_rid += 1
        for group_index, fragment in enumerate(fragments):
            self._append_record(group_index, rid, fragment)
        self._n_rows += 1
        return rid

    def get(self, rid: int) -> Tuple[Any, ...]:
        fragments = []
        for group_index in range(self.n_groups):
            page, slot = self._find_slot(group_index, rid)
            fragments.append(page.records[slot][1])
        return self.schema.join_fragments(fragments)

    def exists(self, rid: int) -> bool:
        return bool(self._rid_page) and rid in self._rid_page[0]

    def update(self, rid: int, row: Sequence[Any]) -> None:
        fragments = self.schema.split_row(tuple(row))
        for group_index, fragment in enumerate(fragments):
            page, slot = self._find_slot(group_index, rid)
            page.records[slot] = (rid, fragment)
            page.mark_dirty()

    def update_column(self, rid: int, column_name: str, value: Any) -> None:
        """Partial update touching only the column's own group — the
        tuple-update cost the paper wants schema changes to match."""
        group_index = self.schema.group_of(column_name)
        members = self.schema.groups[group_index]
        offset = next(
            i for i, name in enumerate(members) if name.lower() == column_name.lower()
        )
        page, slot = self._find_slot(group_index, rid)
        old_rid, fragment = page.records[slot]
        new_fragment = tuple(
            value if i == offset else item for i, item in enumerate(fragment)
        )
        page.records[slot] = (old_rid, new_fragment)
        page.mark_dirty()

    def delete(self, rid: int) -> None:
        for group_index in range(self.n_groups):
            page, slot = self._find_slot(group_index, rid)
            del page.records[slot]
            page.mark_dirty()
            del self._rid_page[group_index][rid]
        self._n_rows -= 1

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield ``(rid, row)`` in heap order of the first group's chain."""
        for rid in self.rids():
            yield rid, self.get(rid)

    def scan_column(self, column_name: str) -> Iterator[Tuple[int, Any]]:
        """Column scan touching only that column's group chain."""
        group_index = self.schema.group_of(column_name)
        members = self.schema.groups[group_index]
        offset = next(
            i for i, name in enumerate(members) if name.lower() == column_name.lower()
        )
        for page_id in self._chains[group_index]:
            page = self.pool.get(page_id)
            for rid, fragment in page.records:
                yield rid, fragment[offset]

    # -- schema evolution ----------------------------------------------------

    def add_column(
        self,
        column: Column,
        group_index: Optional[int] = None,
        new_group: Optional[bool] = None,
    ) -> int:
        """Add a column, placing it physically per the layout policy.

        Returns the number of **existing** pages rewritten — the quantity
        experiment E6 charts.  New-chain allocations are not counted as
        rewrites (they are sequential writes of fresh blocks).
        """
        if new_group is None:
            new_group = self.layout is not LayoutPolicy.ROW
        if self.layout is LayoutPolicy.ROW:
            target_group: Optional[int] = 0 if self.schema.n_groups > 0 else None
            placed = self.schema.add_column(column, group_index=target_group)
        elif self.layout is LayoutPolicy.COLUMN:
            placed = self.schema.add_column(column, new_group=True)
        else:
            placed = self.schema.add_column(column, group_index=group_index, new_group=new_group)
        default = column.default
        if placed >= len(self._chains):
            # Fresh group: build its chain from scratch; zero rewrites.
            self._chains.append([])
            self._rid_page.append({})
            for rid in self.rids():
                self._append_record(placed, rid, (default,))
            return 0
        # Existing group: rewrite every page of that chain in place.
        rewritten = 0
        members = self.schema.groups[placed]
        offset = next(
            i for i, name in enumerate(members) if name.lower() == column.name.lower()
        )
        for page_id in self._chains[placed]:
            page = self.pool.get(page_id)
            page.records = [
                (rid, fragment[:offset] + (default,) + fragment[offset:])
                for rid, fragment in page.records
            ]
            page.mark_dirty()
            rewritten += 1
        return rewritten

    def drop_column(self, column_name: str) -> int:
        """Drop a column; returns the number of existing pages rewritten."""
        group_index = self.schema.group_of(column_name)
        members = self.schema.groups[group_index]
        if len(members) == 1:
            # Sole member: free the whole chain, rewrite nothing.
            self.schema.drop_column(column_name)
            for page_id in self._chains[group_index]:
                self.pool.free_page(page_id)
            del self._chains[group_index]
            del self._rid_page[group_index]
            return 0
        offset = next(
            i for i, name in enumerate(members) if name.lower() == column_name.lower()
        )
        self.schema.drop_column(column_name)
        rewritten = 0
        for page_id in self._chains[group_index]:
            page = self.pool.get(page_id)
            page.records = [
                (rid, fragment[:offset] + fragment[offset + 1 :])
                for rid, fragment in page.records
            ]
            page.mark_dirty()
            rewritten += 1
        return rewritten

    def rename_column(self, old: str, new: str) -> None:
        """Metadata-only operation; no pages touched in any layout."""
        self.schema.rename_column(old, new)

    # -- re-partitioning -------------------------------------------------------

    def compact_groups(self, target_groups: Sequence[Sequence[str]]) -> int:
        """Physically re-partition the table into ``target_groups``.

        Rebuilds every chain — the expensive, off-line operation that
        amortises many cheap ADD COLUMNs (see the hybrid-store ablation in
        DESIGN.md §5); returns the page count of the new layout.
        """
        flat = [name.lower() for group in target_groups for name in group]
        expected = sorted(name.lower() for name in self.schema.column_names)
        if sorted(flat) != expected:
            raise SchemaError("target groups must cover exactly the current columns")
        rows = [(rid, self.get(rid)) for rid in self.rids()]
        for chain in self._chains:
            for page_id in chain:
                self.pool.free_page(page_id)
        self.schema.set_groups(target_groups)
        self._chains = [[] for _ in range(self.schema.n_groups)]
        self._rid_page = [{} for _ in range(self.schema.n_groups)]
        for rid, row in rows:
            for group_index, fragment in enumerate(self.schema.split_row(row)):
                self._append_record(group_index, rid, fragment)
        return self.n_pages

    def group_summary(self) -> List[dict]:
        """Per-group statistics (columns, pages)."""
        return [
            {
                "group": index,
                "columns": list(members),
                "pages": self.pages_in_group(index),
            }
            for index, members in enumerate(self.schema.groups)
        ]

    # -- maintenance ---------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush dirty buffered pages to the simulated disk; returns the
        number of blocks written (what E6 measures)."""
        return self.pool.flush_all()

    def validate(self) -> None:
        """Internal consistency check used by property-based tests."""
        if len(self._chains) != self.schema.n_groups:
            raise StorageError("chain count does not match schema groups")
        counts = set()
        for group_index, chain in enumerate(self._chains):
            seen = 0
            for page_id in chain:
                page = self.pool.get(page_id)
                for rid, fragment in page.records:
                    if self._rid_page[group_index].get(rid) != page_id:
                        raise StorageError(f"directory mismatch for rid {rid}")
                    if len(fragment) != len(self.schema.groups[group_index]):
                        raise StorageError("fragment width mismatch")
                    seen += 1
            counts.add(seen)
        if len(counts) > 1:
            raise StorageError(f"groups disagree on row count: {counts}")
        if counts and counts.pop() != self._n_rows:
            raise StorageError("row count drifted")
