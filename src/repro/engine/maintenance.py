"""Background maintenance worker: the control side of HTAP isolation.

The storage layer gives readers snapshot isolation (immutable
:class:`~repro.engine.store.StoreSnapshot` views, copy-on-write pages,
epoch-based reclamation); this module moves the *maintenance* work —
budgeted ``layout_tick`` restructure steps, ``encoding_tick`` passes,
snapshot compaction — off the apply path onto a dedicated thread, the
Polynesia-style separation the ROADMAP's HTAP item calls for: one long
analytical migration step no longer stalls every editor session, because
the apply path only *wakes* the worker instead of running the beat
itself.

Design constraints the implementation encodes:

* **Wake-driven, not polling.**  With ``interval=None`` (the default)
  the thread sleeps on an event until an owner calls :meth:`wake` — an
  idle database costs nothing.  A numeric interval adds a periodic
  heartbeat on top (a server that wants progress with zero traffic).
* **Beats are serialised.**  One beat runs at a time, under
  ``_beat_lock``; :meth:`pause` blocks until any in-flight beat
  finishes, so "paused" means *nothing is running*, not "nothing new
  starts".
* **The owner may die first.**  The beat callable is held through a
  :class:`weakref.WeakMethod` when it is a bound method, so a collected
  Database ends its worker instead of being kept alive by it.
* **Crashes are data.**  A beat that raises is counted, recorded as a
  ``maintenance_error`` event, and the loop keeps going — background
  maintenance must degrade, never take the process down.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Any, Callable, Optional

__all__ = ["MaintenanceWorker"]


class MaintenanceWorker:
    """Owns the maintenance beat on a daemon thread.

    ``beat`` is a zero-argument callable doing one *bounded* unit of
    maintenance and returning truthy while more work remains — the
    worker beats again immediately (yielding ``backoff`` seconds so
    concurrent appliers interleave) and goes back to sleep once the beat
    reports quiescence.

    ``events`` (a :class:`repro.obs.EventLog`) receives
    ``maintenance_pause`` / ``maintenance_resume`` / ``maintenance_drain``
    / ``maintenance_error`` records; ``histogram`` (a
    :class:`repro.obs.Histogram`) observes per-beat latency.  Both are
    optional."""

    def __init__(
        self,
        beat: Callable[[], Any],
        interval: Optional[float] = None,
        name: str = "repro-maintenance",
        events: Any = None,
        histogram: Any = None,
        backoff: float = 0.001,
    ):
        # A bound method would keep its owner (the Database/service)
        # alive forever through this long-lived thread; hold it weakly
        # and exit the loop when the owner is gone.
        if hasattr(beat, "__self__"):
            self._beat_ref: Callable[[], Optional[Callable[[], Any]]] = (
                weakref.WeakMethod(beat)
            )
        else:
            self._beat_ref = lambda: beat
        self.interval = interval
        self.name = name
        self.backoff = backoff
        self._events = events
        self._histogram = histogram
        self._thread: Optional[threading.Thread] = None
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._paused = False
        # Held for the duration of every beat (worker- or drain-driven);
        # pause()/drain() serialise against in-flight work through it.
        self._beat_lock = threading.RLock()
        self.beats = 0
        self.errors = 0
        self.last_error: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def paused(self) -> bool:
        return self._paused

    def start(self) -> "MaintenanceWorker":
        """Start the worker thread; idempotent."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the thread (idempotent).  With ``drain=True`` (clean
        shutdown) remaining work is then run to quiescence on the
        caller's thread; ``drain=False`` models a crash — an in-flight
        step still completes (beats are atomic under the lock) but
        pending work is abandoned for recovery to resume."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            if thread is not threading.current_thread():
                thread.join(timeout=timeout)
        self._thread = None
        if drain:
            self.drain()

    # -- control ------------------------------------------------------------

    def wake(self) -> None:
        """Nudge the worker: there may be work (cheap, lock-free)."""
        self._wake.set()

    def pause(self) -> None:
        """Suspend beating; returns only once no beat is in flight."""
        with self._beat_lock:
            if not self._paused:
                self._paused = True
                if self._events is not None:
                    self._events.record("maintenance_pause", worker=self.name)

    def resume(self) -> None:
        """Lift a pause and wake the worker to catch up."""
        if self._paused:
            self._paused = False
            if self._events is not None:
                self._events.record("maintenance_resume", worker=self.name)
            self._wake.set()

    def drain(self, max_beats: int = 10_000) -> int:
        """Run the remaining maintenance to quiescence on the *caller's*
        thread (serialised with the worker via the beat lock); returns
        beats run.  The shutdown and barrier primitive: after drain()
        there is no deferred maintenance left to lose."""
        count = 0
        with self._beat_lock:
            beat = self._beat_ref()
            if beat is not None:
                for _ in range(max_beats):
                    if not self._observed_beat(beat):
                        break
                    count += 1
            if self._events is not None:
                self._events.record(
                    "maintenance_drain", worker=self.name, beats=count
                )
        return count

    # -- the loop -----------------------------------------------------------

    def _observed_beat(self, beat: Callable[[], Any]) -> Any:
        """Run one beat under the lock, timed and error-isolated."""
        with self._beat_lock:
            started = time.perf_counter()
            try:
                did_work = beat()
            except Exception as error:
                self.errors += 1
                self.last_error = repr(error)
                if self._events is not None:
                    self._events.record(
                        "maintenance_error", worker=self.name, error=repr(error)
                    )
                return False
            self.beats += 1
            if self._histogram is not None:
                self._histogram.observe(time.perf_counter() - started)
            return did_work

    def _run(self) -> None:
        while not self._stop.is_set():
            fired = self._wake.wait(self.interval)
            if fired:
                self._wake.clear()
            if self._stop.is_set():
                break
            beat = self._beat_ref()
            if beat is None:
                break  # the owner was garbage-collected
            with self._beat_lock:
                # Re-checked under the lock: a pause() that won the lock
                # first must not be followed by one more beat.
                did_work = False if self._paused else self._observed_beat(beat)
            if did_work:
                # More work remains (e.g. a multi-step migration): keep
                # beating without waiting for another wake, but yield the
                # GIL so concurrent applies keep their latency.
                self._wake.set()
                if self.backoff:
                    time.sleep(self.backoff)
