"""Row store: the classic heap-file layout (one attribute group).

This is the *baseline* layout for experiment E6: a schema change must
rewrite every page of the table, because every page holds full-width rows.
Tuple operations are cheapest here — one page touched per insert/update.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.pager import BufferPool, DEFAULT_PAGE_CAPACITY
from repro.engine.schema import TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy

__all__ = ["RowStore"]


class RowStore(GroupedTupleStore):
    """All columns in a single attribute group."""

    def __init__(
        self,
        schema: TableSchema,
        pool: Optional[BufferPool] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        super().__init__(schema, pool, LayoutPolicy.ROW, page_capacity)
