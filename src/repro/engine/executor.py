"""Pull-based query execution operators.

The planner (:mod:`repro.engine.planner`) assembles these nodes into a tree;
``run(ctx)`` streams result tuples.  Each node tracks ``rows_out`` so tests
and benchmarks can assert *logical* work (e.g. E10's one-pass claim: a DBSQL
spill of 100 rows runs one plan, not 100).

Operator inventory: projected scan (column-set-aware table scan with
pushed predicates, in presentation order via the positional index; the
legacy full-width ``SeqScan`` is the degenerate all-columns case), values
scan (``RANGETABLE`` data and VALUES lists), filter, project, nested-loop
join, hash join (equi-joins, inner/left), aggregate (hash grouping),
distinct, sort, limit/offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine import sql_ast as ast
from repro.engine.expr import Scope, compile_batch_predicate, extract_sargable_ranges
from repro.engine.functions import Aggregator, make_aggregate
from repro.engine.store import DEFAULT_BATCH_SIZE
from repro.engine.table import Table, TableIndex
from repro.engine.types import compare_values
from repro.errors import ExecutionError

__all__ = [
    "ExecContext",
    "PlanNode",
    "ProjectedScan",
    "IndexScan",
    "SeqScan",
    "ValuesScan",
    "FilterNode",
    "ProjectNode",
    "NestedLoopJoin",
    "HashJoin",
    "AggregateNode",
    "DistinctNode",
    "SortNode",
    "LimitNode",
]

RowFn = Callable[[Tuple[Any, ...], Sequence[Any]], Any]


@dataclass
class ExecContext:
    """Per-execution state threaded through the operator tree."""

    params: Sequence[Any] = ()


class PlanNode:
    """Base operator: output columns + streaming execution."""

    def __init__(self, columns: Sequence[Tuple[Optional[str], str]]):
        self.columns = list(columns)
        self.scope = Scope(self.columns)
        self.rows_out = 0

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> List["PlanNode"]:
        return []

    def _count(self, rows: Iterator[Tuple[Any, ...]]) -> Iterator[Tuple[Any, ...]]:
        for row in rows:
            self.rows_out += 1
            yield row

    # -- introspection ----------------------------------------------------

    def label(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        lines = ["  " * depth + self.label()]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def counters(self) -> Dict[str, Any]:
        """Per-node work counters for the trace annotation tree."""
        return {"rows_out": self.rows_out}

    def total_rows_processed(self) -> int:
        return self.rows_out + sum(c.total_rows_processed() for c in self.children())


class ProjectedScan(PlanNode):
    """Column-set-aware table scan in presentation (positional) order.

    The planner computes each table's *required* column set (SELECT list
    + WHERE conjuncts + join keys, post-pushdown) and the scan touches
    only the page chains covering that set — the refactor that lets the
    hybrid attribute-group store actually reduce the blocks a SQL query
    reads.  Pushed predicates (``add_predicate``) are evaluated on the
    narrow fragments *before* a row is emitted, so ``rows_out`` counts
    surviving rows; ``rows_scanned`` counts rows examined and
    ``cols_read`` the width of the set, letting tests assert logical
    work.  ``column_names=None`` scans every column (the legacy
    ``SeqScan`` behaviour).
    """

    def __init__(
        self,
        table: Table,
        binding: str,
        column_names: Optional[Sequence[str]] = None,
        vectorized: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        data_skipping: bool = True,
    ):
        names = (
            list(table.column_names) if column_names is None else list(column_names)
        )
        super().__init__([(binding, name) for name in names])
        self.table = table
        self.binding = binding
        self.column_names = names
        # (row_fn, description, ast_or_None); the AST is kept so run() can
        # recompile pushed conjuncts into whole-batch selection functions.
        self.predicates: List[Tuple[RowFn, str, Optional[Any]]] = []
        self.vectorized = vectorized
        self.batch_size = batch_size
        self.data_skipping = data_skipping
        self.rows_scanned = 0
        self.batches = 0
        # Covering-group I/O snapshot taken when the scan starts; the
        # delta at trace-collection time is the block I/O this node's
        # page chains were charged during the statement.
        self._io_before = None
        # Store-wide pages_skipped counter at run() — the delta is the
        # pages this scan's zone maps proved irrelevant.
        self._skip_before: Optional[int] = None

    @property
    def cols_read(self) -> int:
        return len(self.column_names)

    def io_delta(self):
        """Block I/O charged to the covering groups since :meth:`run`
        started (zeros if the node never ran)."""
        after = self.table.store.covering_io_snapshot(self.column_names)
        if self._io_before is None:
            return after.delta(after)
        return after.delta(self._io_before)

    def counters(self) -> Dict[str, Any]:
        base = super().counters()
        base["rows_scanned"] = self.rows_scanned
        base["cols_read"] = self.cols_read
        base["batches"] = self.batches
        base["rows_per_batch"] = (
            self.rows_scanned // self.batches if self.batches else 0
        )
        if self._io_before is not None:
            delta = self.io_delta()
            base["pages_read"] = delta.reads
            base["pages_written"] = delta.writes
        if self._skip_before is not None:
            base["pages_skipped"] = self.table.store.pages_skipped - self._skip_before
        return base

    def sargable_ranges(
        self, params: Optional[Sequence[Any]]
    ) -> Optional[Dict[str, Any]]:
        """Per-column interval sets from the pushed conjuncts, restricted
        to the scanned columns.  ``params=None`` gives the plan-time shape
        (parameter bounds unknown); real params give exact bounds."""
        conjuncts = [expr for _, _, expr in self.predicates if expr is not None]
        if not conjuncts:
            return None
        combined = conjuncts[0]
        for conjunct in conjuncts[1:]:
            combined = ast.BinaryOp("AND", combined, conjunct)
        ranges = extract_sargable_ranges(combined, params, self.binding)
        scanned = {name.lower() for name in self.column_names}
        ranges = {name: rs for name, rs in ranges.items() if name in scanned}
        return ranges or None

    def add_predicate(
        self,
        predicate: RowFn,
        description: str = "",
        expression: Optional[Any] = None,
    ) -> None:
        """Attach a pushed predicate, evaluated on the narrow fragment.

        ``expression`` is the conjunct's AST when the planner has it; the
        vectorized path batch-compiles it, and conjuncts without one (or
        with non-vectorizable shapes) fall back to the row closure."""
        self.predicates.append((predicate, description, expression))

    def label(self) -> str:
        suffix = f", {len(self.predicates)} pushed" if self.predicates else ""
        if self.data_skipping and self.vectorized:
            plan_ranges = self.sargable_ranges(None)
            if plan_ranges:
                suffix += f", skip=[{', '.join(sorted(plan_ranges))}]"
        return (
            f"ProjectedScan({self.table.name} as {self.binding}, "
            f"cols=[{', '.join(self.column_names)}]{suffix})"
        )

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        # The table scan is opened *here*, not at first next(): the store
        # snapshot is acquired at operator open, so everything this node
        # yields is isolated from concurrent DML and background
        # maintenance that lands after run() returns its iterator.
        self._io_before = self.table.store.covering_io_snapshot(self.column_names)
        if self.vectorized and self.column_names:
            return self._count(self._run_batches(ctx))
        source = self.table.scan_columns(self.column_names)

        def rows() -> Iterator[Tuple[Any, ...]]:
            for _, _, values in source:
                self.rows_scanned += 1
                keep = True
                for predicate, _, _ in self.predicates:
                    if predicate(values, ctx.params) is not True:
                        keep = False
                        break
                if keep:
                    yield values

        return self._count(rows())

    def _run_batches(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        """Batched execution: selection vectors over column fragments,
        output tuples materialised only for surviving rids.

        Pushed conjuncts with a batch-compilable AST evaluate over whole
        column lists; the rest run row-at-a-time on the already-filtered
        survivors (late materialisation *is* the ``to_rows`` adapter —
        downstream operators still consume plain tuples)."""
        batch_fns = []
        row_fns = []
        for predicate, _, expression in self.predicates:
            batch_fn = (
                compile_batch_predicate(expression, self.scope)
                if expression is not None
                else None
            )
            if batch_fn is not None:
                batch_fns.append(batch_fn)
            else:
                row_fns.append(predicate)
        params = ctx.params
        ranges = self.sargable_ranges(params) if self.data_skipping else None
        if ranges:
            self._skip_before = self.table.store.pages_skipped
        # Open the batched scan now so the snapshot is pinned at operator
        # open (this method is called eagerly from run(), not lazily).
        source = self.table.scan_column_batches(
            self.column_names, self.batch_size, predicate_ranges=ranges
        )

        def rows() -> Iterator[Tuple[Any, ...]]:
            for _, _, cols in source:
                n = len(cols[0])
                self.rows_scanned += n
                self.batches += 1
                if batch_fns:
                    keep = batch_fns[0](cols, params, n)
                    for batch_fn in batch_fns[1:]:
                        other = batch_fn(cols, params, n)
                        keep = [
                            False
                            if (a is not None and a is not True)
                            or (b is not None and b is not True)
                            else (None if a is None or b is None else True)
                            for a, b in zip(keep, other)
                        ]
                    survivors = [
                        i for i, verdict in enumerate(keep) if verdict is True
                    ]
                else:
                    survivors = range(n)
                for i in survivors:
                    values = tuple(column[i] for column in cols)
                    keep_row = True
                    for predicate in row_fns:
                        if predicate(values, params) is not True:
                            keep_row = False
                            break
                    if keep_row:
                        yield values

        return rows()


class SeqScan(ProjectedScan):
    """Full-width scan: a :class:`ProjectedScan` over every column."""

    def __init__(self, table: Table, binding: str):
        super().__init__(table, binding, None)

    def label(self) -> str:
        return f"SeqScan({self.table.name} as {self.binding})"


class IndexScan(PlanNode):
    """Secondary-index probe with late-materialized row fetch.

    The planner chooses this over :class:`ProjectedScan` when a pushed
    conjunct constrains an indexed column and the cost model prices the
    probe + per-row fetch below the (zone-map-discounted) batch scan.  At
    run time the pushed conjuncts are re-extracted with the bound
    parameters: point constraints become ``get`` probes, ranges become
    ``range_scan`` walks.  All pushed predicates are re-applied to the
    fetched rows (the index narrows candidates; it does not prove them),
    so a probe that turns out unconstrained — or a cross-type key the
    tree cannot bisect — degrades to a full-table candidate set and stays
    correct.  Probes and fetches run under the store mutation lock, the
    same point-in-time guarantee a scan gets from its snapshot."""

    def __init__(
        self,
        table: Table,
        binding: str,
        column_names: Optional[Sequence[str]],
        index: TableIndex,
    ):
        names = (
            list(table.column_names) if column_names is None else list(column_names)
        )
        super().__init__([(binding, name) for name in names])
        self.table = table
        self.binding = binding
        self.column_names = names
        self.index = index
        self.predicates: List[Tuple[RowFn, str, Optional[Any]]] = []
        self.rows_scanned = 0
        self.index_probes = 0

    @property
    def cols_read(self) -> int:
        return len(self.column_names)

    def add_predicate(
        self,
        predicate: RowFn,
        description: str = "",
        expression: Optional[Any] = None,
    ) -> None:
        self.predicates.append((predicate, description, expression))

    def label(self) -> str:
        return (
            f"IndexScan({self.table.name} as {self.binding}, "
            f"index={self.index.name} on {self.index.column}, "
            f"cols=[{', '.join(self.column_names)}], "
            f"{len(self.predicates)} pushed)"
        )

    def counters(self) -> Dict[str, Any]:
        base = super().counters()
        base["rows_scanned"] = self.rows_scanned
        base["cols_read"] = self.cols_read
        base["index_probes"] = self.index_probes
        return base

    def _candidate_rids(self, ranges: Optional[Dict[str, Any]]) -> List[int]:
        """rids the index cannot rule out, probed under the mutation lock.

        Caller holds the store mutation lock."""
        interval_set = (
            ranges.get(self.index.column.lower()) if ranges is not None else None
        )
        tree = self.index.tree
        if interval_set is None or interval_set.includes_null:
            # Unconstrained at run time (or the predicate admits NULLs,
            # which the index does not hold): every live row is a
            # candidate; the residual predicates do the filtering.
            return list(self.table.positions)
        rids: List[int] = []

        def collect(value: Any) -> None:
            if isinstance(value, list):
                rids.extend(value)
            else:
                rids.append(value)

        points = interval_set.points()
        if points is not None:
            for key in points:
                self.index_probes += 1
                hit = tree.get(key)
                if hit is not None:
                    collect(hit)
            return rids
        for low, low_incl, high, high_incl in interval_set.intervals:
            self.index_probes += 1
            try:
                for _, value in tree.range_scan(low, high, low_incl, high_incl):
                    collect(value)
            except TypeError:
                # Cross-type bound the tree cannot bisect against: walk
                # everything and let the interval set over-approximate.
                for key, value in tree.items():
                    if interval_set.contains(key):
                        collect(value)
        return rids

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        ranges = None
        conjuncts = [expr for _, _, expr in self.predicates if expr is not None]
        if conjuncts:
            combined = conjuncts[0]
            for conjunct in conjuncts[1:]:
                combined = ast.BinaryOp("AND", combined, conjunct)
            ranges = extract_sargable_ranges(combined, ctx.params, self.binding)
        store = self.table.store
        self.table.index_lookups += 1
        fetched: List[Tuple[int, Tuple[Any, ...]]] = []
        with store.mutation_lock:
            position_of = {
                rid: position for position, rid in enumerate(self.table.positions)
            }
            column_indexes = [
                self.table.schema.column_index(name) for name in self.column_names
            ]
            seen = set()
            for rid in self._candidate_rids(ranges):
                if rid in seen:
                    continue
                seen.add(rid)
                position = position_of.get(rid)
                if position is None:
                    continue  # entry for a row deleted mid-probe
                row = store.get(rid)
                fetched.append(
                    (position, tuple(row[i] for i in column_indexes))
                )
        fetched.sort()
        params = ctx.params

        def rows() -> Iterator[Tuple[Any, ...]]:
            for _, values in fetched:
                self.rows_scanned += 1
                keep = True
                for predicate, _, _ in self.predicates:
                    if predicate(values, params) is not True:
                        keep = False
                        break
                if keep:
                    yield values

        return self._count(rows())


class ValuesScan(PlanNode):
    """Materialised rows: RANGETABLE data, VALUES lists, cached subqueries."""

    def __init__(
        self,
        rows: Sequence[Tuple[Any, ...]],
        columns: Sequence[Tuple[Optional[str], str]],
        name: str = "values",
    ):
        super().__init__(columns)
        self._rows = list(rows)
        self.name = name

    def label(self) -> str:
        return f"ValuesScan({self.name}, {len(self._rows)} rows)"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        return self._count(iter(self._rows))


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: RowFn, description: str = ""):
        super().__init__(child.columns)
        self.child = child
        self.predicate = predicate
        self.description = description

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        suffix = f" [{self.description}]" if self.description else ""
        return f"Filter{suffix}"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        def rows() -> Iterator[Tuple[Any, ...]]:
            for row in self.child.run(ctx):
                if self.predicate(row, ctx.params) is True:
                    yield row

        return self._count(rows())


class ProjectNode(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        functions: Sequence[RowFn],
        columns: Sequence[Tuple[Optional[str], str]],
    ):
        super().__init__(columns)
        self.child = child
        self.functions = list(functions)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Project({len(self.functions)} cols)"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        def rows() -> Iterator[Tuple[Any, ...]]:
            for row in self.child.run(ctx):
                yield tuple(fn(row, ctx.params) for fn in self.functions)

        return self._count(rows())


class NestedLoopJoin(PlanNode):
    """General join; used for non-equi conditions and CROSS joins."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: Optional[RowFn],
        kind: str = "inner",
    ):
        super().__init__(left.columns + right.columns)
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        if kind not in ("inner", "left", "cross"):
            raise ExecutionError(f"unsupported join kind {kind!r}")

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"NestedLoopJoin({self.kind})"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        right_rows = list(self.right.run(ctx))
        null_right = (None,) * len(self.right.columns)

        def rows() -> Iterator[Tuple[Any, ...]]:
            for left_row in self.left.run(ctx):
                matched = False
                for right_row in right_rows:
                    combined = left_row + right_row
                    if self.condition is None or self.condition(combined, ctx.params) is True:
                        matched = True
                        yield combined
                if self.kind == "left" and not matched:
                    yield left_row + null_right

        return self._count(rows())


class HashJoin(PlanNode):
    """Equi-join: build on the right input, probe with the left."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Sequence[int],
        right_keys: Sequence[int],
        kind: str = "inner",
        residual: Optional[RowFn] = None,
    ):
        super().__init__(left.columns + right.columns)
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.kind = kind
        self.residual = residual
        if kind not in ("inner", "left"):
            raise ExecutionError(f"hash join does not support kind {kind!r}")

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"HashJoin({self.kind}, keys={self.left_keys}~{self.right_keys})"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        build: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for right_row in self.right.run(ctx):
            key = tuple(right_row[index] for index in self.right_keys)
            if any(part is None for part in key):
                continue  # NULL never matches in SQL equi-joins
            build.setdefault(key, []).append(right_row)
        null_right = (None,) * len(self.right.columns)

        def rows() -> Iterator[Tuple[Any, ...]]:
            for left_row in self.left.run(ctx):
                key = tuple(left_row[index] for index in self.left_keys)
                matches = [] if any(part is None for part in key) else build.get(key, [])
                matched = False
                for right_row in matches:
                    combined = left_row + right_row
                    if self.residual is not None and self.residual(combined, ctx.params) is not True:
                        continue
                    matched = True
                    yield combined
                if self.kind == "left" and not matched:
                    yield left_row + null_right

        return self._count(rows())


@dataclass
class AggregateSpec:
    """One aggregate to compute: its argument closure and options."""

    name: str
    argument: Optional[RowFn]  # None for COUNT(*)
    distinct: bool = False

    def new_accumulator(self) -> Aggregator:
        return make_aggregate(self.name, self.distinct, count_star=self.argument is None)


class AggregateNode(PlanNode):
    """Hash aggregation.

    Output rows are ``representative_input_row + aggregate_results`` — the
    planner compiles post-aggregation expressions against this widened
    scope, mapping each aggregate call to its appended slot.  With no GROUP
    BY there is a single group, emitted even for empty input (so
    ``COUNT(*)`` on an empty table yields 0, per SQL).
    """

    def __init__(
        self,
        child: PlanNode,
        group_fns: Sequence[RowFn],
        aggregates: Sequence[AggregateSpec],
        has_group_by: bool,
    ):
        columns = child.columns + [(None, f"agg{i}") for i in range(len(aggregates))]
        super().__init__(columns)
        self.child = child
        self.group_fns = list(group_fns)
        self.aggregates = list(aggregates)
        self.has_group_by = has_group_by

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Aggregate({len(self.group_fns)} keys, {len(self.aggregates)} aggs)"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        groups: Dict[Tuple[Any, ...], Tuple[Tuple[Any, ...], List[Aggregator]]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in self.child.run(ctx):
            key = tuple(_hashable(fn(row, ctx.params)) for fn in self.group_fns)
            entry = groups.get(key)
            if entry is None:
                entry = (row, [spec.new_accumulator() for spec in self.aggregates])
                groups[key] = entry
                order.append(key)
            _, accumulators = entry
            for spec, accumulator in zip(self.aggregates, accumulators):
                if spec.argument is None:
                    accumulator.add(1)  # COUNT(*): every row counts
                else:
                    accumulator.add(spec.argument(row, ctx.params))
        if not self.has_group_by and not groups:
            representative = (None,) * len(self.child.columns)
            accumulators = [spec.new_accumulator() for spec in self.aggregates]
            groups[()] = (representative, accumulators)
            order.append(())

        def rows() -> Iterator[Tuple[Any, ...]]:
            for key in order:
                representative, accumulators = groups[key]
                yield representative + tuple(acc.result() for acc in accumulators)

        return self._count(rows())


class ConcatNode(PlanNode):
    """UNION / UNION ALL: concatenate children (same arity), optionally
    deduplicating across the whole result (SQL UNION semantics)."""

    def __init__(self, children: Sequence[PlanNode], dedup_after: Sequence[bool]):
        """``dedup_after[i]`` — whether a plain UNION (dedup) connects child
        i to child i+1.  SQL semantics: any plain UNION in the chain
        deduplicates everything combined so far, so we conservatively dedup
        the whole output when any connector is a plain UNION."""
        super().__init__(children[0].columns)
        self._children = list(children)
        self.dedup = any(dedup_after)
        for child in children[1:]:
            if len(child.columns) != len(self.columns):
                raise ExecutionError(
                    "UNION members must have the same number of columns"
                )

    def children(self) -> List[PlanNode]:
        return list(self._children)

    def label(self) -> str:
        return f"Concat({'UNION' if self.dedup else 'UNION ALL'}, {len(self._children)})"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        def rows() -> Iterator[Tuple[Any, ...]]:
            seen = set() if self.dedup else None
            for child in self._children:
                for row in child.run(ctx):
                    if seen is not None:
                        key = tuple(_hashable(value) for value in row)
                        if key in seen:
                            continue
                        seen.add(key)
                    yield row

        return self._count(rows())


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        super().__init__(child.columns)
        self.child = child

    def children(self) -> List[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        def rows() -> Iterator[Tuple[Any, ...]]:
            seen = set()
            for row in self.child.run(ctx):
                key = tuple(_hashable(value) for value in row)
                if key in seen:
                    continue
                seen.add(key)
                yield row

        return self._count(rows())


class SortNode(PlanNode):
    """Multi-key sort with SQL NULL placement (NULLs first ascending,
    last descending — sqlite's convention)."""

    def __init__(self, child: PlanNode, keys: Sequence[Tuple[RowFn, bool]]):
        super().__init__(child.columns)
        self.child = child
        self.keys = list(keys)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        import functools

        materialised = list(self.child.run(ctx))
        decorated = [
            (tuple(fn(row, ctx.params) for fn, _ in self.keys), row)
            for row in materialised
        ]
        directions = [descending for _, descending in self.keys]

        def compare(a, b) -> int:
            for index, descending in enumerate(directions):
                left, right = a[0][index], b[0][index]
                if left is None and right is None:
                    continue
                if left is None:
                    outcome = -1
                elif right is None:
                    outcome = 1
                else:
                    outcome = compare_values(left, right) or 0
                if outcome:
                    return -outcome if descending else outcome
            return 0

        decorated.sort(key=functools.cmp_to_key(compare))
        return self._count(row for _, row in decorated)


class LimitNode(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        limit: Optional[RowFn],
        offset: Optional[RowFn],
    ):
        super().__init__(child.columns)
        self.child = child
        self.limit = limit
        self.offset = offset

    def children(self) -> List[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Tuple[Any, ...]]:
        empty_row: Tuple[Any, ...] = ()
        skip = 0
        if self.offset is not None:
            skip = int(self.offset(empty_row, ctx.params) or 0)
            if skip < 0:
                raise ExecutionError("OFFSET must be non-negative")
        take: Optional[int] = None
        if self.limit is not None:
            take = int(self.limit(empty_row, ctx.params))
            if take < 0:
                raise ExecutionError("LIMIT must be non-negative")

        def rows() -> Iterator[Tuple[Any, ...]]:
            produced = 0
            for index, row in enumerate(self.child.run(ctx)):
                if index < skip:
                    continue
                if take is not None and produced >= take:
                    return
                produced += 1
                yield row

        return self._count(rows())


def _hashable(value: Any) -> Any:
    """Group-by/distinct key normalisation (lists → tuples, etc.)."""
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value
