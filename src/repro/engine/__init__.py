"""The relational database substrate.

The paper backs DataSpread with PostgreSQL but proposes architectural
changes PostgreSQL does not have — a hybrid attribute-group store so schema
changes cost as little as tuple updates, a positional index, and an
interface-aware query processor.  Those changes are the research
contribution, so this package implements the whole engine from scratch:

* :mod:`repro.engine.pager` — page/buffer substrate with block-I/O counters,
* :mod:`repro.engine.rowstore` / :mod:`repro.engine.columnstore` /
  :mod:`repro.engine.hybridstore` — the three physical layouts,
* :mod:`repro.engine.schema` / :mod:`repro.engine.catalog` — dynamic schema,
* :mod:`repro.engine.sql_lexer` / :mod:`repro.engine.sql_parser` — SQL text,
* :mod:`repro.engine.planner` / :mod:`repro.engine.executor` — query
  processing, including spreadsheet range tables,
* :mod:`repro.engine.transaction` — undo-log transactions in which schema
  changes participate (the §2.2 "challenge"),
* :mod:`repro.engine.database` — the public facade.
"""

from repro.engine.types import DBType, infer_type, unify_types, coerce_value
from repro.engine.schema import Column, TableSchema
from repro.engine.database import Database, ResultSet

__all__ = [
    "DBType",
    "infer_type",
    "unify_types",
    "coerce_value",
    "Column",
    "TableSchema",
    "Database",
    "ResultSet",
]
