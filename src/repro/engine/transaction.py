"""Undo-log transactions in which schema changes participate.

Paper §2.2, *Challenge*: "for today's databases a table's schema change
requires an update to all the tuples of the table.  Further, the activity is
considered as 'data definition language' and generally cannot participate in
transactions."  DataSpread requires both to change; this module provides the
second half: every mutation — tuple *or schema* — appends an inverse
operation to the active transaction's undo log, so ``ROLLBACK`` restores
both data and schema.

The design is deliberately simple (single-writer, no concurrency): the
paper explicitly leaves the transaction manager's full redesign to future
work, and what the demo needs is atomicity of mixed DML+DDL batches.

Durability integration: the manager publishes its state transitions to
registered *hooks* — callables ``hook(event, txn_id)`` with ``event`` in
``("begin", "commit", "rollback")``.  The server's write-ahead log uses
these to bracket a transaction's records with commit markers and to
discard the un-committed records when the transaction rolls back, no
matter which code path (service op, ``Database.execute("ROLLBACK")``,
direct API call) drove the transition.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import TransactionError

__all__ = ["Transaction", "TransactionManager", "TransactionHook"]

#: ``hook(event, txn_id)`` with event in ("begin", "commit", "rollback").
TransactionHook = Callable[[str, int], None]


class Transaction:
    """One open transaction: a stack of undo closures."""

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.active = True
        self._undo: List[Callable[[], None]] = []
        self.statements = 0

    def record_undo(self, closure: Callable[[], None]) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self._undo.append(closure)

    def rollback(self) -> int:
        """Run the undo log in reverse; returns the number of undone ops."""
        if not self.active:
            raise TransactionError("transaction is no longer active")
        undone = 0
        while self._undo:
            closure = self._undo.pop()
            closure()
            undone += 1
        self.active = False
        return undone

    def commit(self) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self._undo.clear()
        self.active = False

    @property
    def n_pending_undos(self) -> int:
        return len(self._undo)


class TransactionManager:
    """Hands out transactions; at most one open at a time (single writer)."""

    def __init__(self) -> None:
        self._next_id = 1
        self.current: Optional[Transaction] = None
        self.committed = 0
        self.rolled_back = 0
        self._hooks: List[TransactionHook] = []

    # -- lifecycle hooks (durability layer) ---------------------------------

    def add_hook(self, hook: TransactionHook) -> None:
        """Subscribe to begin/commit/rollback transitions."""
        self._hooks.append(hook)

    def remove_hook(self, hook: TransactionHook) -> None:
        self._hooks.remove(hook)

    def _notify(self, event: str, txn_id: int) -> None:
        for hook in list(self._hooks):
            hook(event, txn_id)

    def begin(self) -> Transaction:
        if self.current is not None and self.current.active:
            raise TransactionError("a transaction is already open (no nesting)")
        self.current = Transaction(self._next_id)
        self._next_id += 1
        self._notify("begin", self.current.txn_id)
        return self.current

    def commit(self) -> None:
        if self.current is None or not self.current.active:
            raise TransactionError("no open transaction to commit")
        txn_id = self.current.txn_id
        self.current.commit()
        self.committed += 1
        self.current = None
        self._notify("commit", txn_id)

    def rollback(self) -> int:
        if self.current is None or not self.current.active:
            raise TransactionError("no open transaction to roll back")
        txn_id = self.current.txn_id
        undone = self.current.rollback()
        self.rolled_back += 1
        self.current = None
        self._notify("rollback", txn_id)
        return undone

    @property
    def in_transaction(self) -> bool:
        return self.current is not None and self.current.active

    def record_undo(self, closure: Callable[[], None]) -> None:
        """Register an inverse op if a transaction is open (no-op in
        autocommit mode)."""
        if self.in_transaction:
            assert self.current is not None
            self.current.record_undo(closure)
