"""Expression compilation and evaluation.

Expressions are compiled once per query into Python closures operating on
flat row tuples; the executor then calls the closure per row.  NULL follows
SQL three-valued logic: comparisons with NULL yield UNKNOWN (``None``),
``AND``/``OR`` use Kleene logic, and a WHERE clause keeps a row only when
its predicate is exactly ``True``.

A :class:`Scope` maps qualified/unqualified column names to row-tuple
indexes, detecting ambiguity ("which ``id`` did you mean?") at compile time
— the error PostgreSQL would raise.

Aggregate calls are *not* evaluated here; the executor pre-computes each
aggregate per group and supplies the values via ``agg_values`` keyed by the
AST node (frozen dataclasses hash structurally, so equal aggregate
expressions share one accumulator).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine import sql_ast as ast
from repro.engine.functions import SCALAR_FUNCTIONS
from repro.engine.types import DBType, coerce_value, compare_values
from repro.errors import ExecutionError, PlanError

__all__ = [
    "Scope",
    "compile_expression",
    "compile_batch_predicate",
    "collect_aggregates",
    "expression_is_constant",
    "IntervalSet",
    "extract_sargable_ranges",
    "UNKNOWN_BOUND",
]

RowFn = Callable[[Tuple[Any, ...], Sequence[Any]], Any]

#: ``fn(columns, params, n) -> values`` over rid-aligned column lists;
#: the result list is the selection vector (keep rows where it is True).
BatchFn = Callable[[Sequence[List[Any]], Sequence[Any], int], List[Any]]


class Scope:
    """Column-name → row-index resolution for one plan node's output."""

    def __init__(self, columns: Sequence[Tuple[Optional[str], str]]):
        """``columns``: ordered ``(binding, column_name)`` pairs; binding is
        the table alias (or None for anonymous/derived columns)."""
        self.columns = [
            ((binding.lower() if binding else None), name.lower())
            for binding, name in columns
        ]

    def __len__(self) -> int:
        return len(self.columns)

    def resolve(self, name: str, table: Optional[str] = None) -> int:
        name_l = name.lower()
        table_l = table.lower() if table else None
        matches = [
            index
            for index, (binding, column) in enumerate(self.columns)
            if column == name_l and (table_l is None or binding == table_l)
        ]
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise PlanError(f"no such column {qualified!r}")
        if len(matches) > 1:
            raise PlanError(f"ambiguous column reference {name!r}")
        return matches[0]

    def indexes_of_binding(self, binding: str) -> List[int]:
        binding_l = binding.lower()
        return [
            index
            for index, (owner, _) in enumerate(self.columns)
            if owner == binding_l
        ]

    def merged_with(self, other: "Scope") -> "Scope":
        merged = Scope([])
        merged.columns = self.columns + other.columns
        return merged


def _like_to_regex(pattern: str) -> "re.Pattern":
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # sqlite semantics: x/0 is NULL
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and result == int(result):
                return int(result)
            return result
        if op == "%":
            if right == 0:
                return None
            return left % right
    except TypeError:
        raise ExecutionError(
            f"operator {op!r} not applicable to {left!r} and {right!r}"
        ) from None
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


_COMPARISONS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c == -1,
    "<=": lambda c: c in (-1, 0),
    ">": lambda c: c == 1,
    ">=": lambda c: c in (0, 1),
}


def collect_aggregates(expression: ast.Expression) -> List[ast.FuncCall]:
    """All aggregate FuncCall nodes in an expression (deduplicated,
    preserving first-seen order)."""
    seen: Dict[ast.FuncCall, None] = {}
    for node in ast.walk_expression(expression):
        if isinstance(node, ast.FuncCall) and node.is_aggregate and _is_aggregate_form(node):
            seen.setdefault(node)
    return list(seen)


def _is_aggregate_form(call: ast.FuncCall) -> bool:
    """``min(a)``/``max(a)`` with one argument aggregate; with two or more
    they are the scalar GREATEST/LEAST-style functions."""
    if call.name in ("min", "max") and len(call.args) != 1:
        return False
    return True


def expression_is_constant(expression: ast.Expression) -> bool:
    """True when the expression references no columns (safe to fold)."""
    for node in ast.walk_expression(expression):
        if isinstance(node, (ast.ColumnRef, ast.Star)):
            return False
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery)):
            return False
    return True


def compile_expression(
    expression: ast.Expression,
    scope: Scope,
    agg_values: Optional[Dict[ast.FuncCall, int]] = None,
    subquery_runner: Optional[Callable[[ast.SelectStmt], List[Tuple[Any, ...]]]] = None,
    range_resolver: Optional[Callable[[str], Any]] = None,
) -> RowFn:
    """Compile to a ``fn(row, params) -> value`` closure.

    ``agg_values`` maps aggregate AST nodes to *row indexes* holding their
    pre-computed per-group results (the executor appends them to the group
    row).  ``subquery_runner`` executes uncorrelated subselects (memoised
    here).  ``range_resolver`` resolves any ``RANGEVALUE`` that survived to
    execution (normally the DataSpread layer substitutes them earlier).
    """

    def compile_node(node: ast.Expression) -> RowFn:
        if agg_values is not None and isinstance(node, ast.FuncCall) and node in agg_values:
            index = agg_values[node]
            return lambda row, params: row[index]

        if isinstance(node, ast.Literal):
            value = node.value
            return lambda row, params: value

        if isinstance(node, ast.Parameter):
            index = node.index
            def param_fn(row, params):
                if index >= len(params):
                    raise ExecutionError(
                        f"statement uses parameter ?{index + 1} but only "
                        f"{len(params)} values were bound"
                    )
                return params[index]
            return param_fn

        if isinstance(node, ast.ColumnRef):
            index = scope.resolve(node.name, node.table)
            return lambda row, params: row[index]

        if isinstance(node, ast.Star):
            raise PlanError("'*' is only valid in a select list or COUNT(*)")

        if isinstance(node, ast.RangeValue):
            if range_resolver is None:
                raise PlanError(
                    "RANGEVALUE used outside a spreadsheet context "
                    f"({node.reference!r})"
                )
            value = range_resolver(node.reference)
            return lambda row, params: value

        if isinstance(node, ast.UnaryOp):
            operand = compile_node(node.operand)
            if node.op == "NOT":
                def not_fn(row, params):
                    value = operand(row, params)
                    if value is None:
                        return None
                    return not _truthy(value)
                return not_fn
            if node.op == "-":
                def neg_fn(row, params):
                    value = operand(row, params)
                    return None if value is None else -value
                return neg_fn
            return operand  # unary +

        if isinstance(node, ast.BinaryOp):
            left = compile_node(node.left)
            right = compile_node(node.right)
            op = node.op
            if op == "AND":
                def and_fn(row, params):
                    lhs = left(row, params)
                    if lhs is not None and not _truthy(lhs):
                        return False
                    rhs = right(row, params)
                    if rhs is not None and not _truthy(rhs):
                        return False
                    if lhs is None or rhs is None:
                        return None
                    return True
                return and_fn
            if op == "OR":
                def or_fn(row, params):
                    lhs = left(row, params)
                    if lhs is not None and _truthy(lhs):
                        return True
                    rhs = right(row, params)
                    if rhs is not None and _truthy(rhs):
                        return True
                    if lhs is None or rhs is None:
                        return None
                    return False
                return or_fn
            if op == "||":
                def concat_fn(row, params):
                    lhs = left(row, params)
                    rhs = right(row, params)
                    if lhs is None or rhs is None:
                        return None
                    return coerce_value(lhs, DBType.TEXT) + coerce_value(rhs, DBType.TEXT)
                return concat_fn
            if op in _COMPARISONS:
                check = _COMPARISONS[op]
                def cmp_fn(row, params):
                    ordering = compare_values(left(row, params), right(row, params))
                    if ordering is None:
                        return None
                    return check(ordering)
                return cmp_fn
            return lambda row, params: _arith(op, left(row, params), right(row, params))

        if isinstance(node, ast.IsNull):
            operand = compile_node(node.operand)
            if node.negated:
                return lambda row, params: operand(row, params) is not None
            return lambda row, params: operand(row, params) is None

        if isinstance(node, ast.InList):
            operand = compile_node(node.operand)
            items = [compile_node(item) for item in node.items]
            negated = node.negated
            def in_fn(row, params):
                value = operand(row, params)
                if value is None:
                    return None
                saw_null = False
                for item in items:
                    candidate = item(row, params)
                    if candidate is None:
                        saw_null = True
                        continue
                    if compare_values(value, candidate) == 0:
                        return not negated
                if saw_null:
                    return None
                return negated
            return in_fn

        if isinstance(node, ast.InSubquery):
            if subquery_runner is None:
                raise PlanError("subqueries are not available in this context")
            operand = compile_node(node.operand)
            negated = node.negated
            memo: Dict[str, List[Any]] = {}
            select = node.select
            def in_subquery_fn(row, params):
                if "rows" not in memo:
                    rows = subquery_runner(select)
                    memo["rows"] = [r[0] for r in rows]
                value = operand(row, params)
                if value is None:
                    return None
                saw_null = False
                for candidate in memo["rows"]:
                    if candidate is None:
                        saw_null = True
                        continue
                    if compare_values(value, candidate) == 0:
                        return not negated
                if saw_null:
                    return None
                return negated
            return in_subquery_fn

        if isinstance(node, ast.ScalarSubquery):
            if subquery_runner is None:
                raise PlanError("subqueries are not available in this context")
            memo: Dict[str, Any] = {}
            select = node.select
            def scalar_subquery_fn(row, params):
                if "value" not in memo:
                    rows = subquery_runner(select)
                    if len(rows) > 1:
                        raise ExecutionError("scalar subquery returned more than one row")
                    memo["value"] = rows[0][0] if rows else None
                return memo["value"]
            return scalar_subquery_fn

        if isinstance(node, ast.Between):
            operand = compile_node(node.operand)
            low = compile_node(node.low)
            high = compile_node(node.high)
            negated = node.negated
            def between_fn(row, params):
                value = operand(row, params)
                lo = low(row, params)
                hi = high(row, params)
                low_cmp = compare_values(value, lo)
                high_cmp = compare_values(value, hi)
                if low_cmp is None or high_cmp is None:
                    return None
                inside = low_cmp >= 0 and high_cmp <= 0
                return (not inside) if negated else inside
            return between_fn

        if isinstance(node, ast.Like):
            operand = compile_node(node.operand)
            pattern = compile_node(node.pattern)
            negated = node.negated
            cache: Dict[str, Any] = {}
            def like_fn(row, params):
                value = operand(row, params)
                pat = pattern(row, params)
                if value is None or pat is None:
                    return None
                regex = cache.get(pat)
                if regex is None:
                    regex = _like_to_regex(str(pat))
                    cache[pat] = regex
                matched = bool(regex.match(coerce_value(value, DBType.TEXT)))
                return (not matched) if negated else matched
            return like_fn

        if isinstance(node, ast.Case):
            operand = compile_node(node.operand) if node.operand is not None else None
            whens = [(compile_node(c), compile_node(r)) for c, r in node.whens]
            default = compile_node(node.default) if node.default is not None else None
            def case_fn(row, params):
                if operand is not None:
                    subject = operand(row, params)
                    for condition, result in whens:
                        if compare_values(subject, condition(row, params)) == 0:
                            return result(row, params)
                else:
                    for condition, result in whens:
                        verdict = condition(row, params)
                        if verdict is not None and _truthy(verdict):
                            return result(row, params)
                return default(row, params) if default is not None else None
            return case_fn

        if isinstance(node, ast.FuncCall):
            if node.is_aggregate and _is_aggregate_form(node):
                raise PlanError(
                    f"aggregate {node.name}() is not allowed here"
                )
            fn = SCALAR_FUNCTIONS.get(node.name)
            if fn is None:
                raise PlanError(f"unknown function {node.name!r}")
            args = [compile_node(argument) for argument in node.args]
            return lambda row, params: fn(*(argument(row, params) for argument in args))

        raise PlanError(f"cannot compile expression node {type(node).__name__}")

    return compile_node(expression)


class _NotVectorizable(Exception):
    """Internal: the expression needs the row-at-a-time compiler."""


#: Python operators matching ``_COMPARISONS`` for same-kind numerics
#: (bool/int/float share one slot in the SQL type order, so Python's own
#: comparison agrees with ``compare_values`` there).
_PY_COMPARISONS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_SWAPPED_COMPARISON = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def compile_batch_predicate(
    expression: ast.Expression, scope: Scope
) -> Optional[BatchFn]:
    """Compile a WHERE conjunct to a whole-batch selection function.

    Returns ``fn(columns, params, n) -> values`` where ``columns`` holds
    one rid-aligned value list per scope column, or ``None`` when the
    expression uses constructs (subqueries, LIKE, CASE, function calls)
    that only the row-at-a-time compiler supports — the scan then falls
    back to evaluating that conjunct per surviving row.  Semantics match
    :func:`compile_expression` exactly, including three-valued logic; the
    only visible difference is that AND/OR evaluate both sides (no
    short-circuit — batch expressions are side-effect free).
    """
    try:
        return _compile_batch_node(expression, scope)
    except _NotVectorizable:
        return None


def _compile_batch_const(node: ast.Expression) -> Optional[Callable[[Sequence[Any]], Any]]:
    """``params -> value`` for constant-per-batch nodes, else ``None``."""
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda params: value
    if isinstance(node, ast.Parameter):
        index = node.index

        def param_value(params: Sequence[Any]) -> Any:
            if index >= len(params):
                raise ExecutionError(
                    f"statement uses parameter ?{index + 1} but only "
                    f"{len(params)} values were bound"
                )
            return params[index]

        return param_value
    return None


def _compile_batch_node(node: ast.Expression, scope: Scope) -> BatchFn:
    const = _compile_batch_const(node)
    if const is not None:
        return lambda cols, params, n: [const(params)] * n

    if isinstance(node, ast.ColumnRef):
        index = scope.resolve(node.name, node.table)
        return lambda cols, params, n: cols[index]

    if isinstance(node, ast.UnaryOp):
        operand = _compile_batch_node(node.operand, scope)
        if node.op == "NOT":
            return lambda cols, params, n: [
                None if v is None else not _truthy(v)
                for v in operand(cols, params, n)
            ]
        if node.op == "-":
            return lambda cols, params, n: [
                None if v is None else -v for v in operand(cols, params, n)
            ]
        return operand  # unary +

    if isinstance(node, ast.BinaryOp):
        op = node.op
        if op in _COMPARISONS:
            # Column-vs-constant gets a tight loop with a pure-Python
            # numeric fast path — the common shape of pushed-down filters.
            left_node, right_node, cmp_op = node.left, node.right, op
            if _compile_batch_const(left_node) is not None and isinstance(
                right_node, ast.ColumnRef
            ):
                left_node, right_node = right_node, left_node
                cmp_op = _SWAPPED_COMPARISON[op]
            const_side = _compile_batch_const(right_node)
            if isinstance(left_node, ast.ColumnRef) and const_side is not None:
                index = scope.resolve(left_node.name, left_node.table)
                py_op = _PY_COMPARISONS[cmp_op]
                check = _COMPARISONS[cmp_op]

                def fast_cmp(cols, params, n):
                    value = const_side(params)
                    column = cols[index]
                    if value is None:
                        return [None] * n
                    if type(value) is int or type(value) is float:
                        out: Optional[List[Any]] = []
                        for v in column:
                            tv = type(v)
                            if tv is int or tv is float or tv is bool:
                                out.append(py_op(v, value))
                            elif v is None:
                                out.append(None)
                            else:
                                out = None  # mixed types: use compare_values
                                break
                        if out is not None:
                            return out
                    result = []
                    for v in column:
                        ordering = compare_values(v, value)
                        result.append(None if ordering is None else check(ordering))
                    return result

                return fast_cmp
            left = _compile_batch_node(node.left, scope)
            right = _compile_batch_node(node.right, scope)
            check = _COMPARISONS[op]

            def cmp_fn(cols, params, n):
                out = []
                for a, b in zip(left(cols, params, n), right(cols, params, n)):
                    ordering = compare_values(a, b)
                    out.append(None if ordering is None else check(ordering))
                return out

            return cmp_fn
        left = _compile_batch_node(node.left, scope)
        right = _compile_batch_node(node.right, scope)
        if op == "AND":

            def and_fn(cols, params, n):
                out = []
                for a, b in zip(left(cols, params, n), right(cols, params, n)):
                    if (a is not None and not _truthy(a)) or (
                        b is not None and not _truthy(b)
                    ):
                        out.append(False)
                    elif a is None or b is None:
                        out.append(None)
                    else:
                        out.append(True)
                return out

            return and_fn
        if op == "OR":

            def or_fn(cols, params, n):
                out = []
                for a, b in zip(left(cols, params, n), right(cols, params, n)):
                    if (a is not None and _truthy(a)) or (
                        b is not None and _truthy(b)
                    ):
                        out.append(True)
                    elif a is None or b is None:
                        out.append(None)
                    else:
                        out.append(False)
                return out

            return or_fn
        if op == "||":
            return lambda cols, params, n: [
                None
                if a is None or b is None
                else coerce_value(a, DBType.TEXT) + coerce_value(b, DBType.TEXT)
                for a, b in zip(left(cols, params, n), right(cols, params, n))
            ]
        return lambda cols, params, n: [
            _arith(op, a, b)
            for a, b in zip(left(cols, params, n), right(cols, params, n))
        ]

    if isinstance(node, ast.IsNull):
        operand = _compile_batch_node(node.operand, scope)
        if node.negated:
            return lambda cols, params, n: [
                v is not None for v in operand(cols, params, n)
            ]
        return lambda cols, params, n: [v is None for v in operand(cols, params, n)]

    if isinstance(node, ast.Between):
        operand = _compile_batch_node(node.operand, scope)
        low = _compile_batch_node(node.low, scope)
        high = _compile_batch_node(node.high, scope)
        negated = node.negated

        def between_fn(cols, params, n):
            out = []
            for v, lo, hi in zip(
                operand(cols, params, n),
                low(cols, params, n),
                high(cols, params, n),
            ):
                low_cmp = compare_values(v, lo)
                high_cmp = compare_values(v, hi)
                if low_cmp is None or high_cmp is None:
                    out.append(None)
                else:
                    inside = low_cmp >= 0 and high_cmp <= 0
                    out.append((not inside) if negated else inside)
            return out

        return between_fn

    if isinstance(node, ast.InList):
        operand = _compile_batch_node(node.operand, scope)
        items = [_compile_batch_node(item, scope) for item in node.items]
        negated = node.negated

        def in_fn(cols, params, n):
            value_lists = [item(cols, params, n) for item in items]
            out = []
            for i, value in enumerate(operand(cols, params, n)):
                if value is None:
                    out.append(None)
                    continue
                saw_null = False
                verdict: Any = negated
                for candidates in value_lists:
                    candidate = candidates[i]
                    if candidate is None:
                        saw_null = True
                        continue
                    if compare_values(value, candidate) == 0:
                        verdict = not negated
                        saw_null = False
                        break
                out.append(None if saw_null and verdict is negated else verdict)
            return out

        return in_fn

    raise _NotVectorizable(type(node).__name__)


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    return value is not None


# -- sargable predicate ranges (data skipping + index probes) -----------------


class _Unknown:
    """Placeholder bound for a ``?`` parameter at *plan* time: the shape of
    the constraint is known (point / range), the value is not."""

    def __repr__(self) -> str:
        return "?"


#: Singleton plan-time parameter bound (see :func:`extract_sargable_ranges`).
UNKNOWN_BOUND = _Unknown()


class _Incomparable(Exception):
    """A bound comparison involved :data:`UNKNOWN_BOUND`."""


def _cmp_bounds(left: Any, right: Any) -> int:
    if left is UNKNOWN_BOUND or right is UNKNOWN_BOUND:
        raise _Incomparable
    ordering = compare_values(left, right)
    if ordering is None:  # defensive: bounds are never SQL NULL here
        raise _Incomparable
    return ordering


class IntervalSet:
    """The set of column values for which a sargable predicate *could* be
    TRUE: a union of ``(low, low_incl, high, high_incl)`` intervals (a
    ``None`` bound is unbounded) plus whether SQL NULL could satisfy it.

    Bound comparisons use :func:`repro.engine.types.compare_values` — the
    same total cross-type order the compiled predicates evaluate with — so
    a zone-map or index decision can never disagree with the predicate.
    Consumers over-approximate on any uncertainty: an interval touching
    :data:`UNKNOWN_BOUND` always "may match"."""

    __slots__ = ("intervals", "includes_null")

    def __init__(
        self,
        intervals: List[Tuple[Any, bool, Any, bool]],
        includes_null: bool = False,
    ):
        self.intervals = intervals
        self.includes_null = includes_null

    def __repr__(self) -> str:
        parts = []
        for low, low_incl, high, high_incl in self.intervals:
            parts.append(
                ("[" if low_incl else "(")
                + repr(low)
                + ", "
                + repr(high)
                + ("]" if high_incl else ")")
            )
        if self.includes_null:
            parts.append("NULL")
        return "IntervalSet{" + ", ".join(parts) + "}"

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls([], False)

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls([(None, False, None, False)], True)

    def is_empty(self) -> bool:
        return not self.intervals and not self.includes_null

    def points(self) -> Optional[List[Any]]:
        """All values when every interval is a closed single point (the
        index point-probe form); ``None`` otherwise."""
        out: List[Any] = []
        for low, low_incl, high, high_incl in self.intervals:
            if not low_incl or not high_incl or low is None or high is None:
                return None
            if low is high:
                out.append(low)
                continue
            try:
                if _cmp_bounds(low, high) != 0:
                    return None
            except _Incomparable:
                return None
            out.append(low)
        return out

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """AND combination.  Raises :class:`_Incomparable` (caught by the
        extractor, which then drops the column's constraint — a safe
        over-approximation) when bounds cannot be ordered."""
        intervals: List[Tuple[Any, bool, Any, bool]] = []
        for a in self.intervals:
            for b in other.intervals:
                merged = _intersect_one(a, b)
                if merged is not None:
                    intervals.append(merged)
        return IntervalSet(intervals, self.includes_null and other.includes_null)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """OR combination (no normalisation; consumers test overlap)."""
        return IntervalSet(
            self.intervals + other.intervals,
            self.includes_null or other.includes_null,
        )

    def may_match(self, lo: Any, hi: Any, nulls: int, count: int) -> bool:
        """Could any value on a page with zone ``(lo, hi, nulls)`` over
        ``count`` records satisfy this set?  True on any uncertainty."""
        if nulls > 0 and self.includes_null:
            return True
        if count - nulls <= 0:
            return False
        if lo is None:
            return True
        for low, low_incl, high, high_incl in self.intervals:
            try:
                if low is not None:
                    ordering = _cmp_bounds(low, hi)
                    if ordering > 0 or (ordering == 0 and not low_incl):
                        continue
                if high is not None:
                    ordering = _cmp_bounds(high, lo)
                    if ordering < 0 or (ordering == 0 and not high_incl):
                        continue
            except _Incomparable:
                return True
            return True
        return False

    def contains(self, value: Any) -> bool:
        """Membership with the same over-approximation rules (used by
        index probes to post-filter candidate keys)."""
        if value is None:
            return self.includes_null
        return self.may_match(value, value, 0, 1)


def _intersect_one(
    a: Tuple[Any, bool, Any, bool], b: Tuple[Any, bool, Any, bool]
) -> Optional[Tuple[Any, bool, Any, bool]]:
    low, low_incl = a[0], a[1]
    if b[0] is not None:
        if low is None:
            low, low_incl = b[0], b[1]
        else:
            ordering = _cmp_bounds(b[0], low)
            if ordering > 0:
                low, low_incl = b[0], b[1]
            elif ordering == 0:
                low_incl = low_incl and b[1]
    high, high_incl = a[2], a[3]
    if b[2] is not None:
        if high is None:
            high, high_incl = b[2], b[3]
        else:
            ordering = _cmp_bounds(b[2], high)
            if ordering < 0:
                high, high_incl = b[2], b[3]
            elif ordering == 0:
                high_incl = high_incl and b[3]
    if low is not None and high is not None:
        ordering = _cmp_bounds(low, high)
        if ordering > 0 or (ordering == 0 and not (low_incl and high_incl)):
            return None
    return (low, low_incl, high, high_incl)


def extract_sargable_ranges(
    expression: ast.Expression,
    params: Optional[Sequence[Any]] = None,
    binding: Optional[str] = None,
) -> Dict[str, "IntervalSet"]:
    """Compile a predicate into per-column sargable interval sets.

    Returns ``{lower-cased column name: IntervalSet}`` such that a row can
    make ``expression`` evaluate TRUE only if every named column's value
    lies in its set.  Handles ``= <> < <= > >=``, ``BETWEEN`` (and ``NOT
    BETWEEN``), non-negated ``IN`` over constants, ``IS [NOT] NULL``, and
    Kleene-safe ``AND``/``OR`` combination; everything else contributes no
    constraint (which only *under*-skips, never excludes a live match).
    Kleene safety: WHERE keeps only rows where the predicate is TRUE, so a
    comparison against NULL (always UNKNOWN) yields the *empty* set.

    With ``params=None`` (plan time) a ``?`` bound becomes
    :data:`UNKNOWN_BOUND` — usable for access-path shape decisions, never
    for value tests.  Pass the real ``params`` at execution time.
    ``binding`` ignores refs qualified with a different table alias.
    """
    extracted = _extract_ranges(expression, params, binding)
    return extracted if extracted is not None else {}


def _const_bound(
    node: ast.Expression, params: Optional[Sequence[Any]]
) -> Tuple[bool, Any]:
    """``(is_constant, value)`` for a bound expression; parameters resolve
    to their bound value or to :data:`UNKNOWN_BOUND` at plan time."""
    if isinstance(node, ast.Literal):
        return True, node.value
    if isinstance(node, ast.Parameter):
        if params is None:
            return True, UNKNOWN_BOUND
        if node.index < len(params):
            return True, params[node.index]
        return False, None
    if isinstance(node, ast.UnaryOp) and node.op == "-":
        known, value = _const_bound(node.operand, params)
        if known and isinstance(value, (int, float)) and not isinstance(value, bool):
            return True, -value
        return False, None
    return False, None


def _ref_column(node: ast.Expression, binding: Optional[str]) -> Optional[str]:
    if not isinstance(node, ast.ColumnRef):
        return None
    if (
        binding is not None
        and node.table is not None
        and node.table.lower() != binding.lower()
    ):
        return None
    return node.name.lower()


def _comparison_set(op: str, value: Any) -> Optional[IntervalSet]:
    if value is None:
        # ``col <op> NULL`` is UNKNOWN for every row — never TRUE.
        return IntervalSet.empty()
    if op == "=":
        return IntervalSet([(value, True, value, True)])
    if op == "<":
        return IntervalSet([(None, False, value, False)])
    if op == "<=":
        return IntervalSet([(None, False, value, True)])
    if op == ">":
        return IntervalSet([(value, False, None, False)])
    if op == ">=":
        return IntervalSet([(value, True, None, False)])
    if op == "<>":
        return IntervalSet(
            [(None, False, value, False), (value, False, None, False)]
        )
    return None


def _extract_ranges(
    node: ast.Expression,
    params: Optional[Sequence[Any]],
    binding: Optional[str],
) -> Optional[Dict[str, IntervalSet]]:
    """Recursive body of :func:`extract_sargable_ranges`; ``None`` means
    "no information" (distinct from ``{}`` only in OR combination)."""
    if isinstance(node, ast.BinaryOp):
        op = node.op
        if op == "AND":
            left = _extract_ranges(node.left, params, binding)
            right = _extract_ranges(node.right, params, binding)
            if left is None:
                return right
            if right is None:
                return left
            merged = dict(left)
            for name, ranges in right.items():
                have = merged.get(name)
                if have is None:
                    merged[name] = ranges
                else:
                    try:
                        merged[name] = have.intersect(ranges)
                    except _Incomparable:
                        del merged[name]
            return merged
        if op == "OR":
            left = _extract_ranges(node.left, params, binding)
            right = _extract_ranges(node.right, params, binding)
            if left is None or right is None:
                return None
            return {
                name: left[name].union(right[name])
                for name in left.keys() & right.keys()
            }
        if op in _COMPARISONS:
            column = _ref_column(node.left, binding)
            if column is not None:
                known, value = _const_bound(node.right, params)
                if known:
                    ranges = _comparison_set(op, value)
                    if ranges is not None:
                        return {column: ranges}
            column = _ref_column(node.right, binding)
            if column is not None:
                known, value = _const_bound(node.left, params)
                if known:
                    ranges = _comparison_set(_SWAPPED_COMPARISON[op], value)
                    if ranges is not None:
                        return {column: ranges}
        return None
    if isinstance(node, ast.IsNull):
        column = _ref_column(node.operand, binding)
        if column is None:
            return None
        if node.negated:
            return {column: IntervalSet([(None, False, None, False)], False)}
        return {column: IntervalSet([], True)}
    if isinstance(node, ast.Between):
        column = _ref_column(node.operand, binding)
        if column is None:
            return None
        low_known, low = _const_bound(node.low, params)
        high_known, high = _const_bound(node.high, params)
        if not low_known or not high_known:
            return None
        if low is None or high is None:
            # Either bound NULL makes the comparison UNKNOWN for every
            # row — never TRUE, negated or not (see between_fn above).
            return {column: IntervalSet.empty()}
        if node.negated:
            return {
                column: IntervalSet(
                    [(None, False, low, False), (high, False, None, False)]
                )
            }
        return {column: IntervalSet([(low, True, high, True)])}
    if isinstance(node, ast.InList):
        if node.negated:
            return None
        column = _ref_column(node.operand, binding)
        if column is None:
            return None
        points: List[Any] = []
        for item in node.items:
            known, value = _const_bound(item, params)
            if not known:
                return None
            if value is None:
                continue  # a NULL item can never make IN return TRUE
            points.append(value)
        return {column: IntervalSet([(v, True, v, True) for v in points])}
    return None
