"""SQL tokenizer.

Hand-written scanner producing a flat token list for the recursive-descent
parser.  Keywords are recognised case-insensitively; identifiers keep their
original spelling (name resolution lower-cases).  The DataSpread constructs
``RANGEVALUE`` / ``RANGETABLE`` need no special lexing — their arguments
(``B1``, ``A1:D100``) tokenize as identifier / colon / identifier and are
reassembled by the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SqlSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit offset distinct all
    and or not in is null like between as on using natural inner left right
    outer cross join insert into values update set delete create table if
    exists drop alter add column rename to primary key unique default
    case when then else end true false at position with union
    """.split()
)

_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPS = "+-*/%=<>(),.;?:"


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    text: str
    position: int

    def matches(self, kind: str, text: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        if text is None:
            return True
        if kind == "KEYWORD":
            return self.text.lower() == text.lower()
        return self.text == text


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        ch = sql[index]
        if ch.isspace():
            index += 1
            continue
        # -- comments --------------------------------------------------
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if sql.startswith("/*", index):
            end = sql.find("*/", index + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", index)
            index = end + 2
            continue
        # -- strings ----------------------------------------------------
        if ch == "'":
            start = index
            index += 1
            pieces: List[str] = []
            while True:
                if index >= length:
                    raise SqlSyntaxError("unterminated string literal", start)
                if sql[index] == "'":
                    if index + 1 < length and sql[index + 1] == "'":
                        pieces.append("'")
                        index += 2
                        continue
                    index += 1
                    break
                pieces.append(sql[index])
                index += 1
            tokens.append(Token("STRING", "".join(pieces), start))
            continue
        # -- quoted identifiers ------------------------------------------
        if ch == '"':
            start = index
            end = sql.find('"', index + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", start)
            tokens.append(Token("IDENT", sql[index + 1 : end], start))
            index = end + 1
            continue
        # -- numbers -------------------------------------------------------
        if ch.isdigit() or (ch == "." and index + 1 < length and sql[index + 1].isdigit()):
            start = index
            while index < length and (sql[index].isdigit() or sql[index] == "."):
                index += 1
            if index < length and sql[index] in "eE":
                probe = index + 1
                if probe < length and sql[probe] in "+-":
                    probe += 1
                if probe < length and sql[probe].isdigit():
                    index = probe
                    while index < length and sql[index].isdigit():
                        index += 1
            text = sql[start:index]
            if text.count(".") > 1:
                raise SqlSyntaxError(f"malformed number {text!r}", start)
            tokens.append(Token("NUMBER", text, start))
            continue
        # -- identifiers / keywords ------------------------------------------
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (sql[index].isalnum() or sql[index] == "_"):
                index += 1
            text = sql[start:index]
            kind = "KEYWORD" if text.lower() in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, start))
            continue
        # -- operators ----------------------------------------------------------
        two = sql[index : index + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("OP", two, index))
            index += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("OP", ch, index))
            index += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", index)
    tokens.append(Token("EOF", "", length))
    return tokens
