"""Query planner: AST → operator tree.

Interface-aware query processing (paper §3: "the query processor is enhanced
to support and optimize the execution for positional addressing").  The
planner resolves names against the catalog *and* against spreadsheet ranges:
``RANGETABLE`` sources become in-memory relations supplied by a
:class:`RangeResolver`, and ``RANGEVALUE`` scalars are bound at plan time —
this is how a single SQL statement joins database tables with sheet data
(Feature 1, Fig 2a).

Optimisations implemented (deliberately classical):

* **projection pushdown**: each base table's *required column set* (SELECT
  list + WHERE conjuncts + join keys + GROUP BY/HAVING/ORDER BY refs) is
  computed up front and the plan scans it through a
  :class:`~repro.engine.executor.ProjectedScan`, so only the attribute-group
  page chains covering that set are ever touched (and the store's
  co-access statistics see exactly which columns travel together),
* WHERE conjunct **pushdown** to the deepest plan node whose scope resolves
  the conjunct (including below inner joins, not below the null-producing
  side of LEFT joins); conjuncts reaching a ``ProjectedScan`` are absorbed
  into the scan and evaluated on the narrow fragments,
* **hash joins** for equi-join conditions (explicit ON, NATURAL, USING, and
  implicit ``FROM a, b WHERE a.x = b.y``), nested loops otherwise,
* single-pass hash **aggregation** with post-aggregation expression rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine import sql_ast as ast
from repro.engine.catalog import Catalog
from repro.engine.executor import (
    AggregateNode,
    AggregateSpec,
    ConcatNode,
    DistinctNode,
    ExecContext,
    FilterNode,
    HashJoin,
    IndexScan,
    LimitNode,
    NestedLoopJoin,
    PlanNode,
    ProjectedScan,
    ProjectNode,
    SortNode,
    ValuesScan,
)
from repro.engine.expr import Scope, collect_aggregates, compile_expression
from repro.engine.hybridstore import pages_for_group
from repro.errors import PlanError

__all__ = ["RangeResolver", "PlannedQuery", "Planner"]

#: Access-path cost constants, in page-read units.  Decoding and
#: filtering one row off a fetched page is ~two orders of magnitude
#: cheaper than a block read; an in-memory B+-tree descent costs a
#: fraction of a read (no I/O, some comparisons).
_ROW_DECODE_COST = 0.01
_PROBE_COST = 0.1


class RangeResolver:
    """Supplies spreadsheet data to the planner.

    The DataSpread layer implements this against live sheets; the default
    implementation refuses, which is the behaviour of a standalone database
    session with no interface attached."""

    def resolve_range_value(self, reference: str) -> Any:
        raise PlanError(f"RANGEVALUE({reference}) requires a spreadsheet context")

    def resolve_range_table(self, reference: str) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        """Returns (column_names, rows)."""
        raise PlanError(f"RANGETABLE({reference}) requires a spreadsheet context")


@dataclass
class PlannedQuery:
    plan: PlanNode
    column_names: List[str]

    def execute(self, params: Sequence[Any] = ()) -> List[Tuple[Any, ...]]:
        return list(self.plan.run(ExecContext(params)))


def _split_conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _resolvable(expression: ast.Expression, scope: Scope) -> bool:
    """Can every column reference in the expression bind in this scope?"""
    for node in ast.walk_expression(expression):
        if isinstance(node, ast.ColumnRef):
            try:
                scope.resolve(node.name, node.table)
            except PlanError:
                return False
        elif isinstance(node, ast.Star):
            return False
    return True


#: Per-binding required-column sets: a set of lower-cased column names, or
#: ``None`` meaning "every column" (a star expansion or NATURAL join).
RequiredColumns = Dict[str, Optional[Set[str]]]


class Planner:
    def __init__(
        self,
        catalog: Catalog,
        resolver: Optional[RangeResolver] = None,
        projection_pushdown: bool = True,
        vectorized: bool = True,
        data_skipping: bool = True,
    ):
        self.catalog = catalog
        self.resolver = resolver if resolver is not None else RangeResolver()
        # Off = every table scan is full-width (the pre-pipeline
        # behaviour); benchmarks use this to measure what the
        # column-set-aware path saves.
        self.projection_pushdown = projection_pushdown
        # Off = scans materialise one tuple per row (the pre-batching
        # behaviour); the comparison baseline for the vectorized path.
        self.vectorized = vectorized
        # Off = scans decode every covering page and index access paths
        # are never chosen — the PR-9 baseline for the skipping benchmark.
        self.data_skipping = data_skipping

    # -- public entry points ------------------------------------------------

    def plan_select(self, stmt) -> PlannedQuery:
        if isinstance(stmt, ast.CompoundSelect):
            return self._plan_compound(stmt)
        return self._plan_select(stmt)

    def _plan_compound(self, stmt: ast.CompoundSelect) -> PlannedQuery:
        planned = [self._plan_select(select) for select in stmt.selects]
        widths = {len(p.column_names) for p in planned}
        if len(widths) != 1:
            raise PlanError("UNION members must have the same number of columns")
        dedup_flags = [op == "union" for op in stmt.operators]
        node = ConcatNode([p.plan for p in planned], dedup_flags)
        return PlannedQuery(node, planned[0].column_names)

    def _subquery_runner(self, params_holder: Sequence[Any] = ()):
        """Executes an uncorrelated subselect.  Parameters do not propagate
        into subqueries (uncorrelated-only support; see DESIGN.md)."""
        def runner(select: ast.SelectStmt) -> List[Tuple[Any, ...]]:
            planned = self._plan_select(select)
            return planned.execute(params_holder)

        return runner

    def _compile(
        self,
        expression: ast.Expression,
        scope: Scope,
        agg_values: Optional[Dict[ast.FuncCall, int]] = None,
    ):
        return compile_expression(
            expression,
            scope,
            agg_values=agg_values,
            subquery_runner=self._subquery_runner(),
            range_resolver=self.resolver.resolve_range_value,
        )

    # -- required column sets -------------------------------------------------

    def _gather_tables(self, item: Optional[ast.FromItem], out: List[Tuple[str, Any]]) -> None:
        """All base-table bindings under a FROM item (subqueries plan
        their own column sets recursively and are not descended into)."""
        if isinstance(item, ast.TableRef):
            out.append((item.binding.lower(), self.catalog.get(item.name)))
        elif isinstance(item, ast.Join):
            self._gather_tables(item.left, out)
            self._gather_tables(item.right, out)

    def _required_columns(self, stmt: ast.SelectStmt) -> RequiredColumns:
        """The minimal column set each base table must supply.

        Collects every column reference in the statement — SELECT list,
        WHERE, GROUP BY, HAVING, ORDER BY, and join conditions — and
        attributes it to the bindings that can resolve it (an unqualified
        name charges every table having that column: a superset is always
        safe, the planner's scope resolution still raises on genuine
        ambiguity).  ``None`` marks a full-width binding: a star
        expansion, or membership in a NATURAL join (whose common-column
        computation needs the full schemas).  A bare ``COUNT(*)`` needs
        no columns at all — the scan then drives off the positional index
        without touching a single page.
        """
        tables: List[Tuple[str, Any]] = []
        self._gather_tables(stmt.source, tables)
        required: RequiredColumns = {binding: set() for binding, _ in tables}

        def mark_all(binding: Optional[str]) -> None:
            if binding is None:
                for key in required:
                    required[key] = None
            elif binding in required:
                required[binding] = None

        def add(binding: str, name: str) -> None:
            # Untracked bindings (subquery aliases) and full-width
            # bindings both fall through.
            wanted = required.get(binding)
            if wanted is not None:
                wanted.add(name.lower())

        def collect(expression: ast.Expression) -> None:
            for node in ast.walk_expression(expression):
                if isinstance(node, ast.ColumnRef):
                    if node.table is not None:
                        add(node.table.lower(), node.name)
                    else:
                        for binding, table in tables:
                            if table.schema.has_column(node.name):
                                add(binding, node.name)
                # A Star inside an expression is COUNT(*): counts rows,
                # needs no column data.

        def walk_joins(item: Optional[ast.FromItem]) -> None:
            if not isinstance(item, ast.Join):
                return
            walk_joins(item.left)
            walk_joins(item.right)
            if item.condition is not None:
                collect(item.condition)
            for name in item.using:
                for binding, table in tables:
                    if table.schema.has_column(name):
                        add(binding, name)
            if item.natural:
                # NATURAL join semantics hinge on the *full* column sets
                # of both sides; keep every table underneath full-width.
                subtree: List[Tuple[str, Any]] = []
                self._gather_tables(item, subtree)
                for binding, _ in subtree:
                    mark_all(binding)

        for item in stmt.items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                mark_all(expression.table.lower() if expression.table else None)
            else:
                collect(expression)
        for clause in (stmt.where, stmt.having, stmt.limit, stmt.offset):
            if clause is not None:
                collect(clause)
        for expression in stmt.group_by:
            collect(expression)
        for order in stmt.order_by:
            collect(order.expression)
        walk_joins(stmt.source)
        return required

    # -- FROM clause -----------------------------------------------------------

    def _plan_source(
        self,
        item: ast.FromItem,
        pending: List[ast.Expression],
        allow_push: bool,
        required: Optional[RequiredColumns] = None,
    ) -> PlanNode:
        if isinstance(item, ast.TableRef):
            table = self.catalog.get(item.name)
            names: Optional[List[str]] = None
            if self.projection_pushdown and required is not None:
                wanted = required.get(item.binding.lower())
                if wanted is not None:
                    names = [
                        name
                        for name in table.column_names
                        if name.lower() in wanted
                    ]
            node: PlanNode = ProjectedScan(
                table,
                item.binding,
                names,
                vectorized=self.vectorized,
                data_skipping=self.data_skipping,
            )
        elif isinstance(item, ast.RangeTable):
            columns, rows = self.resolver.resolve_range_table(item.reference)
            binding = item.binding
            node = ValuesScan(rows, [(binding, name) for name in columns], binding)
        elif isinstance(item, ast.SubquerySource):
            inner = self._plan_select(item.select)
            names = inner.column_names
            rebound = [(item.alias, name) for name in names]
            identity = [
                (lambda index: (lambda row, params: row[index]))(i)
                for i in range(len(names))
            ]
            node = ProjectNode(inner.plan, identity, rebound)
        elif isinstance(item, ast.Join):
            return self._plan_join(item, pending, allow_push, required)
        else:  # pragma: no cover - parser prevents this
            raise PlanError(f"unsupported FROM item {type(item).__name__}")
        if allow_push:
            node = self._push_filters(node, pending)
            if isinstance(node, ProjectedScan) and node.predicates:
                node = self._choose_access_path(node)
        return node

    def _choose_access_path(self, scan: ProjectedScan) -> PlanNode:
        """Cost-based index-vs-scan choice for one base-table scan.

        Prices both paths with the E6 block model: the batch scan costs
        the covering chains' pages, discounted by the zone-map skip
        fraction the store can already prove from cached page zones; an
        index path costs one probe descent plus a late-materialized row
        fetch (one page touch per covering group) per estimated match.
        Extraction runs with ``params=None`` so a ``?`` point probe still
        shapes the decision; actual bounds are re-extracted at run time.
        """
        if not self.data_skipping:
            return scan
        ranges = scan.sargable_ranges(None)
        if not ranges:
            return scan
        table = scan.table
        store = table.store
        n_rows = store.n_rows
        page_capacity = store.pool.page_capacity
        covering = {
            table.schema.group_of(name) for name in scan.column_names
        }
        scan_pages = sum(
            pages_for_group(
                n_rows, len(table.schema.groups[group]), page_capacity
            )
            for group in covering
        )
        skip = 0.0
        for name, interval_set in ranges.items():
            skip = max(skip, store.skip_fraction(name, interval_set))
        # Pages the scan must fetch (at least one per covering group),
        # plus a CPU term: every row on a surviving page is decoded and
        # filtered even when only a handful match.
        surviving = 1.0 - skip
        scan_cost = (
            max(float(max(1, len(covering))), scan_pages * surviving)
            + _ROW_DECODE_COST * n_rows * surviving
        )
        best: Optional[Tuple[float, Any]] = None
        for name, interval_set in ranges.items():
            index = table.index_for(name)
            if index is None or interval_set.includes_null:
                continue
            points = interval_set.points()
            if points is not None:
                estimated = (
                    len(points)
                    if index.unique
                    else min(n_rows, max(len(points), n_rows // 100))
                )
            else:
                # Range probe with no zone statistics to sharpen it:
                # assume a decile survives — selective enough to beat a
                # scan only on wide tables or tight buffer pools.
                estimated = max(1, n_rows // 10)
            # The B+-tree is memory-resident, so the descent is CPU only
            # (_PROBE_COST); the real price is the late-materialized row
            # fetch — one page touch per covering group per match.
            cost = _PROBE_COST + estimated * max(1, len(covering))
            if best is None or cost < best[0]:
                best = (cost, index)
        if best is not None and best[0] < scan_cost:
            node = IndexScan(table, scan.binding, scan.column_names, best[1])
            for predicate, description, expression in scan.predicates:
                # Same (binding, column) scope shape, so the compiled
                # closures carry over unchanged.
                node.add_predicate(predicate, description, expression)
            return node
        return scan

    def _push_filters(self, node: PlanNode, pending: List[ast.Expression]) -> PlanNode:
        taken = [c for c in pending if _resolvable(c, node.scope)]
        for conjunct in taken:
            pending.remove(conjunct)
            compiled = self._compile(conjunct, node.scope)
            if isinstance(node, ProjectedScan):
                # Absorb into the scan: the predicate runs on the narrow
                # fragment before any output tuple is materialised.
                node.add_predicate(compiled, "pushed", conjunct)
            else:
                node = FilterNode(node, compiled, "pushed")
        return node

    def _plan_join(
        self,
        join: ast.Join,
        pending: List[ast.Expression],
        allow_push: bool,
        required: Optional[RequiredColumns] = None,
    ) -> PlanNode:
        left_push = allow_push
        right_push = allow_push and join.kind != "left"
        left = self._plan_source(join.left, pending, left_push, required)
        right = self._plan_source(join.right, pending, right_push, required)

        condition_conjuncts = _split_conjuncts(join.condition)
        drop_right: List[str] = []

        if join.natural or join.using:
            if join.using:
                common = [name.lower() for name in join.using]
            else:
                left_names = {name for _, name in left.scope.columns}
                right_names = {name for _, name in right.scope.columns}
                common = sorted(left_names & right_names)
            if join.natural and not common:
                # NATURAL JOIN with no shared columns degrades to cross join.
                common = []
            for name in common:
                condition_conjuncts.append(
                    ast.BinaryOp(
                        "=",
                        ast.ColumnRef(name, table=_sole_binding(left.scope, name)),
                        ast.ColumnRef(name, table=_sole_binding(right.scope, name)),
                    )
                )
            drop_right = list(common)

        # Implicit-join predicates: WHERE conjuncts spanning both sides of an
        # inner join become join conditions.
        if join.kind in ("inner", "cross") and allow_push:
            combined_scope = left.scope.merged_with(right.scope)
            for conjunct in list(pending):
                if (
                    _resolvable(conjunct, combined_scope)
                    and not _resolvable(conjunct, left.scope)
                    and not _resolvable(conjunct, right.scope)
                ):
                    pending.remove(conjunct)
                    condition_conjuncts.append(conjunct)

        kind = "left" if join.kind == "left" else "inner"
        node = self._build_join(left, right, condition_conjuncts, kind)

        if drop_right:
            node = self._project_out_right_duplicates(node, left, right, drop_right)
        return node

    def _build_join(
        self,
        left: PlanNode,
        right: PlanNode,
        conjuncts: List[ast.Expression],
        kind: str,
    ) -> PlanNode:
        combined_scope = left.scope.merged_with(right.scope)
        equi: List[Tuple[int, int]] = []
        residual: List[ast.Expression] = []
        for conjunct in conjuncts:
            pair = self._equi_key(conjunct, left.scope, right.scope)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        if equi:
            residual_fn = None
            if residual:
                residual_fn = self._compile(_conjoin(residual), combined_scope)
            return HashJoin(
                left,
                right,
                [pair[0] for pair in equi],
                [pair[1] for pair in equi],
                kind,
                residual_fn,
            )
        condition_fn = None
        if conjuncts:
            condition_fn = self._compile(_conjoin(conjuncts), combined_scope)
        nl_kind = kind if condition_fn is not None or kind == "left" else "cross"
        return NestedLoopJoin(left, right, condition_fn, nl_kind)

    def _equi_key(
        self, conjunct: ast.Expression, left: Scope, right: Scope
    ) -> Optional[Tuple[int, int]]:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        sides = (conjunct.left, conjunct.right)
        if not all(isinstance(side, ast.ColumnRef) for side in sides):
            return None
        first, second = sides
        for a, b in ((first, second), (second, first)):
            try:
                left_index = left.resolve(a.name, a.table)
            except PlanError:
                continue
            try:
                right_index = right.resolve(b.name, b.table)
            except PlanError:
                continue
            # Ensure the other side does NOT also resolve on the same scope
            # (e.g. self-comparison within one table is a filter, not a key).
            return (left_index, right_index)
        return None

    def _project_out_right_duplicates(
        self,
        node: PlanNode,
        left: PlanNode,
        right: PlanNode,
        common: List[str],
    ) -> PlanNode:
        keep: List[int] = list(range(len(left.columns)))
        for offset, (_, name) in enumerate(right.scope.columns):
            if name not in common:
                keep.append(len(left.columns) + offset)
        functions = [
            (lambda index: (lambda row, params: row[index]))(i) for i in keep
        ]
        columns = [node.columns[i] for i in keep]
        return ProjectNode(node, functions, columns)

    # -- SELECT ---------------------------------------------------------------

    def _plan_select(self, stmt: ast.SelectStmt) -> PlannedQuery:
        pending = _split_conjuncts(stmt.where)
        if stmt.source is None:
            node: PlanNode = ValuesScan([()], [], "dual")
        else:
            required = self._required_columns(stmt)
            node = self._plan_source(
                stmt.source, pending, allow_push=True, required=required
            )
        # Whatever could not be pushed applies here.
        for conjunct in pending:
            node = FilterNode(node, self._compile(conjunct, node.scope), "where")

        # -- aggregation ----------------------------------------------------
        aggregate_nodes: List[ast.FuncCall] = []
        for item in stmt.items:
            if not isinstance(item.expression, ast.Star):
                aggregate_nodes.extend(collect_aggregates(item.expression))
        if stmt.having is not None:
            aggregate_nodes.extend(collect_aggregates(stmt.having))
        for order in stmt.order_by:
            aggregate_nodes.extend(collect_aggregates(order.expression))
        # Deduplicate, preserving order.
        unique_aggs: List[ast.FuncCall] = []
        for node_expr in aggregate_nodes:
            if node_expr not in unique_aggs:
                unique_aggs.append(node_expr)
        is_aggregated = bool(unique_aggs) or bool(stmt.group_by)

        agg_values: Optional[Dict[ast.FuncCall, int]] = None
        if is_aggregated:
            source_scope = node.scope
            group_fns = [self._compile(e, source_scope) for e in stmt.group_by]
            specs: List[AggregateSpec] = []
            agg_values = {}
            for index, call in enumerate(unique_aggs):
                argument = None
                if call.args and not isinstance(call.args[0], ast.Star):
                    argument = self._compile(call.args[0], source_scope)
                specs.append(AggregateSpec(call.name, argument, call.distinct))
                agg_values[call] = len(source_scope) + index
            node = AggregateNode(node, group_fns, specs, bool(stmt.group_by))
            if stmt.having is not None:
                node = FilterNode(
                    node,
                    self._compile(stmt.having, node.scope, agg_values),
                    "having",
                )
        elif stmt.having is not None:
            raise PlanError("HAVING requires GROUP BY or aggregates")

        # -- projection --------------------------------------------------------
        output_fns = []
        output_columns: List[Tuple[Optional[str], str]] = []
        for index, item in enumerate(stmt.items):
            if isinstance(item.expression, ast.Star):
                if is_aggregated:
                    raise PlanError("'*' cannot be combined with aggregation")
                star = item.expression
                if star.table is not None:
                    indexes = node.scope.indexes_of_binding(star.table)
                    if not indexes:
                        raise PlanError(f"unknown table alias {star.table!r}")
                else:
                    indexes = list(range(len(node.columns)))
                for source_index in indexes:
                    output_fns.append(
                        (lambda i: (lambda row, params: row[i]))(source_index)
                    )
                    output_columns.append((None, node.columns[source_index][1]))
                continue
            fn = self._compile(item.expression, node.scope, agg_values)
            output_fns.append(fn)
            output_columns.append((None, _output_name(item, index)))
        projected = ProjectNode(node, output_fns, output_columns)
        pre_projection = node
        node = projected

        if stmt.distinct:
            node = DistinctNode(node)

        # -- ORDER BY ------------------------------------------------------------
        if stmt.order_by:
            keys = []
            hidden_fns = []
            hidden_columns: List[Tuple[Optional[str], str]] = []
            visible = len(output_columns)
            for order in stmt.order_by:
                expression = order.expression
                key_index: Optional[int] = None
                if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
                    ordinal = expression.value
                    if not (1 <= ordinal <= visible):
                        raise PlanError(f"ORDER BY ordinal {ordinal} out of range")
                    key_index = ordinal - 1
                elif isinstance(expression, ast.ColumnRef):
                    # Match against output aliases/names; a qualified ref
                    # (t.name) matches when exactly one output column has
                    # that name (the common SELECT DISTINCT t.x ORDER BY
                    # t.x case).
                    matches = [
                        i
                        for i, (_, name) in enumerate(output_columns)
                        if name == expression.name.lower()
                    ]
                    if len(matches) == 1:
                        key_index = matches[0]
                if key_index is not None:
                    keys.append(
                        ((lambda i: (lambda row, params: row[i]))(key_index), order.descending)
                    )
                else:
                    if stmt.distinct:
                        raise PlanError(
                            "ORDER BY with DISTINCT must reference selected columns"
                        )
                    hidden_index = visible + len(hidden_fns)
                    hidden_fns.append(
                        self._compile(expression, pre_projection.scope, agg_values)
                    )
                    hidden_columns.append((None, f"__sort{len(hidden_fns)}"))
                    keys.append(
                        ((lambda i: (lambda row, params: row[i]))(hidden_index), order.descending)
                    )
            if hidden_fns:
                # Re-project with hidden sort columns appended.
                node = ProjectNode(
                    pre_projection,
                    output_fns + hidden_fns,
                    output_columns + hidden_columns,
                )
            node = SortNode(node, keys)
            if hidden_fns:
                strip = [
                    (lambda i: (lambda row, params: row[i]))(i)
                    for i in range(visible)
                ]
                node = ProjectNode(node, strip, output_columns)

        # -- LIMIT/OFFSET ------------------------------------------------------------
        if stmt.limit is not None or stmt.offset is not None:
            empty_scope = Scope([])
            limit_fn = (
                self._compile(stmt.limit, empty_scope) if stmt.limit is not None else None
            )
            offset_fn = (
                self._compile(stmt.offset, empty_scope) if stmt.offset is not None else None
            )
            node = LimitNode(node, limit_fn, offset_fn)

        return PlannedQuery(node, [name for _, name in output_columns])


def _conjoin(conjuncts: List[ast.Expression]) -> ast.Expression:
    expression = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expression = ast.BinaryOp("AND", expression, conjunct)
    return expression


def _sole_binding(scope: Scope, name: str) -> Optional[str]:
    """Binding owning the (unique) column ``name`` in this scope."""
    owners = [
        binding for binding, column in scope.columns if column == name.lower()
    ]
    if len(owners) != 1:
        raise PlanError(f"column {name!r} is ambiguous in join")
    return owners[0]


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias.lower()
    expression = item.expression
    if isinstance(expression, ast.ColumnRef):
        return expression.name.lower()
    if isinstance(expression, ast.FuncCall):
        return expression.name.lower()
    if isinstance(expression, ast.RangeValue):
        return f"rangevalue_{index + 1}"
    return f"col{index + 1}"
