"""System catalog: the registry of tables.

Case-insensitive table names (SQL convention).  The catalog also owns the
shared :class:`~repro.engine.pager.BufferPool` so that cross-table I/O
accounting has a single place to read stats from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.engine.pager import BufferPool
from repro.engine.schema import TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.table import Table
from repro.errors import CatalogError

__all__ = ["Catalog"]


class Catalog:
    """Name → table registry with a shared buffer pool."""

    def __init__(
        self,
        pool: Optional[BufferPool] = None,
        page_capacity: int = 128,
        buffer_frames: Optional[int] = None,
    ):
        """``buffer_frames`` bounds the shared buffer pool (None =
        unbounded) so benchmarks can measure re-read traffic honestly."""
        self.pool = (
            pool
            if pool is not None
            else BufferPool(capacity=buffer_frames, page_capacity=page_capacity)
        )
        self._tables: Dict[str, Table] = {}
        # Runtime invariant checks, propagated to every table (and its
        # store) this catalog creates or registers.
        self.sanitizer = NULL_SANITIZER

    def _arm(self, table: Table) -> Table:
        table.sanitizer = self.sanitizer
        table.store.sanitizer = self.sanitizer
        return table

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        layout: LayoutPolicy = LayoutPolicy.HYBRID,
        if_not_exists: bool = False,
    ) -> Table:
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, layout, self.pool, self.pool.page_capacity)
        self._tables[key] = self._arm(table)
        return table

    def register(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = self._arm(table)

    def get(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError(f"no such table {name!r}")
        return table

    def try_get(self, name: str) -> Optional[Table]:
        return self._tables.get(name.lower())

    def drop(self, name: str, if_exists: bool = False) -> Optional[Table]:
        key = name.lower()
        table = self._tables.pop(key, None)
        if table is None and not if_exists:
            raise CatalogError(f"no such table {name!r}")
        return table

    def rename(self, old: str, new: str) -> None:
        table = self.get(old)
        if new.lower() in self._tables:
            raise CatalogError(f"table {new!r} already exists")
        del self._tables[old.lower()]
        table.name = new
        self._tables[new.lower()] = table

    def table_names(self) -> List[str]:
        return sorted(table.name for table in self._tables.values())

    def tables(self) -> List[Table]:
        return [self._tables[key] for key in sorted(self._tables)]

    # -- secondary indexes ------------------------------------------------

    def table_of_index(self, index_name: str) -> Optional[Table]:
        """The table owning ``index_name``, or None.  Indexes live on
        their tables (no separate registry to fall out of sync); names
        are globally unique so ``DROP INDEX`` needs no table clause."""
        key = index_name.lower()
        for table in self._tables.values():
            if key in table.indexes:
                return table
        return None

    def create_index(
        self,
        name: str,
        table_name: str,
        column: str,
        unique: bool = False,
        if_not_exists: bool = False,
    ) -> Optional[Table]:
        """Create a secondary index; returns the owning table, or None
        when ``if_not_exists`` swallowed a duplicate."""
        if self.table_of_index(name) is not None:
            if if_not_exists:
                return None
            raise CatalogError(f"index {name!r} already exists")
        table = self.get(table_name)
        table.create_index(name, column, unique)
        return table

    def drop_index(self, name: str, if_exists: bool = False) -> Optional[Table]:
        """Drop an index by name; returns the table it lived on (None
        when ``if_exists`` swallowed a miss)."""
        table = self.table_of_index(name)
        if table is None:
            if if_exists:
                return None
            raise CatalogError(f"no such index {name!r}")
        table.drop_index(name)
        return table
