"""Page-based storage substrate with block-I/O accounting.

The paper's storage-manager claims are about *disk blocks touched* ("with an
insight to reduce the disk blocks to update during a schema change", §3).
To reproduce those claims on a laptop we simulate a disk: a
:class:`DiskManager` holds immutable page snapshots and counts every read,
write and allocation; a :class:`BufferPool` sits in front with an LRU of
mutable :class:`Page` objects.  Benchmarks (E6, E8) read the counters off
:class:`IOStats` rather than wall-clock alone, which makes the *shape* of the
paper's claims measurable deterministically.

A page stores an ordered list of Python-tuple records plus a small header
dict.  ``page_capacity`` bounds the number of records per page, standing in
for the byte budget of a real 8 KB block.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.errors import StorageError

__all__ = [
    "IOStats",
    "EMPTY_IO_STATS",
    "Page",
    "DiskManager",
    "BufferPool",
    "DEFAULT_PAGE_CAPACITY",
]

#: Records per page; ~8KB block / ~64B row in spirit.
DEFAULT_PAGE_CAPACITY = 128


@dataclass
class IOStats:
    """Counters for the simulated disk.  Block granularity, plus the
    *simulated payload bytes* moved — the page-encoding layer charges
    decoded bytes here so layout tooling can see that an encoded chain
    moves less data per block than a plain one."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.reads,
            self.writes,
            self.allocations,
            self.frees,
            self.bytes_read,
            self.bytes_written,
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counts accumulated since ``earlier`` (an older snapshot)."""
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.allocations - earlier.allocations,
            self.frees - earlier.frees,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
        )

    def reset(self) -> None:
        self.reads = self.writes = self.allocations = self.frees = 0
        self.bytes_read = self.bytes_written = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"allocations={self.allocations}, frees={self.frees}, "
            f"bytes_read={self.bytes_read}, bytes_written={self.bytes_written})"
        )


class _FrozenIOStats(IOStats):
    """An immutable all-zero :class:`IOStats` shared across callers.

    ``tag_stats`` misses used to allocate a fresh ``IOStats()`` per call,
    which both wasted allocations on read-heavy stat paths and invited the
    bug of mutating a throwaway object; this one raises instead.  Use
    :meth:`snapshot` to get a private mutable copy."""

    _sealed = False

    def __setattr__(self, name: str, value: Any) -> None:
        if _FrozenIOStats._sealed:
            raise StorageError(
                "the shared empty IOStats is immutable; use .snapshot() for a copy"
            )
        super().__setattr__(name, value)

    def reset(self) -> None:
        pass  # already all zeros, and must stay that way


#: The shared all-zero stats returned for untouched tags.
EMPTY_IO_STATS = _FrozenIOStats()
_FrozenIOStats._sealed = True


@dataclass
class Page:
    """An in-buffer, mutable page."""

    page_id: int
    records: List[Tuple[Any, ...]] = field(default_factory=list)
    header: Dict[str, Any] = field(default_factory=dict)
    dirty: bool = False

    def mark_dirty(self) -> None:
        self.dirty = True

    @property
    def n_records(self) -> int:
        return len(self.records)


class DiskManager:
    """The simulated disk: page id → frozen snapshot.

    Snapshots are deep copies so that buffer-pool mutations cannot leak to
    "disk" without an explicit write — exactly the property that makes the
    write counters trustworthy.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, Tuple[List[Tuple[Any, ...]], Dict[str, Any]]] = {}
        self._next_id = 0
        self.stats = IOStats()
        # Per-tag accounting: a tag identifies the logical owner of a page
        # (the stores tag pages ``(owner, group_id)`` so layout tooling can
        # read per-attribute-group I/O).  Tag stats survive page frees so
        # counters stay cumulative.
        self._tags: Dict[int, Any] = {}
        self._tag_stats: Dict[Any, IOStats] = {}
        # The maintenance worker charges I/O from its own thread; every
        # counter bump is read-modify-write, so all accounting and page-map
        # mutation happens under this lock.
        self._lock = threading.Lock()

    def _bump(self, page_id: int, field_name: str) -> None:
        """Charge one block operation to ``page_id``'s tag.

        Caller holds ``_lock`` — every public entry point that reaches
        here takes it first."""
        tag = self._tags.get(page_id)
        if tag is None:
            return
        stats = self._tag_stats.get(tag)
        if stats is None:
            stats = self._tag_stats[tag] = IOStats()
        setattr(stats, field_name, getattr(stats, field_name) + 1)

    def add_bytes(self, tag: Any, bytes_read: int = 0, bytes_written: int = 0) -> None:
        """Charge simulated payload bytes globally and to ``tag``.

        Block counters move automatically with read/write; byte counters
        are charged explicitly by the store, which alone knows whether a
        page held encoded fragments (fewer bytes) or plain records."""
        with self._lock:
            self.stats.bytes_read += bytes_read
            self.stats.bytes_written += bytes_written
            if tag is None:
                return
            stats = self._tag_stats.get(tag)
            if stats is None:
                stats = self._tag_stats[tag] = IOStats()
            stats.bytes_read += bytes_read
            stats.bytes_written += bytes_written

    def allocate(self, tag: Any = None) -> int:
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._pages[page_id] = ([], {})
            self.stats.allocations += 1
            if tag is not None:
                self._tags[page_id] = tag
                self._bump(page_id, "allocations")
            return page_id

    def tag_stats(self, tag: Any) -> IOStats:
        """Cumulative I/O charged to one tag.

        A never-touched tag gets the shared immutable
        :data:`EMPTY_IO_STATS` — no allocation per miss, and accidental
        mutation raises instead of silently updating a throwaway."""
        with self._lock:
            return self._tag_stats.get(tag, EMPTY_IO_STATS)

    def stats_snapshot(self) -> Dict[str, Any]:
        """One-pass aggregate over the global counters and every tag,
        shaped for the metrics exporter."""
        tagged = IOStats()
        with self._lock:
            for stats in self._tag_stats.values():
                tagged.reads += stats.reads
                tagged.writes += stats.writes
                tagged.allocations += stats.allocations
                tagged.frees += stats.frees
        return {
            "pager_reads": self.stats.reads,
            "pager_writes": self.stats.writes,
            "pager_allocations": self.stats.allocations,
            "pager_frees": self.stats.frees,
            "pager_bytes_read": self.stats.bytes_read,
            "pager_bytes_written": self.stats.bytes_written,
            "pager_pages": self.n_pages,
            "pager_tags": len(self._tag_stats),
            "pager_tagged_reads": tagged.reads,
            "pager_tagged_writes": tagged.writes,
        }

    def drop_tag_stats(self, tag: Any) -> None:
        """Forget a tag's counters once its owner is gone — migrations
        mint fresh group tags, so dead ones would pile up forever."""
        with self._lock:
            self._tag_stats.pop(tag, None)

    def set_tag_stats(self, tag: Any, stats: IOStats) -> None:
        """Overwrite a tag's cumulative counters (recovery: restores the
        pre-crash per-group I/O that page tags, being process-local,
        cannot carry across a restart themselves)."""
        with self._lock:
            self._tag_stats[tag] = stats.snapshot()

    def read(self, page_id: int) -> Page:
        with self._lock:
            if page_id not in self._pages:
                raise StorageError(f"read of unallocated page {page_id}")
            records, header = self._pages[page_id]
            self.stats.reads += 1
            self._bump(page_id, "reads")
        # Stored snapshots are never mutated in place (writes replace the
        # tuple wholesale), so the copy can happen outside the lock.
        return Page(page_id, copy.deepcopy(records), copy.deepcopy(header))

    def write(self, page: Page) -> None:
        records = copy.deepcopy(page.records)
        header = copy.deepcopy(page.header)
        with self._lock:
            if page.page_id not in self._pages:
                raise StorageError(f"write to unallocated page {page.page_id}")
            self._pages[page.page_id] = (records, header)
            self.stats.writes += 1
            self._bump(page.page_id, "writes")

    def free(self, page_id: int) -> None:
        with self._lock:
            if page_id not in self._pages:
                raise StorageError(f"free of unallocated page {page_id}")
            del self._pages[page_id]
            self.stats.frees += 1
            self._bump(page_id, "frees")
            self._tags.pop(page_id, None)

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def page_ids(self) -> List[int]:
        return sorted(self._pages)


class BufferPool:
    """LRU buffer pool over a :class:`DiskManager`.

    ``capacity`` is the number of buffered pages; evicting a dirty page
    writes it back.  A capacity of ``None`` means unbounded (still counts
    first-touch reads, which is what most benchmarks want).
    """

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        capacity: Optional[int] = None,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
    ):
        if page_capacity <= 0:
            raise StorageError("page_capacity must be positive")
        if capacity is not None and capacity < 1:
            # capacity <= 0 would make _admit evict the page it just
            # admitted, so mutations through the still-held Page reference
            # would never be seen by flush_all — silent lost writes.
            raise StorageError("buffer pool capacity must be >= 1 (or None)")
        self.disk = disk if disk is not None else DiskManager()
        self.capacity = capacity
        self.page_capacity = page_capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        # Per-frame pin counts: store snapshots pin chain heads so that a
        # concurrent writer's evictions/frees cannot push a page an open
        # reader still walks out from under it.  Guarded by ``_mutation_lock``
        # (an RLock: ``get`` is re-entered from ``_admit`` paths).
        self._pins: Dict[int, int] = {}
        self._mutation_lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        # Runtime invariant checks (repro.analysis.sanitizer); the null
        # object keeps the off cost to one attribute load + boolean test.
        self.sanitizer = NULL_SANITIZER

    # -- page access ------------------------------------------------------

    def get(self, page_id: int) -> Page:
        """Fetch a page, reading from disk on a miss."""
        with self._mutation_lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
                self.hits += 1
                # Only encoded pages carry the freshness invariant; the header
                # test keeps the armed cost off the plain-page fast path.
                if self.sanitizer.enabled and "enc" in frame.header:
                    self.sanitizer.check_page(frame)
                return frame
            self.misses += 1
            page = self.disk.read(page_id)
            if self.sanitizer.enabled and "enc" in page.header:
                self.sanitizer.check_page(page)
            self._admit(page)
            return page

    def new_page(self, tag: Any = None) -> Page:
        """Allocate a fresh page (optionally tagged) and admit it dirty."""
        with self._mutation_lock:
            page_id = self.disk.allocate(tag)
            page = Page(page_id, dirty=True)
            self._admit(page)
            return page

    # -- snapshot pinning --------------------------------------------------

    def pin(self, page_id: int) -> None:
        """Hold ``page_id`` in the pool: eviction skips pinned frames.

        Pins are counted, so overlapping snapshots stack; the pin applies
        even while the page is not currently framed (the id stays
        pin-protected for its next admission)."""
        with self._mutation_lock:
            self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin; the frame becomes evictable at zero."""
        with self._mutation_lock:
            count = self._pins.get(page_id, 0) - 1
            if count <= 0:
                self._pins.pop(page_id, None)
            else:
                self._pins[page_id] = count

    def pin_count(self, page_id: int) -> int:
        with self._mutation_lock:
            return self._pins.get(page_id, 0)

    def tag_stats(self, tag: Any) -> IOStats:
        return self.disk.tag_stats(tag)

    def add_bytes(self, tag: Any, bytes_read: int = 0, bytes_written: int = 0) -> None:
        self.disk.add_bytes(tag, bytes_read, bytes_written)

    def stats_snapshot(self) -> Dict[str, Any]:
        """The disk's one-pass aggregate plus the pool's own hit/miss
        counters (what the metrics exporter scrapes)."""
        snap = self.disk.stats_snapshot()
        snap["buffer_hits"] = self.hits
        snap["buffer_misses"] = self.misses
        snap["buffer_hit_ratio"] = round(self.hit_ratio, 4)
        snap["buffer_frames"] = len(self._frames)
        snap["buffer_pinned"] = len(self._pins)
        return snap

    def drop_tag_stats(self, tag: Any) -> None:
        self.disk.drop_tag_stats(tag)

    def set_tag_stats(self, tag: Any, stats: IOStats) -> None:
        self.disk.set_tag_stats(tag, stats)

    def free_page(self, page_id: int) -> None:
        with self._mutation_lock:
            self._frames.pop(page_id, None)
            self._pins.pop(page_id, None)
            self.disk.free(page_id)

    def _admit(self, page: Page) -> None:
        """Frame a page, evicting LRU victims past capacity.

        Caller holds ``_mutation_lock``.  Pinned frames are skipped when
        hunting for a victim; if every candidate is pinned the pool runs
        over capacity until a snapshot releases its pins — correctness
        over the frame budget."""
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        if self.capacity is not None:
            while len(self._frames) > self.capacity:
                victim_id = next(
                    (
                        pid
                        for pid in self._frames
                        if pid not in self._pins and pid != page.page_id
                    ),
                    None,
                )
                if victim_id is None:
                    break
                victim = self._frames[victim_id]
                if victim.dirty:
                    if self.sanitizer.enabled:
                        self.sanitizer.check_page(victim)
                    self.disk.write(victim)
                    victim.dirty = False
                del self._frames[victim_id]

    # -- durability ------------------------------------------------------

    def flush(self, page_id: int) -> None:
        with self._mutation_lock:
            frame = self._frames.get(page_id)
            if frame is not None and frame.dirty:
                if self.sanitizer.enabled:
                    self.sanitizer.check_page(frame)
                self.disk.write(frame)
                frame.dirty = False

    def flush_all(self) -> int:
        """Write back every dirty frame; returns the number written."""
        written = 0
        with self._mutation_lock:
            for frame in self._frames.values():
                if frame.dirty:
                    if self.sanitizer.enabled:
                        self.sanitizer.check_page(frame)
                    self.disk.write(frame)
                    frame.dirty = False
                    written += 1
        return written

    def drop_cache(self) -> None:
        """Write back and forget all frames (cold-cache benchmarking)."""
        with self._mutation_lock:
            self.flush_all()
            self._frames.clear()

    # -- stats -----------------------------------------------------------

    @property
    def stats(self) -> IOStats:
        return self.disk.stats

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
