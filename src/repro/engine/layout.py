"""Workload-adaptive storage layouts: advisor + online group migration.

The paper's Relational Storage Manager (§3) stores a table as attribute
groups precisely so the physical layout can track the workload — but a
layout frozen at CREATE TABLE cannot.  This module closes the loop:

* :class:`LayoutAdvisor` prices candidate attribute-group partitions
  against the store's observed :class:`~repro.engine.store.AccessStats`
  using the E6 cost table (:mod:`repro.engine.hybridstore`) and recommends
  a re-partition when the predicted page-I/O saving clears the migration
  cost by a configurable threshold.
* :class:`LayoutMigration` applies a recommendation **online**: the
  re-partition is decomposed into bounded split/merge steps, each a
  crash-safe build-then-swap-then-free
  :meth:`~repro.engine.store.GroupedTupleStore.restructure` of one group,
  so reads and writes keep working between steps and an interrupted
  migration leaves a fully consistent (merely intermediate) layout.

The HTAP tension this resolves (cf. Polynesia in PAPERS.md): point
inserts/reads want few wide groups (row-ish), column scans want narrow
chains (column-ish); real spreadsheet workloads interleave both, so the
winning layout changes over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, FrozenSet

from repro.engine.hybridstore import estimate_workload_blocks, restructure_blocks
from repro.engine.store import GroupedTupleStore

__all__ = [
    "LayoutRecommendation",
    "LayoutAdvisor",
    "LayoutMigration",
    "plan_groupings",
]

Grouping = List[List[str]]


def _signature(grouping: Sequence[Sequence[str]]) -> FrozenSet[FrozenSet[str]]:
    """Order-insensitive identity of a partition (member order inside a
    group changes fragment layout but not which pages an op touches)."""
    return frozenset(
        frozenset(name.lower() for name in group) for group in grouping if group
    )


def _next_grouping(
    current: Sequence[Sequence[str]], target: Sequence[Sequence[str]]
) -> Optional[Grouping]:
    """One split-or-merge step toward ``target``; None when already there.

    Split phase first: any current group straddling two target groups is
    split into its intersections with them (one group per step).  Then
    merges: the pieces of each multi-piece target group are coalesced
    (one target group per step).  Every step rebuilds only the groups it
    touches.
    """
    current_groups: Grouping = [list(group) for group in current if group]
    target_groups: Grouping = [list(group) for group in target if group]
    current_sets = [
        frozenset(name.lower() for name in group) for group in current_groups
    ]
    target_sets = [
        frozenset(name.lower() for name in group) for group in target_groups
    ]
    if set(current_sets) == set(target_sets):
        return None
    # Split: first current group that is not contained in any target group
    # is cut into its intersections with the target groups.
    for index, members in enumerate(current_sets):
        if len(current_groups[index]) > 1 and not any(
            members <= target for target in target_sets
        ):
            pieces: Grouping = []
            assigned: Set[str] = set()
            for target_set in target_sets:
                piece = [
                    name
                    for name in current_groups[index]
                    if name.lower() in target_set and name.lower() not in assigned
                ]
                if piece:
                    pieces.append(piece)
                    assigned.update(name.lower() for name in piece)
            # Columns absent from the target (racing DDL): keep them as
            # singletons so the step still covers the live schema.
            pieces.extend(
                [name]
                for name in current_groups[index]
                if name.lower() not in assigned
            )
            next_groups: Grouping = []
            for other, group in enumerate(current_groups):
                if other == index:
                    next_groups.extend(pieces)
                else:
                    next_groups.append(list(group))
            return next_groups
    # Merge: first target group whose columns live in more than one
    # current group (after the split phase, pieces exactly cover it).
    for target_group, target_set in zip(target_groups, target_sets):
        pieces = [
            index
            for index, members in enumerate(current_sets)
            if members <= target_set
        ]
        if len(pieces) <= 1:
            continue
        next_groups = [
            list(group)
            for index, group in enumerate(current_groups)
            if index not in pieces
        ]
        next_groups.insert(pieces[0], list(target_group))
        return next_groups
    return None


def plan_groupings(
    current: Sequence[Sequence[str]], target: Sequence[Sequence[str]]
) -> List[Grouping]:
    """The full sequence of intermediate groupings a migration will walk."""
    steps: List[Grouping] = []
    cursor: Sequence[Sequence[str]] = current
    while True:
        step = _next_grouping(cursor, target)
        if step is None:
            return steps
        steps.append(step)
        cursor = step


@dataclass
class LayoutRecommendation:
    """Advisor output: where to migrate and what the model predicts."""

    target_groups: Grouping
    current_cost: int  # predicted blocks replaying the window as-is
    target_cost: int  # predicted blocks under the recommended grouping
    migration_cost: int  # predicted blocks the stepped migration costs
    worthwhile: bool  # saving clears threshold × migration cost

    @property
    def saving(self) -> int:
        return self.current_cost - self.target_cost

    def to_dict(self) -> dict:
        return {
            "target_groups": [list(group) for group in self.target_groups],
            "current_cost": self.current_cost,
            "target_cost": self.target_cost,
            "migration_cost": self.migration_cost,
            "saving": self.saving,
            "worthwhile": self.worthwhile,
        }


class LayoutAdvisor:
    """Prices candidate partitions against the observed workload.

    Two candidate families cover the layout space:

    * the **singleton spectrum** between the two static extremes: for each
      ``k``, the ``k`` most-scanned columns as singleton
      (column-store-like) groups and the rest co-located in one
      row-store-like group — ``k=0`` is the pure row layout, ``k=n`` the
      pure column layout;
    * **co-access clusters** (``co_access=True``): columns the workload
      scans *together* (per :attr:`AccessStats.group_scans`, charged by
      the real query path's ``ProjectedScan``) become one group — a joint
      scan then reads the same pages as under singletons while every
      tuple operation touches fewer groups, the combination the singleton
      family cannot express.

    The best candidate is recommended only when the predicted saving over
    the *observed window* is at least ``threshold`` times the predicted
    migration cost.
    """

    #: Only this many of the hottest co-access sets seed cluster
    #: candidates — the tail of a decayed window is noise.
    MAX_CO_ACCESS_SETS = 8

    def __init__(self, threshold: float = 1.0, min_ops: int = 32, co_access: bool = True):
        self.threshold = threshold
        self.min_ops = min_ops
        self.co_access = co_access

    def candidates(self, store: GroupedTupleStore) -> List[Grouping]:
        columns = store.schema.column_names
        stats = store.access_stats
        ranked = sorted(
            columns,
            key=lambda name: (
                -(stats.columns[name.lower()].scans if name.lower() in stats.columns else 0),
                name.lower(),
            ),
        )
        seen: Set[FrozenSet[FrozenSet[str]]] = set()
        result: List[Grouping] = []

        def offer(grouping: Grouping) -> None:
            signature = _signature(grouping)
            if signature not in seen:
                seen.add(signature)
                result.append(grouping)

        for k in range(len(columns) + 1):
            hot = ranked[:k]
            hot_keys = {name.lower() for name in hot}
            cold = [name for name in columns if name.lower() not in hot_keys]
            grouping: Grouping = [[name] for name in hot]
            if cold:
                grouping.append(cold)
            offer(grouping)
        if self.co_access:
            for grouping in self._co_access_candidates(store):
                offer(grouping)
        return result

    def _co_access_candidates(self, store: GroupedTupleStore) -> List[Grouping]:
        """Groupings built from the columns scanned together.

        Three shapes per window: the hottest mutually disjoint co-access
        sets as groups (rest in one cold group); those clusters plus the
        remaining scanned columns as hot singletons; and the connected
        components of overlapping sets merged into wider clusters.  All
        are priced like any other candidate — clustering only *proposes*.
        """
        stats = store.access_stats
        columns = store.schema.column_names
        canonical = {name.lower(): name for name in columns}
        weighted: List[Tuple[int, List[str]]] = []
        for names, count in stats.group_scans.items():
            members = [canonical[name] for name in names if name in canonical]
            if len(members) >= 2 and count > 0:
                weighted.append((count, members))
        if not weighted:
            return []
        weighted.sort(key=lambda item: (-item[0], item[1]))
        top = weighted[: self.MAX_CO_ACCESS_SETS]

        def finish(clusters: List[List[str]]) -> Grouping:
            used = {name.lower() for group in clusters for name in group}
            cold = [name for name in columns if name.lower() not in used]
            grouping = [list(group) for group in clusters]
            if cold:
                grouping.append(cold)
            return grouping

        out: List[Grouping] = []
        # 1. Hottest mutually disjoint sets, verbatim.
        packed: List[List[str]] = []
        covered: Set[str] = set()
        for count, members in top:
            keys = {name.lower() for name in members}
            if keys & covered:
                continue
            packed.append(members)
            covered |= keys
        if packed:
            out.append(finish(packed))
            # 2. Same clusters, plus the remaining scanned columns as hot
            # singletons (scan-heavy columns outside any set stay narrow).
            singles = [
                [name]
                for name in columns
                if name.lower() not in covered
                and name.lower() in stats.columns
                and stats.columns[name.lower()].scans > 0
            ]
            if singles:
                out.append(finish(packed + singles))
        # 3. Overlapping sets merged: connected components over shared
        # members (two queries touching an overlapping column set often
        # want one wider group).
        parent: dict = {}

        def find(key: str) -> str:
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        for _, members in top:
            keys = [name.lower() for name in members]
            for key in keys:
                parent.setdefault(key, key)
            for key in keys[1:]:
                parent[find(keys[0])] = find(key)
        components: dict = {}
        for key in parent:
            components.setdefault(find(key), []).append(key)
        merged = [
            [canonical[key] for key in sorted(member_keys)]
            for member_keys in components.values()
        ]
        if merged:
            out.append(finish(merged))
        return out

    def advise(self, store: GroupedTupleStore) -> Optional[LayoutRecommendation]:
        """A recommendation, or None (too little data / current is best)."""
        stats = store.access_stats
        if stats.total_ops < self.min_ops:
            return None
        n_rows = store.n_rows
        page_capacity = store.pool.page_capacity
        current = store.schema.groups
        # Encoded chains are shorter — price candidates with the observed
        # compression ratios so the advisor does not migrate away from a
        # grouping whose win comes from its encodings.
        ratios = store.column_encoding_ratios()
        current_cost = estimate_workload_blocks(
            current, stats, n_rows, page_capacity, ratios
        )
        best: Optional[Grouping] = None
        best_cost = current_cost
        for candidate in self.candidates(store):
            cost = estimate_workload_blocks(
                candidate, stats, n_rows, page_capacity, ratios
            )
            if cost < best_cost:
                best, best_cost = candidate, cost
        if best is None or _signature(best) == _signature(current):
            return None
        migration_cost = 0
        cursor: Sequence[Sequence[str]] = current
        for step in plan_groupings(current, best):
            migration_cost += restructure_blocks(cursor, step, n_rows, page_capacity)
            cursor = step
        saving = current_cost - best_cost
        worthwhile = saving > 0 and saving >= self.threshold * migration_cost
        return LayoutRecommendation(
            target_groups=best,
            current_cost=current_cost,
            target_cost=best_cost,
            migration_cost=migration_cost,
            worthwhile=worthwhile,
        )


class LayoutMigration:
    """Incremental online re-partitioning toward a target grouping.

    Each :meth:`step` performs one bounded, crash-safe restructure (split
    one straddling group into singletons, or merge the pieces of one
    target group).  Between steps every read/write path works normally —
    the schema's groups always partition the live columns.  DDL racing the
    migration is tolerated: the target is re-reconciled with the live
    column set at every step (new columns become singleton groups, dropped
    columns vanish from the target).
    """

    def __init__(self, store: GroupedTupleStore, target_groups: Sequence[Sequence[str]]):
        self.store = store
        self.target: Grouping = [list(group) for group in target_groups if group]
        self.steps_taken = 0
        self.pages_written = 0

    def _adjusted_target(self) -> Grouping:
        live = {name.lower(): name for name in self.store.schema.column_names}
        adjusted: Grouping = []
        covered: Set[str] = set()
        for group in self.target:
            members = [live[name.lower()] for name in group if name.lower() in live]
            if members:
                adjusted.append(members)
                covered.update(name.lower() for name in members)
        extras = [
            name
            for name in self.store.schema.column_names
            if name.lower() not in covered
        ]
        adjusted.extend([name] for name in extras)
        return adjusted

    def peek(self) -> Optional[Grouping]:
        """The intermediate grouping the next :meth:`step` would
        restructure to — None when the layout already matches the
        (reconciled) target.  Lets observers (the durable server's WAL
        logger, the CLI's layout-stats view) see a step before or without
        applying it."""
        return _next_grouping(self.store.schema.groups, self._adjusted_target())

    @property
    def done(self) -> bool:
        return self.peek() is None

    def step(self) -> bool:
        """Run one migration step; returns True when the layout has
        reached the (reconciled) target.

        Peek and restructure happen under the store's mutation lock so a
        concurrent DDL cannot change the grouping between planning the
        step and applying it; open snapshots keep streaming the pre-step
        chains (the store retires, not frees, the superseded pages)."""
        with self.store.mutation_lock:
            next_groups = self.peek()
            if next_groups is None:
                return True
            self.pages_written += self.store.restructure(next_groups)
            self.steps_taken += 1
            return self.done

    def run_to_completion(self, max_steps: int = 10_000) -> int:
        """Drive the migration to the end; returns steps taken."""
        for _ in range(max_steps):
            if self.step():
                return self.steps_taken
        raise RuntimeError("layout migration did not converge")
