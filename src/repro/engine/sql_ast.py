"""SQL abstract syntax trees.

Covers the dialect DataSpread needs: single- and multi-table SELECT with
(NATURAL / INNER / LEFT / CROSS) joins, WHERE/GROUP BY/HAVING/ORDER
BY/LIMIT/OFFSET, DISTINCT, aggregates, scalar functions, CASE,
IN/BETWEEN/LIKE/IS NULL, uncorrelated subqueries, the DML statements, DDL
with the cheap-schema-change ALTERs, and the two DataSpread SQL extensions:

* ``RANGEVALUE(<cell>)`` — a scalar whose value comes from a spreadsheet
  cell (paper §2.2),
* ``RANGETABLE(<range>)`` — a relation whose tuples come from a spreadsheet
  range, usable anywhere a table is (paper §2.2),

plus one positional extension motivated by §3's positional index:
``INSERT ... AT POSITION <n>`` inserts a row at a presentation position.

Nodes are plain frozen dataclasses; evaluation lives in
:mod:`repro.engine.expr` and planning in :mod:`repro.engine.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "FuncCall",
    "IsNull",
    "InList",
    "InSubquery",
    "Between",
    "Like",
    "Case",
    "ScalarSubquery",
    "RangeValue",
    "SelectItem",
    "OrderItem",
    "TableRef",
    "RangeTable",
    "SubquerySource",
    "Join",
    "FromItem",
    "SelectStmt",
    "CompoundSelect",
    "InsertStmt",
    "UpdateStmt",
    "DeleteStmt",
    "ColumnDef",
    "CreateIndexStmt",
    "CreateTableStmt",
    "AlterAddColumn",
    "AlterDropColumn",
    "AlterRenameColumn",
    "AlterSetLayout",
    "AlterTableStmt",
    "DropTableStmt",
    "DropIndexStmt",
    "Statement",
    "AGGREGATE_NAMES",
]

#: Function names treated as aggregates by the planner.
AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max", "group_concat"})


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*`` in a select list, or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Parameter(Expression):
    """A ``?`` placeholder, bound at execution time by ordinal."""

    index: int


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # + - * / % || = <> < <= > >= AND OR
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # - + NOT
    operand: Expression


@dataclass(frozen=True)
class FuncCall(Expression):
    name: str  # lower-cased
    args: Tuple[Expression, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_NAMES


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class Case(Expression):
    operand: Optional[Expression]
    whens: Tuple[Tuple[Expression, Expression], ...]
    default: Optional[Expression]


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    select: "SelectStmt"


@dataclass(frozen=True)
class InSubquery(Expression):
    operand: Expression
    select: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class RangeValue(Expression):
    """DataSpread: ``RANGEVALUE(B1)`` — the value of a spreadsheet cell."""

    reference: str  # A1-style text, resolved by the range resolver


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class RangeTable:
    """DataSpread: ``RANGETABLE(A1:D100)`` — a sheet range as a relation."""

    reference: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or f"rangetable({self.reference})"


@dataclass(frozen=True)
class SubquerySource:
    select: "SelectStmt"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join:
    left: "FromItem"
    right: "FromItem"
    kind: str = "inner"  # inner | left | cross
    condition: Optional[Expression] = None
    natural: bool = False
    using: Tuple[str, ...] = ()


FromItem = Union[TableRef, RangeTable, SubquerySource, Join]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt:
    items: Tuple[SelectItem, ...]
    source: Optional[FromItem] = None
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt:
    table: str
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Expression, ...], ...] = ()
    select: Optional[SelectStmt] = None
    position: Optional[Expression] = None  # DataSpread: AT POSITION n


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str = "TEXT"
    primary_key: bool = False
    not_null: bool = False
    default: Optional[Expression] = None


@dataclass(frozen=True)
class CreateTableStmt:
    table: str
    columns: Tuple[ColumnDef, ...] = ()
    if_not_exists: bool = False
    as_select: Optional[SelectStmt] = None


@dataclass(frozen=True)
class AlterAddColumn:
    column: ColumnDef
    # DataSpread extension: choose the attribute group placement.
    into_group: Optional[int] = None


@dataclass(frozen=True)
class AlterDropColumn:
    name: str


@dataclass(frozen=True)
class AlterRenameColumn:
    old: str
    new: str


@dataclass(frozen=True)
class AlterSetLayout:
    # DataSpread extension: adaptive physical layout control.
    # ``auto``/``manual`` toggle the advisor loop; ``row``/``column``
    # migrate immediately to a static extreme.
    mode: str


@dataclass(frozen=True)
class AlterTableStmt:
    table: str
    action: Union[AlterAddColumn, AlterDropColumn, AlterRenameColumn, AlterSetLayout]


@dataclass(frozen=True)
class DropTableStmt:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndexStmt:
    name: str
    table: str
    column: str
    unique: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropIndexStmt:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CompoundSelect:
    """``SELECT ... UNION [ALL] SELECT ...`` chains.

    ``operators[i]`` ('union' | 'union all') combines ``selects[i]`` with
    ``selects[i+1]``.  ORDER BY/LIMIT inside a member select bind to that
    member (parenthesise to control); compound-level ordering is applied by
    wrapping in a subquery source."""

    selects: Tuple[SelectStmt, ...]
    operators: Tuple[str, ...]


Statement = Union[
    SelectStmt,
    CompoundSelect,
    InsertStmt,
    UpdateStmt,
    DeleteStmt,
    CreateTableStmt,
    AlterTableStmt,
    DropTableStmt,
    CreateIndexStmt,
    DropIndexStmt,
]


def walk_expression(expression: Expression):
    """Yield the expression node and all descendants (pre-order)."""
    yield expression
    children: Tuple[Expression, ...] = ()
    if isinstance(expression, BinaryOp):
        children = (expression.left, expression.right)
    elif isinstance(expression, UnaryOp):
        children = (expression.operand,)
    elif isinstance(expression, FuncCall):
        children = expression.args
    elif isinstance(expression, IsNull):
        children = (expression.operand,)
    elif isinstance(expression, InList):
        children = (expression.operand,) + expression.items
    elif isinstance(expression, Between):
        children = (expression.operand, expression.low, expression.high)
    elif isinstance(expression, Like):
        children = (expression.operand, expression.pattern)
    elif isinstance(expression, Case):
        parts: List[Expression] = []
        if expression.operand is not None:
            parts.append(expression.operand)
        for condition, result in expression.whens:
            parts.extend((condition, result))
        if expression.default is not None:
            parts.append(expression.default)
        children = tuple(parts)
    elif isinstance(expression, InSubquery):
        children = (expression.operand,)
    for child in children:
        yield from walk_expression(child)
