"""Per-column page encodings for the attribute-group store.

The hybrid store's narrow chains make analytical scans touch few pages;
this module makes each of those pages *denser*.  A column fragment can be
stored in one of four simulated wire formats:

* ``plain``  — the values themselves (the baseline: 8 bytes per value,
  standing in for a fixed-width slot in a real page),
* ``packed`` — homogeneous integers packed at the narrowest width that
  fits (1/2/4/8 bytes), or homogeneous floats at 8 bytes — the `array`
  module supplies the typed storage,
* ``dict``   — low-cardinality columns: a value dictionary plus packed
  codes (code width from the dictionary size),
* ``rle``    — run-length (value, count) pairs for sorted / clustered
  columns.

Sizes are *simulated bytes*, mirroring how ``page_capacity`` simulates an
8 KB block's value budget: the pager still counts whole-block reads, and
the store divides a page's byte budget by the encoded record size to
decide how many records an encoded page holds.  :func:`choose_encoding`
picks the smallest representation, falling back to ``plain`` for columns
that do not compress (mixed types, high-cardinality text).
"""

from __future__ import annotations

from array import array
from typing import Any, List, Sequence, Tuple

from repro.errors import StorageError

__all__ = [
    "PLAIN_VALUE_BYTES",
    "plain_size",
    "encoded_size",
    "choose_encoding",
    "encode_column",
    "decode_column",
]

#: Simulated size of one plain value slot (~a 64-bit word per value).
PLAIN_VALUE_BYTES = 8

#: array typecodes by packed integer width, narrowest first.
_INT_WIDTHS: List[Tuple[int, str, int, int]] = [
    (1, "b", -(1 << 7), (1 << 7) - 1),
    (2, "h", -(1 << 15), (1 << 15) - 1),
    (4, "l", -(1 << 31), (1 << 31) - 1),
    (8, "q", -(1 << 63), (1 << 63) - 1),
]


def plain_size(n_values: int) -> int:
    """Simulated bytes of ``n_values`` stored plain."""
    return n_values * PLAIN_VALUE_BYTES


def _int_width(values: Sequence[int]) -> Tuple[int, str]:
    lo = min(values)
    hi = max(values)
    for width, typecode, wmin, wmax in _INT_WIDTHS:
        if wmin <= lo and hi <= wmax:
            return width, typecode
    return 8, "q"


def _code_bytes(cardinality: int) -> int:
    """Bytes per dictionary code for ``cardinality`` distinct values."""
    if cardinality <= 1 << 8:
        return 1
    if cardinality <= 1 << 16:
        return 2
    return 4


def _pure_ints(values: Sequence[Any]) -> bool:
    return all(type(v) is int for v in values)


def _pure_floats(values: Sequence[Any]) -> bool:
    return all(type(v) is float for v in values)


def _runs(values: Sequence[Any]) -> List[Tuple[Any, int]]:
    # Runs and dictionary keys must be *identity-exact*: Python's ``1 ==
    # True == 1.0`` would otherwise conflate distinct stored values and
    # break the decode-to-identical-rows contract.
    runs: List[Tuple[Any, int]] = []
    for value in values:
        if runs and type(runs[-1][0]) is type(value) and runs[-1][0] == value:
            runs[-1] = (value, runs[-1][1] + 1)
        else:
            runs.append((value, 1))
    return runs


def choose_encoding(values: Sequence[Any]) -> Tuple[str, int]:
    """``(kind, simulated_bytes)`` of the smallest representation.

    Only proposes a non-plain kind when it actually beats plain — a
    column of distinct strings costs dictionary overhead for nothing.
    """
    n = len(values)
    best_kind, best_size = "plain", plain_size(n)
    if n == 0:
        return best_kind, best_size
    if None not in values:
        if _pure_ints(values):
            width, _ = _int_width(values)
            size = n * width
            if size < best_size:
                best_kind, best_size = "packed", size
        elif _pure_floats(values):
            size = n * 8
            if size < best_size:
                best_kind, best_size = "packed", size
    # Dictionary: distinct values stored once (plain), codes packed.
    try:
        distinct = set(values)
    except TypeError:
        return best_kind, best_size  # unhashable payloads stay plain
    dict_size = plain_size(len(distinct)) + n * _code_bytes(len(distinct))
    if dict_size < best_size:
        best_kind, best_size = "dict", dict_size
    runs = _runs(values)
    rle_size = len(runs) * (PLAIN_VALUE_BYTES + 4)
    if rle_size < best_size:
        best_kind, best_size = "rle", rle_size
    return best_kind, best_size


def encoded_size(n_values: int, kind: str, payload: Any) -> int:
    """Simulated bytes of an already-encoded column."""
    if kind == "plain":
        return plain_size(n_values)
    if kind == "packed":
        typed: array = payload
        return len(typed) * typed.itemsize
    if kind == "dict":
        mapping, codes = payload
        return plain_size(len(mapping)) + len(codes) * _code_bytes(len(mapping))
    if kind == "rle":
        return len(payload) * (PLAIN_VALUE_BYTES + 4)
    raise StorageError(f"unknown column encoding {kind!r}")


def encode_column(values: Sequence[Any], kind: str) -> Any:
    """Encode one column fragment as ``kind``; returns the payload."""
    if kind == "plain":
        return list(values)
    if kind == "packed":
        if _pure_ints(values):
            _, typecode = _int_width(values) if values else (1, "b")
        else:
            typecode = "d"
        return array(typecode, values)
    if kind == "dict":
        mapping: List[Any] = []
        index: dict = {}
        codes = array("l")
        for value in values:
            key = (type(value).__name__, value)
            code = index.get(key)
            if code is None:
                code = index[key] = len(mapping)
                mapping.append(value)
            codes.append(code)
        return (mapping, codes)
    if kind == "rle":
        return _runs(values)
    raise StorageError(f"unknown column encoding {kind!r}")


def decode_column(kind: str, payload: Any) -> List[Any]:
    """Decode a column fragment back to a plain value list."""
    if kind == "plain":
        return list(payload)
    if kind == "packed":
        return payload.tolist()
    if kind == "dict":
        mapping, codes = payload
        return [mapping[code] for code in codes]
    if kind == "rle":
        out: List[Any] = []
        for value, count in payload:
            out.extend([value] * count)
        return out
    raise StorageError(f"unknown column encoding {kind!r}")
