"""SQL scalar functions and aggregate implementations.

Scalar functions receive already-evaluated Python arguments and follow the
common SQL convention that NULL inputs yield NULL (except where noted, e.g.
``COALESCE``).  Aggregates are small accumulator objects created per group
by the executor.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.engine.types import DBType, coerce_value, compare_values
from repro.errors import ExecutionError

__all__ = ["SCALAR_FUNCTIONS", "make_aggregate", "Aggregator"]


def _null_guard(fn: Callable) -> Callable:
    """Wrap a function so that any NULL argument makes the result NULL."""

    def wrapper(*args: Any) -> Any:
        if any(argument is None for argument in args):
            return None
        return fn(*args)

    return wrapper


def _text(value: Any) -> str:
    return coerce_value(value, DBType.TEXT)


def _number(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ExecutionError(f"expected a number, got {value!r}") from None


def _fn_round(value: Any, digits: Any = 0) -> Any:
    number = _number(value)
    result = round(number, int(digits))
    return result


def _fn_substr(text: Any, start: Any, length: Any = None) -> str:
    string = _text(text)
    begin = int(start)
    # SQL substr is 1-based; negative counts from the end (sqlite semantics).
    if begin > 0:
        begin -= 1
    elif begin < 0:
        begin = max(len(string) + begin, 0)
    if length is None:
        return string[begin:]
    if int(length) < 0:
        raise ExecutionError("substr length must be non-negative")
    return string[begin : begin + int(length)]


def _fn_instr(haystack: Any, needle: Any) -> int:
    return _text(haystack).find(_text(needle)) + 1


def _fn_coalesce(*args: Any) -> Any:
    for argument in args:
        if argument is not None:
            return argument
    return None


def _fn_nullif(first: Any, second: Any) -> Any:
    return None if compare_values(first, second) == 0 else first


def _fn_ifnull(first: Any, second: Any) -> Any:
    return second if first is None else first


def _fn_cast(value: Any, type_name: Any) -> Any:
    return coerce_value(value, DBType.parse(str(type_name)), strict=True)


def _fn_typeof(value: Any) -> str:
    from repro.engine.types import infer_type

    return infer_type(value).value.lower()


def _fn_min_scalar(*args: Any) -> Any:
    values = [a for a in args if a is not None]
    if not values:
        return None
    best = values[0]
    for candidate in values[1:]:
        if compare_values(candidate, best) == -1:
            best = candidate
    return best


def _fn_max_scalar(*args: Any) -> Any:
    values = [a for a in args if a is not None]
    if not values:
        return None
    best = values[0]
    for candidate in values[1:]:
        if compare_values(candidate, best) == 1:
            best = candidate
    return best


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "abs": _null_guard(lambda x: abs(_number(x))),
    "round": _null_guard(_fn_round),
    "floor": _null_guard(lambda x: math.floor(_number(x))),
    "ceil": _null_guard(lambda x: math.ceil(_number(x))),
    "ceiling": _null_guard(lambda x: math.ceil(_number(x))),
    "sqrt": _null_guard(lambda x: math.sqrt(_number(x))),
    "power": _null_guard(lambda x, y: _number(x) ** _number(y)),
    "pow": _null_guard(lambda x, y: _number(x) ** _number(y)),
    "mod": _null_guard(lambda x, y: _number(x) % _number(y)),
    "sign": _null_guard(lambda x: (0 if _number(x) == 0 else (1 if _number(x) > 0 else -1))),
    "length": _null_guard(lambda s: len(_text(s))),
    "upper": _null_guard(lambda s: _text(s).upper()),
    "lower": _null_guard(lambda s: _text(s).lower()),
    "trim": _null_guard(lambda s: _text(s).strip()),
    "ltrim": _null_guard(lambda s: _text(s).lstrip()),
    "rtrim": _null_guard(lambda s: _text(s).rstrip()),
    "substr": _null_guard(_fn_substr),
    "substring": _null_guard(_fn_substr),
    "replace": _null_guard(lambda s, old, new: _text(s).replace(_text(old), _text(new))),
    "instr": _null_guard(_fn_instr),
    "concat": lambda *args: "".join(_text(a) for a in args if a is not None),
    "coalesce": _fn_coalesce,
    "nullif": _fn_nullif,
    "ifnull": _fn_ifnull,
    "cast": _null_guard(_fn_cast),
    "typeof": _fn_typeof,
    "min": _fn_min_scalar,   # only reached for 2+ args (else aggregate)
    "max": _fn_max_scalar,
}


class Aggregator:
    """Base accumulator; executor calls :meth:`add` per row then
    :meth:`result`."""

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class _Count(Aggregator):
    def __init__(self, distinct: bool, count_star: bool):
        self._count = 0
        self._distinct = distinct
        self._count_star = count_star
        self._seen = set() if distinct else None

    def add(self, value: Any) -> None:
        if not self._count_star and value is None:
            return
        if self._seen is not None:
            key = (type(value).__name__, value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._count += 1

    def result(self) -> int:
        return self._count


class _Sum(Aggregator):
    def __init__(self, distinct: bool):
        self._total: Optional[float] = None
        self._seen = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        number = _number(value)
        self._total = number if self._total is None else self._total + number

    def result(self) -> Any:
        return self._total


class _Avg(Aggregator):
    def __init__(self, distinct: bool):
        self._total = 0.0
        self._count = 0
        self._seen = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += _number(value)
        self._count += 1

    def result(self) -> Any:
        return self._total / self._count if self._count else None


class _Extreme(Aggregator):
    def __init__(self, want_max: bool):
        self._want_max = want_max
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None:
            self._best = value
            return
        ordering = compare_values(value, self._best)
        if ordering is None:
            return
        if (self._want_max and ordering == 1) or (not self._want_max and ordering == -1):
            self._best = value

    def result(self) -> Any:
        return self._best


class _GroupConcat(Aggregator):
    def __init__(self, separator: str = ","):
        self._parts: List[str] = []
        self._separator = separator

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._parts.append(_text(value))

    def result(self) -> Any:
        return self._separator.join(self._parts) if self._parts else None


def make_aggregate(name: str, distinct: bool = False, count_star: bool = False) -> Aggregator:
    """Instantiate an accumulator for the named aggregate function."""
    lowered = name.lower()
    if lowered == "count":
        return _Count(distinct, count_star)
    if lowered == "sum":
        return _Sum(distinct)
    if lowered == "avg":
        return _Avg(distinct)
    if lowered == "min":
        return _Extreme(want_max=False)
    if lowered == "max":
        return _Extreme(want_max=True)
    if lowered == "group_concat":
        return _GroupConcat()
    raise ExecutionError(f"unknown aggregate {name!r}")
